// Copyright 2026 The LTAM Authors.

#include "runtime/access_runtime.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "core/rules/rule_engine.h"
#include "engine/sharded_engine.h"
#include "replication/epoch.h"
#include "storage/durable_sharded_system.h"
#include "storage/durable_system.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "util/logging.h"

namespace ltam {

namespace {

std::unique_ptr<MovementView> MakeShardedView(
    const ShardedDecisionEngine& engine) {
  std::vector<const MovementDatabase*> shards;
  const uint32_t n = engine.num_shards();
  shards.reserve(n);
  for (uint32_t k = 0; k < n; ++k) shards.push_back(&engine.shard_movements(k));
  return std::make_unique<ShardedMovementView>(
      std::move(shards), [n](SubjectId s) {
        return ShardedDecisionEngine::ShardOfSubject(s, n);
      });
}

/// Deny(kWalError) decisions mark events the durability layer refused.
/// They can only exist when the batch's durability status is non-OK, so
/// the scan is skipped on the happy path.
size_t CountRefusedEvents(const std::vector<Decision>& decisions,
                          const Status& durability) {
  if (durability.ok()) return 0;
  size_t refused = 0;
  for (const Decision& d : decisions) {
    if (!d.granted && d.reason == DenyReason::kWalError) ++refused;
  }
  return refused;
}

size_t PendingShardAlerts(const ShardedDecisionEngine& engine) {
  size_t total = 0;
  for (uint32_t k = 0; k < engine.num_shards(); ++k) {
    total += engine.shard_engine(k).alerts().size();
  }
  return total;
}

}  // namespace

// --- Backend interface -------------------------------------------------------

class AccessRuntime::Backend {
 public:
  virtual ~Backend() = default;

  /// Applies `batch`, one decision per event in input order. Durability
  /// trouble (append refusals already visible as Deny(kWalError),
  /// group-commit failures) lands in *durability, first error wins;
  /// in-memory backends leave it OK.
  virtual Result<std::vector<Decision>> ApplyBatch(Span<const AccessEvent> batch,
                                                   Status* durability) = 0;
  virtual Status Tick(Chronon t) = 0;
  /// Pending alerts in the canonical SortAlerts order, cleared.
  virtual std::vector<Alert> DrainAlerts() = 0;
  virtual size_t pending_alerts() const = 0;
  virtual Status Checkpoint() = 0;
  /// Durability barrier (no-op on in-memory backends, which are always
  /// "durable" to the extent they can be).
  virtual Status WaitDurable() { return Status::OK(); }
  /// Records accepted vs fsynced. In-memory backends return nothing;
  /// the facade substitutes its applied-event counter (durable ==
  /// applied by definition there).
  virtual DurabilityWatermark Watermark() const { return {}; }
  virtual MutableStores Stores() = 0;
  /// Restores invariants a mutation may have broken (e.g. re-warms the
  /// graph's flattened adjacency cache before workers read it again).
  virtual void AfterMutate() {}
  virtual const MultilevelLocationGraph& graph() const = 0;
  virtual const UserProfileDatabase& profiles() const = 0;
  virtual const AuthorizationDatabase& auth_db() const = 0;
  virtual std::unique_ptr<MovementView> MakeView() const = 0;
  virtual void FillStats(RuntimeStats* stats) const = 0;

  /// Replication seam (see the facade's replication surface): only the
  /// durable sharded backend ships/applies per-shard WAL records.
  virtual bool replication_capable() const { return false; }
  virtual Result<std::vector<uint64_t>> ReplicationPositions() const {
    return UnsupportedReplication();
  }
  virtual Result<ReplicationSlice> ReadReplicationSlice(uint32_t /*shard*/,
                                                        uint64_t /*from*/,
                                                        size_t /*max_records*/) {
    return UnsupportedReplication();
  }
  virtual Result<ReplicationApplyResult> ApplyReplicated(
      uint32_t /*shard*/, uint64_t /*start*/,
      const std::vector<std::string>& /*records*/) {
    return UnsupportedReplication();
  }

 protected:
  static Status UnsupportedReplication() {
    return Status::FailedPrecondition(
        "replication requires a durable sharded runtime "
        "(durable_dir set, num_shards > 1)");
  }
};

// --- In-memory sequential ----------------------------------------------------

class AccessRuntime::SequentialBackend final : public Backend {
 public:
  SequentialBackend(SystemState state, const EngineOptions& options)
      : state_(std::move(state)),
        engine_(&state_.graph, &state_.auth_db, &state_.movements,
                &state_.profiles, options) {
    // Pre-seeded histories resume their open stays exactly as durable
    // recovery would, so overstay tracking starts correct.
    ResumeOpenStays(&engine_, state_.movements, state_.auth_db,
                    state_.profiles.AllSubjects());
  }

  Result<std::vector<Decision>> ApplyBatch(Span<const AccessEvent> batch,
                                           Status* /*durability*/) override {
    std::vector<Decision> out;
    out.reserve(batch.size());
    for (const AccessEvent& e : batch) {
      out.push_back(ApplyAccessEvent(&engine_, e));
    }
    return out;
  }

  Status Tick(Chronon t) override {
    engine_.Tick(t);
    return Status::OK();
  }

  std::vector<Alert> DrainAlerts() override {
    std::vector<Alert> out = engine_.alerts();
    engine_.ClearAlerts();
    SortAlerts(&out);
    return out;
  }

  size_t pending_alerts() const override { return engine_.alerts().size(); }

  Status Checkpoint() override { return Status::OK(); }

  MutableStores Stores() override {
    return MutableStores{state_.graph, state_.profiles, state_.auth_db,
                         state_.rules};
  }

  const MultilevelLocationGraph& graph() const override {
    return state_.graph;
  }
  const UserProfileDatabase& profiles() const override {
    return state_.profiles;
  }
  const AuthorizationDatabase& auth_db() const override {
    return state_.auth_db;
  }

  std::unique_ptr<MovementView> MakeView() const override {
    return std::make_unique<MovementDatabaseView>(&state_.movements);
  }

  void FillStats(RuntimeStats* stats) const override {
    stats->num_shards = 1;
    stats->requests_processed = engine_.requests_processed();
    stats->requests_granted = engine_.requests_granted();
  }

 private:
  SystemState state_;
  AccessControlEngine engine_;
};

// --- In-memory sharded -------------------------------------------------------

class AccessRuntime::ShardedBackend final : public Backend {
 public:
  ShardedBackend(SystemState state, const RuntimeOptions& options)
      : state_(std::move(state)) {
    ShardedEngineOptions engine_options;
    engine_options.num_shards = options.num_shards;
    engine_options.engine = options.engine;
    engine_ = std::make_unique<ShardedDecisionEngine>(
        &state_.graph, &state_.auth_db, &state_.profiles, engine_options);
  }

  /// Partitions any pre-seeded movement history across the shards and
  /// resumes open stays — the same seeding DurableShardedSystem performs
  /// on a fresh directory, so backends stay interchangeable.
  Status Init() {
    MovementDatabase seed = std::move(state_.movements);
    state_.movements = MovementDatabase();
    LTAM_RETURN_IF_ERROR(PartitionMovementsIntoShards(seed, engine_.get()));
    for (uint32_t k = 0; k < engine_->num_shards(); ++k) {
      ResumeOpenStays(&engine_->shard_engine(k), engine_->shard_movements(k),
                      state_.auth_db,
                      SubjectsOnShard(state_.profiles, *engine_, k));
    }
    return Status::OK();
  }

  Result<std::vector<Decision>> ApplyBatch(Span<const AccessEvent> batch,
                                           Status* /*durability*/) override {
    return engine_->EvaluateBatch(batch);
  }

  Status Tick(Chronon t) override {
    engine_->Tick(t);
    return Status::OK();
  }

  std::vector<Alert> DrainAlerts() override { return engine_->DrainAlerts(); }

  size_t pending_alerts() const override {
    return PendingShardAlerts(*engine_);
  }

  Status Checkpoint() override { return Status::OK(); }

  MutableStores Stores() override {
    return MutableStores{state_.graph, state_.profiles, state_.auth_db,
                         state_.rules};
  }

  void AfterMutate() override { state_.graph.WarmEffectiveAdjacency(); }

  const MultilevelLocationGraph& graph() const override {
    return state_.graph;
  }
  const UserProfileDatabase& profiles() const override {
    return state_.profiles;
  }
  const AuthorizationDatabase& auth_db() const override {
    return state_.auth_db;
  }

  std::unique_ptr<MovementView> MakeView() const override {
    return MakeShardedView(*engine_);
  }

  void FillStats(RuntimeStats* stats) const override {
    stats->num_shards = engine_->num_shards();
    stats->requests_processed = engine_->requests_processed();
    stats->requests_granted = engine_->requests_granted();
  }

 private:
  SystemState state_;
  std::unique_ptr<ShardedDecisionEngine> engine_;
};

// --- Durable sequential ------------------------------------------------------

/// The sequential durable backend is a thin adapter now: the
/// DurableSystem owns a real ShardLog, so the pipelined/interval sync
/// cadence (and the idle-convergence timer the old backend ran by hand)
/// lives on the log's own thread, exactly like each shard of the
/// sharded runtime. No backend-side mutex: ApplyBatch/Tick run on the
/// control thread, and the watermark/counter reads are ShardLog's
/// thread-safe accessors.
class AccessRuntime::DurableSequentialBackend final : public Backend {
 public:
  DurableSequentialBackend(std::unique_ptr<DurableSystem> sys,
                           bool shard_override)
      : sys_(std::move(sys)), shard_override_(shard_override) {}

  Result<std::vector<Decision>> ApplyBatch(Span<const AccessEvent> batch,
                                           Status* durability) override {
    std::vector<Decision> out;
    out.reserve(batch.size());
    Status append_error;
    for (const AccessEvent& e : batch) {
      Result<Decision> decision = sys_->Apply(e);
      if (decision.ok()) {
        out.push_back(*decision);
      } else {
        // Write-ahead contract: an event that could not be logged is
        // refused, never applied (same as the sharded workers).
        out.push_back(Decision::Deny(DenyReason::kWalError));
        if (append_error.ok()) append_error = decision.status();
      }
    }
    Status sync_error = sys_->BatchBoundary();
    *durability = ComposeDurabilityError(std::move(append_error),
                                         std::move(sync_error));
    return out;
  }

  Status Tick(Chronon t) override {
    Status ticked = sys_->Tick(t);
    Status synced = sys_->BatchBoundary();
    if (!synced.ok() && ticked.ok()) return synced;
    return ticked;
  }

  std::vector<Alert> DrainAlerts() override {
    std::vector<Alert> out = sys_->engine().alerts();
    sys_->engine().ClearAlerts();
    SortAlerts(&out);
    return out;
  }

  size_t pending_alerts() const override {
    return sys_->engine().alerts().size();
  }

  Status Checkpoint() override { return sys_->Checkpoint(); }

  Status WaitDurable() override {
    if (sys_->total_synced() >= sys_->total_appended()) return Status::OK();
    return sys_->Sync();
  }

  DurabilityWatermark Watermark() const override {
    return DurabilityWatermark{sys_->total_appended(), sys_->total_synced()};
  }

  MutableStores Stores() override {
    SystemState& state = sys_->mutable_state();
    return MutableStores{state.graph, state.profiles, state.auth_db,
                         state.rules};
  }

  const MultilevelLocationGraph& graph() const override {
    return sys_->state().graph;
  }
  const UserProfileDatabase& profiles() const override {
    return sys_->state().profiles;
  }
  const AuthorizationDatabase& auth_db() const override {
    return sys_->state().auth_db;
  }

  std::unique_ptr<MovementView> MakeView() const override {
    return std::make_unique<MovementDatabaseView>(&sys_->state().movements);
  }

  void FillStats(RuntimeStats* stats) const override {
    stats->num_shards = 1;
    stats->durable = true;
    stats->shard_count_overridden = shard_override_;
    stats->wal_events = sys_->wal_events();
    stats->requests_processed = sys_->engine().requests_processed();
    stats->requests_granted = sys_->engine().requests_granted();
    stats->wal_append_failures = sys_->wal_append_failures();
    stats->wal_sync_failures = sys_->wal_sync_failures();
    stats->shard_watermarks = {
        DurabilityWatermark{sys_->total_appended(), sys_->total_synced()}};
  }

 private:
  std::unique_ptr<DurableSystem> sys_;
  /// True when the caller asked for >1 shard but the directory holds a
  /// committed sequential state (which wins).
  bool shard_override_;
};

// --- Durable sharded ---------------------------------------------------------

class AccessRuntime::DurableShardedBackend final : public Backend {
 public:
  explicit DurableShardedBackend(std::unique_ptr<DurableShardedSystem> sys)
      : sys_(std::move(sys)) {}

  Result<std::vector<Decision>> ApplyBatch(Span<const AccessEvent> batch,
                                           Status* durability) override {
    return sys_->EvaluateBatchWithStatus(batch, durability);
  }

  Status Tick(Chronon t) override { return sys_->Tick(t); }

  std::vector<Alert> DrainAlerts() override { return sys_->DrainAlerts(); }

  size_t pending_alerts() const override {
    return PendingShardAlerts(sys_->engine());
  }

  Status Checkpoint() override { return sys_->Checkpoint(); }

  Status WaitDurable() override { return sys_->WaitDurable(); }

  DurabilityWatermark Watermark() const override { return sys_->Watermark(); }

  MutableStores Stores() override {
    SystemState& base = sys_->mutable_base();
    return MutableStores{base.graph, base.profiles, base.auth_db, base.rules};
  }

  void AfterMutate() override {
    sys_->base().graph.WarmEffectiveAdjacency();
  }

  const MultilevelLocationGraph& graph() const override {
    return sys_->base().graph;
  }
  const UserProfileDatabase& profiles() const override {
    return sys_->base().profiles;
  }
  const AuthorizationDatabase& auth_db() const override {
    return sys_->base().auth_db;
  }

  std::unique_ptr<MovementView> MakeView() const override {
    return MakeShardedView(sys_->engine());
  }

  void FillStats(RuntimeStats* stats) const override {
    stats->num_shards = sys_->num_shards();
    stats->durable = true;
    stats->shard_count_overridden = sys_->shard_count_overridden();
    stats->epoch = sys_->epoch();
    stats->wal_events = sys_->wal_events();
    stats->requests_processed = sys_->engine().requests_processed();
    stats->requests_granted = sys_->engine().requests_granted();
    stats->wal_append_failures = sys_->wal_append_failures();
    stats->wal_sync_failures = sys_->wal_sync_failures();
    stats->shard_watermarks.reserve(sys_->num_shards());
    for (uint32_t k = 0; k < sys_->num_shards(); ++k) {
      stats->shard_watermarks.push_back(sys_->ShardWatermark(k));
    }
    stats->cold_segments = sys_->cold_segment_count();
    stats->cold_bytes = sys_->cold_bytes();
    stats->dropped_events = sys_->dropped_events();
    stats->compaction_runs = sys_->compaction_runs();
    stats->checkpoint_dirty_segments = sys_->checkpoint_dirty_segments();
  }

  bool replication_capable() const override { return true; }

  Result<std::vector<uint64_t>> ReplicationPositions() const override {
    std::vector<uint64_t> positions;
    positions.reserve(sys_->num_shards());
    for (uint32_t k = 0; k < sys_->num_shards(); ++k) {
      positions.push_back(sys_->ShardWatermark(k).durable);
    }
    return positions;
  }

  Result<ReplicationSlice> ReadReplicationSlice(uint32_t shard, uint64_t from,
                                                size_t max_records) override {
    LTAM_ASSIGN_OR_RETURN(DurableShardedSystem::ReplicationSlice slice,
                          sys_->ReadShardRecords(shard, from, max_records));
    ReplicationSlice out;
    out.records = std::move(slice.records);
    out.next = slice.next;
    out.durable = slice.durable;
    return out;
  }

  Result<ReplicationApplyResult> ApplyReplicated(
      uint32_t shard, uint64_t start,
      const std::vector<std::string>& records) override {
    LTAM_ASSIGN_OR_RETURN(DurableShardedSystem::ReplicationApply applied,
                          sys_->ApplyReplicatedRecords(shard, start, records));
    ReplicationApplyResult out;
    out.decisions = std::move(applied.decisions);
    out.alerts = std::move(applied.alerts);
    out.position = applied.position;
    return out;
  }

 private:
  std::unique_ptr<DurableShardedSystem> sys_;
};

// --- AccessRuntime -----------------------------------------------------------

AccessRuntime::AccessRuntime(RuntimeOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    apply_histogram_ = options_.metrics->GetHistogram("runtime.apply_batch");
    checkpoint_histogram_ =
        options_.metrics->GetHistogram("runtime.checkpoint");
  }
}

AccessRuntime::~AccessRuntime() = default;

Result<std::unique_ptr<AccessRuntime>> AccessRuntime::Open(
    SystemState initial, RuntimeOptions options) {
  options.num_shards = std::max<uint32_t>(1, options.num_shards);
  if (options.metrics != nullptr && options.durability.metrics == nullptr) {
    options.durability.metrics = options.metrics;
  }
  const bool wants_retention = options.retention.max_hot_events > 0 ||
                               options.retention.horizon > 0;
  if (options.retention.horizon > 0 &&
      options.retention.max_hot_events == 0) {
    return Status::InvalidArgument(
        "retention horizon requires max_hot_events > 0 (nothing is ever "
        "sealed, so nothing could be dropped)");
  }
  std::unique_ptr<AccessRuntime> rt(new AccessRuntime(options));
  if (!options.durable_dir.has_value()) {
    if (wants_retention) {
      return Status::InvalidArgument(
          "retention (tiered cold storage) requires a durable sharded "
          "backend: set durable_dir and num_shards > 1");
    }
    if (options.num_shards == 1) {
      rt->backend_ = std::make_unique<SequentialBackend>(std::move(initial),
                                                         options.engine);
    } else {
      auto backend =
          std::make_unique<ShardedBackend>(std::move(initial), options);
      LTAM_RETURN_IF_ERROR(backend->Init());
      rt->backend_ = std::move(backend);
    }
  } else {
    const std::string& dir = *options.durable_dir;
    // Sniff any committed state so an existing directory is never opened
    // through the wrong engine (a sharded MANIFEST must not be shadowed
    // by a fresh sequential runtime, and vice versa). The directory's
    // own shape wins over num_shards; Stats() reports the override.
    const bool has_manifest = FileExists(dir + "/" + ManifestFileName());
    const bool has_sequential =
        FileExists(dir + "/" + DurableSystem::SnapshotFileName()) ||
        FileExists(dir + "/" + DurableSystem::WalFileName());
    const bool want_sharded = options.num_shards > 1;
    if (has_manifest || (want_sharded && !has_sequential)) {
      DurableShardedOptions sharded_options;
      sharded_options.num_shards = options.num_shards;
      sharded_options.engine = options.engine;
      sharded_options.sync_every_batch = options.sync_every_batch;
      sharded_options.durability = options.durability;
      sharded_options.retention = options.retention;
      LTAM_ASSIGN_OR_RETURN(
          std::unique_ptr<DurableShardedSystem> sys,
          DurableShardedSystem::Open(dir, std::move(initial),
                                     sharded_options));
      rt->backend_ = std::make_unique<DurableShardedBackend>(std::move(sys));
    } else {
      if (wants_retention) {
        return Status::InvalidArgument(
            "retention (tiered cold storage) requires the durable sharded "
            "backend; this directory/request resolves to the sequential "
            "durable runtime");
      }
      LTAM_ASSIGN_OR_RETURN(
          std::unique_ptr<DurableSystem> sys,
          DurableSystem::Open(dir, std::move(initial), options.engine,
                              options.durability, options.sync_every_batch));
      if (!has_sequential) {
        // Fresh directory: commit the seed immediately so recovery never
        // needs `initial` again — the same contract the sharded runtime
        // establishes with its epoch-0 checkpoint.
        LTAM_RETURN_IF_ERROR(sys->Checkpoint());
      }
      rt->backend_ = std::make_unique<DurableSequentialBackend>(
          std::move(sys), /*shard_override=*/want_sharded);
      if (want_sharded) {
        LTAM_LOG_WARNING << "durable directory '" << dir
                         << "' holds a sequential runtime; requested "
                         << options.num_shards << " shards ignored";
      }
    }
  }
  if (options.durable_dir.has_value()) {
    // The promotion counter survives restarts with the rest of the
    // directory; a fenced ex-primary must come back fenced.
    LTAM_ASSIGN_OR_RETURN(rt->replication_epoch_,
                          LoadReplicationEpoch(*options.durable_dir));
  }
  rt->view_ = rt->backend_->MakeView();
  rt->query_ = std::make_unique<QueryEngine>(
      &rt->backend_->graph(), &rt->backend_->auth_db(), rt->view_.get(),
      &rt->backend_->profiles());
  return rt;
}

Status AccessRuntime::ReplicaRefusal(const char* op) const {
  std::string message =
      std::string(op) +
      " refused: this runtime is a read-only replica — redirect writes "
      "to the primary";
  // The token is load-bearing wire surface (protocol v6): clients grep
  // for `[primary=` and re-dial the named endpoint, so the format must
  // stay `[primary=host:port]` verbatim.
  if (!primary_redirect_.empty()) {
    message += " [primary=" + primary_redirect_ + "]";
  }
  return Status::FailedPrecondition(message);
}

Result<Decision> AccessRuntime::Apply(const AccessEvent& event) {
  if (in_mutate_) {
    return Status::FailedPrecondition(
        "Apply called inside Mutate: events may only be applied between "
        "mutation windows");
  }
  if (replica_) return ReplicaRefusal("Apply");
  Status durability;
  LTAM_ASSIGN_OR_RETURN(
      std::vector<Decision> decisions,
      backend_->ApplyBatch(Span<const AccessEvent>(&event, 1), &durability));
  LTAM_CHECK(decisions.size() == 1);
  ++events_applied_;
  events_refused_ += CountRefusedEvents(decisions, durability);
  if (!durability.ok()) {
    if (!decisions[0].granted &&
        decisions[0].reason == DenyReason::kWalError) {
      return durability.WithContext(
          "event refused before application (resubmit is safe)");
    }
    return durability.WithContext(
        "event applied but group commit failed: durability in doubt, do "
        "not resubmit");
  }
  return decisions[0];
}

Result<BatchResult> AccessRuntime::ApplyBatch(Span<const AccessEvent> batch) {
  if (in_mutate_) {
    ++batches_rejected_;
    return Status::FailedPrecondition(
        "ApplyBatch called inside Mutate: events may only be applied "
        "between mutation windows");
  }
  if (replica_) {
    ++batches_rejected_;
    return ReplicaRefusal("ApplyBatch");
  }
  if (options_.max_batch_events > 0 &&
      batch.size() > options_.max_batch_events) {
    ++batches_rejected_;
    return Status::InvalidArgument(
        "ApplyBatch of " + std::to_string(batch.size()) +
        " events exceeds max_batch_events=" +
        std::to_string(options_.max_batch_events) +
        "; nothing was applied");
  }
  BatchResult out;
  Status durability;
  const uint64_t t0 = apply_histogram_ != nullptr ? MonotonicNowNs() : 0;
  LTAM_ASSIGN_OR_RETURN(out.decisions,
                        backend_->ApplyBatch(batch, &durability));
  if (apply_histogram_ != nullptr) {
    apply_histogram_->Record(MonotonicNowNs() - t0);
  }
  out.durability = std::move(durability);
  out.alerts = TakePendingAlerts();
  ++batches_applied_;
  events_applied_ += batch.size();
  events_refused_ += CountRefusedEvents(out.decisions, out.durability);
  out.watermark = Watermark();
  return out;
}

Status AccessRuntime::ApplyFix(const PositionFix& fix) {
  if (in_mutate_) {
    return Status::FailedPrecondition(
        "ApplyFix called inside Mutate: events may only be applied between "
        "mutation windows");
  }
  if (replica_) return ReplicaRefusal("ApplyFix");
  if (!resolver_.has_value()) {
    Result<LocationResolver> built = LocationResolver::Build(graph());
    if (!built.ok()) {
      return built.status().WithContext("building the position resolver");
    }
    resolver_.emplace(std::move(built).ValueOrDie());
  }
  std::optional<LocationId> located = resolver_->Resolve(fix.position);
  AccessEvent event;
  if (located.has_value()) {
    event = AccessEvent::Observe(fix.time, fix.subject, *located);
  } else {
    // Outside every boundary: if the subject is recorded inside, they
    // left without an exit request — close the stay; otherwise ignore.
    if (movements().CurrentLocation(fix.subject) == kInvalidLocation) {
      return Status::OK();
    }
    event = AccessEvent::Exit(fix.time, fix.subject);
  }
  Result<Decision> decision = Apply(event);
  if (!decision.ok()) return decision.status();
  if (!decision->granted &&
      (decision->reason == DenyReason::kObservationRejected ||
       decision->reason == DenyReason::kExitRejected)) {
    return Status::FailedPrecondition(
        std::string("position fix refused: ") +
        DenyReasonToString(decision->reason));
  }
  return Status::OK();
}

Status AccessRuntime::Tick(Chronon t) {
  if (in_mutate_) {
    return Status::FailedPrecondition(
        "Tick called inside Mutate: events may only be applied between "
        "mutation windows");
  }
  // Patrol ticks are WAL-logged, so a replica receives the primary's
  // over the stream; a locally injected one would fork the history.
  if (replica_) return ReplicaRefusal("Tick");
  return backend_->Tick(t);
}

std::vector<Alert> AccessRuntime::DrainAlerts() { return TakePendingAlerts(); }

std::vector<Alert> AccessRuntime::TakePendingAlerts() {
  // Every backend drains in the canonical SortAlerts order already.
  return backend_->DrainAlerts();
}

Status AccessRuntime::Mutate(
    const std::function<Status(const MutableStores&)>& fn) {
  if (in_mutate_) {
    return Status::FailedPrecondition("reentrant Mutate");
  }
  if (replica_) return ReplicaRefusal("Mutate");
  // RAII so a throwing callback cannot leave the runtime latched shut
  // (fn is arbitrary user code; exceptions must not wedge enforcement).
  struct WindowGuard {
    AccessRuntime* rt;
    ~WindowGuard() {
      rt->in_mutate_ = false;
      rt->backend_->AfterMutate();
      // The layout may have changed; rebuild the fix resolver on demand.
      rt->resolver_.reset();
    }
  };
  Status status;
  {
    in_mutate_ = true;
    WindowGuard guard{this};
    status = fn(backend_->Stores());
  }
  if (options_.durable_dir.has_value() && options_.checkpoint_after_mutate) {
    // Mutations are not write-ahead logged and are applied in place, so
    // even a failed callback may have mutated the stores — checkpoint
    // unconditionally to keep recovery equivalent to the live state.
    Status checkpointed = backend_->Checkpoint();
    if (!checkpointed.ok()) {
      return status.ok()
                 ? checkpointed.WithContext("checkpointing after a mutation")
                 : status.WithContext("additionally, the post-mutation "
                                      "checkpoint failed: " +
                                      checkpointed.ToString());
    }
  }
  return status;
}

Status AccessRuntime::Checkpoint() {
  if (in_mutate_) {
    return Status::FailedPrecondition("Checkpoint called inside Mutate");
  }
  const uint64_t t0 = checkpoint_histogram_ != nullptr ? MonotonicNowNs() : 0;
  Status status = backend_->Checkpoint();
  if (checkpoint_histogram_ != nullptr) {
    checkpoint_histogram_->Record(MonotonicNowNs() - t0);
  }
  return status;
}

Status AccessRuntime::WaitDurable() { return backend_->WaitDurable(); }

DurabilityWatermark AccessRuntime::Watermark() const {
  if (!options_.durable_dir.has_value()) {
    // In-memory: every applied event is as durable as it will ever be.
    const uint64_t applied = static_cast<uint64_t>(events_applied_);
    return DurabilityWatermark{applied, applied};
  }
  return backend_->Watermark();
}

RuntimeStats AccessRuntime::Stats() const {
  RuntimeStats stats;
  stats.requested_shards = options_.num_shards;
  backend_->FillStats(&stats);
  stats.batches_applied = batches_applied_;
  stats.events_applied = events_applied_;
  stats.events_refused = events_refused_;
  stats.batches_rejected = batches_rejected_;
  stats.pending_alerts = backend_->pending_alerts();
  const DurabilityWatermark mark = Watermark();
  stats.applied_offset = mark.applied;
  stats.durable_offset = mark.durable;
  stats.replica = replica_;
  stats.replication_epoch = replication_epoch_;
  return stats;
}

Status AccessRuntime::DemoteToReplica() {
  if (replica_) return Status::OK();
  if (!backend_->replication_capable()) {
    return Status::FailedPrecondition(
        "DemoteToReplica requires a durable sharded runtime "
        "(durable_dir set, num_shards > 1)");
  }
  replica_ = true;
  return Status::OK();
}

Result<uint64_t> AccessRuntime::Promote() {
  if (!options_.durable_dir.has_value()) {
    return Status::FailedPrecondition(
        "Promote requires a durable runtime (no directory to persist the "
        "epoch into)");
  }
  const uint64_t next = replication_epoch_ + 1;
  // Persist BEFORE accepting a single write: the fencing gate relies on
  // the on-disk epoch being >= the epoch of anything this server ever
  // ships or applies.
  LTAM_RETURN_IF_ERROR(StoreReplicationEpoch(*options_.durable_dir, next));
  replication_epoch_ = next;
  replica_ = false;
  return next;
}

Status AccessRuntime::AdoptReplicationEpoch(uint64_t epoch) {
  if (epoch == replication_epoch_) return Status::OK();
  LTAM_RETURN_IF_ERROR(CheckStreamEpoch(replication_epoch_, epoch));
  if (!options_.durable_dir.has_value()) {
    return Status::FailedPrecondition(
        "cannot persist a replication epoch without a durable directory");
  }
  LTAM_RETURN_IF_ERROR(StoreReplicationEpoch(*options_.durable_dir, epoch));
  replication_epoch_ = epoch;
  return Status::OK();
}

Result<std::vector<uint64_t>> AccessRuntime::ReplicationPositions() const {
  return backend_->ReplicationPositions();
}

Result<AccessRuntime::ReplicationSlice> AccessRuntime::ReadReplicationSlice(
    uint32_t shard, uint64_t from, size_t max_records) {
  return backend_->ReadReplicationSlice(shard, from, max_records);
}

Result<AccessRuntime::ReplicationApplyResult> AccessRuntime::ApplyReplicated(
    uint32_t shard, uint64_t start, const std::vector<std::string>& records) {
  if (!replica_) {
    return Status::FailedPrecondition(
        "ApplyReplicated on a primary: only replicas apply shipped records");
  }
  if (in_mutate_) {
    return Status::FailedPrecondition("ApplyReplicated called inside Mutate");
  }
  LTAM_ASSIGN_OR_RETURN(ReplicationApplyResult out,
                        backend_->ApplyReplicated(shard, start, records));
  ++batches_applied_;
  events_applied_ += out.decisions.size();
  return out;
}

const MultilevelLocationGraph& AccessRuntime::graph() const {
  return backend_->graph();
}

const UserProfileDatabase& AccessRuntime::profiles() const {
  return backend_->profiles();
}

const AuthorizationDatabase& AccessRuntime::auth_db() const {
  return backend_->auth_db();
}

std::string RuntimeStatsToString(const RuntimeStats& stats) {
  std::string out;
  auto line = [&out](const char* name, const std::string& value) {
    out += name;
    out += ": ";
    out += value;
    out += '\n';
  };
  line("shards", std::to_string(stats.num_shards) + " (requested " +
                     std::to_string(stats.requested_shards) +
                     (stats.shard_count_overridden ? ", overridden)" : ")"));
  line("durable", stats.durable ? "yes" : "no");
  line("role", stats.replica ? "replica (read-only)" : "primary");
  line("replication-epoch", std::to_string(stats.replication_epoch));
  if (stats.durable) {
    line("epoch", std::to_string(stats.epoch));
    line("wal-events", std::to_string(stats.wal_events));
    line("wal-append-failures", std::to_string(stats.wal_append_failures));
    line("wal-sync-failures", std::to_string(stats.wal_sync_failures));
    line("cold-segments", std::to_string(stats.cold_segments));
    line("cold-bytes", std::to_string(stats.cold_bytes));
    line("dropped-events", std::to_string(stats.dropped_events));
    line("compaction-runs", std::to_string(stats.compaction_runs));
    line("checkpoint-dirty-segments",
         std::to_string(stats.checkpoint_dirty_segments));
  }
  line("durability-watermark", std::to_string(stats.durable_offset) + "/" +
                                   std::to_string(stats.applied_offset) +
                                   " durable/applied");
  if (!stats.shard_watermarks.empty()) {
    std::string marks;
    for (size_t k = 0; k < stats.shard_watermarks.size(); ++k) {
      const DurabilityWatermark& w = stats.shard_watermarks[k];
      if (k > 0) marks += ' ';
      marks += std::to_string(k) + ":" + std::to_string(w.durable) + "/" +
               std::to_string(w.applied);
    }
    line("shard-watermarks", marks + " durable/applied");
  }
  line("requests-processed", std::to_string(stats.requests_processed));
  line("requests-granted", std::to_string(stats.requests_granted));
  line("batches-applied", std::to_string(stats.batches_applied));
  line("events-applied", std::to_string(stats.events_applied));
  line("events-refused", std::to_string(stats.events_refused));
  line("batches-rejected", std::to_string(stats.batches_rejected));
  line("pending-alerts", std::to_string(stats.pending_alerts));
  return out;
}

Status RegisterAndDeriveScriptedRules(AccessRuntime* runtime,
                                      size_t* derived) {
  return runtime->Mutate([derived](const MutableStores& stores) {
    RuleEngine rules(&stores.auth_db, &stores.profiles, &stores.graph);
    for (AuthorizationRule& rule : stores.rules) {
      LTAM_ASSIGN_OR_RETURN(RuleId id, rules.AddRule(rule));
      (void)id;
    }
    LTAM_ASSIGN_OR_RETURN(DerivationReport report, rules.DeriveAll());
    if (derived != nullptr) *derived = report.derived;
    return Status::OK();
  });
}

}  // namespace ltam
