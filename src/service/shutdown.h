// Copyright 2026 The LTAM Authors.
// Shared shutdown discipline for LTAM hosts (the shell, ltam_serve).
//
// A durable runtime's mutations are not write-ahead logged and its WAL
// tail replays from the last checkpoint, so a host that exits without
// checkpointing leaves recovery with a long replay (or, after Mutate
// with checkpoint_after_mutate disabled, a diverged state). Every host
// therefore follows the same exit path: latch the Ctrl-C/SIGTERM
// request, fall out of the serving/input loop, and checkpoint the
// runtime before the process ends. EOF on stdin takes the same path as
// a signal — interactive and scripted shutdowns are not different
// cases.

#ifndef LTAM_SERVICE_SHUTDOWN_H_
#define LTAM_SERVICE_SHUTDOWN_H_

#include "runtime/access_runtime.h"
#include "util/status.h"

namespace ltam {

/// Installs SIGINT/SIGTERM handlers that latch ShutdownRequested().
/// Installed without SA_RESTART, so a signal interrupts blocking reads
/// (std::getline on stdin fails with EINTR) and loops notice promptly.
/// Idempotent.
void InstallShutdownSignalHandlers();

/// True once SIGINT or SIGTERM arrived. Async-signal-safe to set;
/// cheap to poll.
bool ShutdownRequested();

/// Testing/embedding hook: latches (or clears) the flag directly.
void RequestShutdown(bool requested = true);

/// The shared exit step: checkpoints a durable runtime so recovery
/// restarts from the exit state instead of replaying the whole WAL
/// tail. A no-op (returning OK) on in-memory runtimes.
Status CheckpointBeforeExit(AccessRuntime* runtime);

}  // namespace ltam

#endif  // LTAM_SERVICE_SHUTDOWN_H_
