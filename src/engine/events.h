// Copyright 2026 The LTAM Authors.
// Event vocabulary of the enforcement system.
//
// The central control station receives a stream of timestamped events:
// explicit access requests (Definition 6), confirmed entries/exits, and
// raw position fixes from the (simulated) positioning infrastructure.

#ifndef LTAM_ENGINE_EVENTS_H_
#define LTAM_ENGINE_EVENTS_H_

#include <string>
#include <vector>

#include "core/decision.h"
#include "graph/location.h"
#include "profile/user_profile.h"
#include "spatial/geometry.h"
#include "time/chronon.h"

namespace ltam {

/// A recorded movement: subject moved from `from` to `to` at `time`.
/// `from`/`to` of kInvalidLocation means outside the site.
struct MovementEvent {
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  LocationId from = kInvalidLocation;
  LocationId to = kInvalidLocation;

  std::string ToString() const;
};

/// A raw position fix from the tracking substrate.
struct PositionFix {
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  Point position;
};

/// What kind of engine entry point an AccessEvent drives.
enum class AccessEventKind : uint8_t {
  kRequestEntry = 0,  ///< Definition-6 access request (t, s, l).
  kRequestExit = 1,   ///< Subject steps outside the site; `location` unused.
  kObserve = 2,       ///< Tracking observation: s seen inside l.
};

const char* AccessEventKindToString(AccessEventKind kind);

/// One timestamped event of the enforcement stream, in the shape batch
/// pipelines consume (ShardedDecisionEngine::EvaluateBatch). Within a
/// batch, events of the same subject must be in nondecreasing time order;
/// events of different subjects are unordered relative to each other.
struct AccessEvent {
  AccessEventKind kind = AccessEventKind::kRequestEntry;
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;

  static AccessEvent Entry(Chronon t, SubjectId s, LocationId l) {
    return AccessEvent{AccessEventKind::kRequestEntry, t, s, l};
  }
  static AccessEvent Exit(Chronon t, SubjectId s) {
    return AccessEvent{AccessEventKind::kRequestExit, t, s, kInvalidLocation};
  }
  static AccessEvent Observe(Chronon t, SubjectId s, LocationId l) {
    return AccessEvent{AccessEventKind::kObserve, t, s, l};
  }

  std::string ToString() const;
};

/// Kinds of security alerts the engine can raise.
enum class AlertType : uint8_t {
  /// Subject observed inside a location with no active grant — e.g. a
  /// group tailgating through a door opened by a single authorized user
  /// ("This eliminates situation[s] where a group of users enters a
  /// restricted location based on a single user authorization").
  kUnauthorizedPresence = 0,
  /// Subject stayed past the end of the exit duration ("Should this
  /// restriction be violated, security alerts can be triggered").
  kOverstay = 1,
  /// Subject left outside the authorized exit duration (too early).
  kEarlyExit = 2,
  /// An access request was denied.
  kAccessDenied = 3,
  /// Subject appeared in a location not adjacent to their last known
  /// location (tracking gap or barrier bypass).
  kImpossibleMovement = 4,
};

const char* AlertTypeToString(AlertType type);

/// A security alert raised by the monitor.
struct Alert {
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;
  AlertType type = AlertType::kUnauthorizedPresence;
  std::string detail;

  std::string ToString() const;
};

/// The canonical deterministic alert ordering — stable by (time,
/// subject, location, type). Every surface that merges or reports alert
/// buffers (the sharded drain, the runtime facade) sorts with this one
/// helper so orderings can never drift apart.
void SortAlerts(std::vector<Alert>* alerts);

}  // namespace ltam

#endif  // LTAM_ENGINE_EVENTS_H_
