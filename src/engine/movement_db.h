// Copyright 2026 The LTAM Authors.
// The location & movements database (Figure 3).
//
// "The location & movements database stores the location layout, as well
// as users' movements. These data are then used for authorization
// validation, system status checking, etc." The layout lives in
// MultilevelLocationGraph; this class stores the movement side: the
// current location of every subject plus an append-only movement history
// supporting temporal queries (where was s at t, who was in l at t,
// co-location/contact queries).
//
// Tiering: the row-form indexes above are the *hot* tier. Once a durable
// runtime decides a shard's hot tier has grown past its budget, it calls
// SealCompletedStays() — every completed stay moves into an immutable
// columnar ColdSegment (engine/cold_segment.h) and the hot tier shrinks
// back to the open stays plus one synthetic opening event each, chosen so
// that replaying the remaining history() reconstructs the hot tier
// exactly (the per-shard snapshot stays a plain event stream). Queries
// transparently merge both tiers, so sealing never changes an answer;
// only history() (the raw hot log, what snapshots persist) and
// MergedMovements-style replay consumers see the smaller hot tier.

#ifndef LTAM_ENGINE_MOVEMENT_DB_H_
#define LTAM_ENGINE_MOVEMENT_DB_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/events.h"
#include "time/interval.h"
#include "util/result.h"

namespace ltam {

struct ColdSegment;

/// An interval a subject spent inside one location.
struct Stay {
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;
  Chronon enter_time = 0;
  /// kChrononMax while the stay is still open.
  Chronon exit_time = kChrononMax;
};

/// Movement-history tiering and retention knobs (durable sharded
/// runtimes; see RuntimeOptions::retention).
struct RetentionOptions {
  /// Drop sealed segments whose every stay ended more than this many
  /// chronons before the newest recorded time. 0 = keep everything.
  /// Queries beyond the horizon answer as if those subjects were outside
  /// — only data inside the retained window is equivalence-guaranteed.
  Chronon horizon = 0;
  /// Seal a shard's completed stays into a cold segment when its hot
  /// event count exceeds this at a checkpoint. 0 = tiering disabled
  /// (the unbounded pre-tiering behavior).
  size_t max_hot_events = 0;
  /// Merge the oldest `compaction_fanin` cold segments whenever a shard
  /// has accumulated at least that many (bounds per-query segment count
  /// at log-ish amortized cost). Minimum effective value is 2.
  uint32_t compaction_fanin = 8;
};

/// Indexed store of user movements.
class MovementDatabase {
 public:
  MovementDatabase() = default;

  /// Records that `s` moved to `to` at `time` (kInvalidLocation = left the
  /// site). Events must arrive in nondecreasing time order per subject;
  /// out-of-order events are rejected (sealed history counts: an event
  /// older than a subject's last sealed stay is rejected exactly as the
  /// unbounded database would).
  Status RecordMovement(Chronon time, SubjectId s, LocationId to);

  /// Current location of `s`; kInvalidLocation when outside/unknown.
  LocationId CurrentLocation(SubjectId s) const;

  /// Time `s` entered their current location; NotFound when outside.
  Result<Chronon> CurrentStaySince(SubjectId s) const;

  /// Where `s` was at time `t`; kInvalidLocation when outside.
  LocationId LocationAt(SubjectId s, Chronon t) const;

  /// Subjects inside `l` at time `t`.
  std::vector<SubjectId> OccupantsAt(LocationId l, Chronon t) const;

  /// Subjects currently inside `l`.
  std::vector<SubjectId> CurrentOccupants(LocationId l) const;

  /// Every completed and open stay of `s`, in time order (cold tiers
  /// first — sealed stays always precede a subject's hot stays).
  std::vector<Stay> StaysOf(SubjectId s) const;

  /// Every stay in `l`. Without a cold tier: hot arrival order (the
  /// historical contract). With one: normalized to (enter_time, subject,
  /// exit_time, location) — cross-subject arrival interleaving does not
  /// survive sealing, the same normalization the sharded view applies.
  std::vector<Stay> StaysIn(LocationId l) const;

  /// Borrowed view of the per-location HOT stay index (an empty vector
  /// when `l` has no hot stays) — the allocation-free counterpart of
  /// StaysIn for hot read paths like the cross-shard contact fan-out.
  /// After sealing this holds only open stays; cold-aware callers use
  /// AppendContactsForStay / StaysIn. Valid until the next
  /// RecordMovement.
  const std::vector<Stay>& StaysInIndex(LocationId l) const;

  /// Contact query (the SARS scenario of Section 1): every (subject,
  /// location, overlap) triple where `other` shared a location with `s`
  /// for at least `min_overlap` chronons during `window`.
  struct Contact {
    SubjectId other = kInvalidSubject;
    LocationId location = kInvalidLocation;
    Chronon overlap_start = 0;
    Chronon overlap_end = 0;
  };
  std::vector<Contact> ContactsOf(SubjectId s, const TimeInterval& window,
                                  Chronon min_overlap = 1) const;

  /// Appends to `out` every contact between `mine` (one stay of the
  /// probe subject) and this database's stays — hot AND cold — in
  /// `mine`'s location. The per-database step both ContactsOf and the
  /// sharded fan-out build on, so local and sharded answers stay
  /// identical; callers SortContacts when done.
  void AppendContactsForStay(const Stay& mine, const TimeInterval& window,
                             Chronon min_overlap,
                             std::vector<Contact>* out) const;

  /// Raw HOT movement log, in arrival order — what snapshots persist.
  /// After sealing this is only the tail since the last seal (plus one
  /// synthetic opening event per open stay); use total_events() for the
  /// logical history size.
  const std::vector<MovementEvent>& history() const { return history_; }

  /// Logical history length: hot events + events folded into cold
  /// segments + events dropped past the retention horizon. Equals
  /// history().size() exactly until the first seal.
  uint64_t total_events() const {
    return history_.size() + cold_events_ + dropped_events_;
  }

  /// Number of subjects currently inside some location.
  size_t tracked_subjects() const { return current_.size(); }

  // --- Cold tier -----------------------------------------------------------

  /// Seals every completed stay into a new immutable cold segment and
  /// shrinks the hot tier to the open stays (each represented by one
  /// synthetic opening event with from = kInvalidLocation, so replaying
  /// history() rebuilds the hot tier byte-identically). Queries are
  /// unaffected — they merge the tiers. Returns nullptr when there is
  /// nothing to seal (no completed stays).
  std::shared_ptr<const ColdSegment> SealCompletedStays();

  /// Installs a recovered cold tier (oldest segment first) plus the
  /// count of events already dropped past the horizon. Recovery-time
  /// only: replaces any existing tier and rebuilds the per-subject
  /// monotonicity floors from the segments.
  void AttachColdTier(
      std::vector<std::shared_ptr<const ColdSegment>> segments,
      uint64_t dropped_events);

  /// Replaces the cold segment list after compaction merged segments
  /// and/or retention dropped a prefix. `dropped_events` is the new
  /// cumulative drop count (monotonic). Monotonicity floors are kept —
  /// dropping history must not re-admit out-of-order events the
  /// unbounded database would reject.
  void ReplaceColdSegments(
      std::vector<std::shared_ptr<const ColdSegment>> segments,
      uint64_t dropped_events);

  /// The sealed segments, oldest first.
  const std::vector<std::shared_ptr<const ColdSegment>>& cold_segments()
      const {
    return cold_;
  }

  /// Events folded into the cold tier / dropped beyond the horizon.
  uint64_t cold_events() const { return cold_events_; }
  uint64_t dropped_events() const { return dropped_events_; }

  /// Approximate in-memory bytes held by the cold columns.
  size_t ColdBytes() const;

 private:
  std::vector<MovementEvent> history_;
  /// Completed + open stays per subject since the last seal, time order.
  std::unordered_map<SubjectId, std::vector<Stay>> stays_by_subject_;
  /// Stay indices (into stays_by_subject_) are implicit; per-location we
  /// keep copies for fast location scans (building-scale data).
  std::unordered_map<LocationId, std::vector<Stay>> stays_by_location_;
  std::unordered_map<SubjectId, LocationId> current_;
  /// Sealed segments, oldest first (shared: checkpoints hold references
  /// while persisting without copying columns).
  std::vector<std::shared_ptr<const ColdSegment>> cold_;
  uint64_t cold_events_ = 0;
  uint64_t dropped_events_ = 0;
  /// Exit time of each subject's last *sealed* stay: the monotonicity
  /// check must survive sealing (and, within a process, retention), or a
  /// sealed runtime would accept out-of-order events the unbounded one
  /// rejects.
  std::unordered_map<SubjectId, Chronon> sealed_floor_;

  /// Patches the open stay copy in stays_by_location_ when it closes.
  void CloseLocationStay(SubjectId s, LocationId l, Chronon exit_time);
};

/// Appends to `out` every contact between `mine` (one stay of the probe
/// subject, clipped to `window`) and the stays in `candidates` that share
/// its location for at least `min_overlap` chronons. Candidates of the
/// probe subject itself are skipped. Shared by MovementDatabase::ContactsOf
/// and the sharded MovementView fan-out so both produce identical
/// contact sets.
void AppendStayContacts(const Stay& mine, const TimeInterval& window,
                        Chronon min_overlap,
                        const std::vector<Stay>& candidates,
                        std::vector<MovementDatabase::Contact>* out);

/// Deterministic contact ordering: (overlap_start, other, location,
/// overlap_end). Shared final sort of every ContactsOf implementation.
void SortContacts(std::vector<MovementDatabase::Contact>* contacts);

}  // namespace ltam

#endif  // LTAM_ENGINE_MOVEMENT_DB_H_
