// Copyright 2026 The LTAM Authors.

#include "util/status.h"

namespace ltam {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kPermissionDenied:
      return "permission-denied";
    case StatusCode::kParseError:
      return "parse-error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + msg_);
}

}  // namespace ltam
