// Copyright 2026 The LTAM Authors.

#include "query/query_engine.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace ltam {

QueryEngine::QueryEngine(const MultilevelLocationGraph* graph,
                         const AuthorizationDatabase* auth_db,
                         const MovementView* movements,
                         const UserProfileDatabase* profiles)
    : graph_(graph),
      auth_db_(auth_db),
      local_view_(nullptr),
      external_view_(movements),
      profiles_(profiles) {
  LTAM_CHECK(graph != nullptr);
  LTAM_CHECK(auth_db != nullptr);
  LTAM_CHECK(movements != nullptr);
  LTAM_CHECK(profiles != nullptr);
}

QueryEngine::QueryEngine(const MultilevelLocationGraph* graph,
                         const AuthorizationDatabase* auth_db,
                         const MovementDatabase* movement_db,
                         const UserProfileDatabase* profiles)
    : graph_(graph),
      auth_db_(auth_db),
      local_view_(movement_db),
      profiles_(profiles) {
  LTAM_CHECK(graph != nullptr);
  LTAM_CHECK(auth_db != nullptr);
  LTAM_CHECK(movement_db != nullptr);
  LTAM_CHECK(profiles != nullptr);
}

Decision QueryEngine::CanAccess(SubjectId s, LocationId l, Chronon t) const {
  return auth_db_->CheckAccess(t, s, l);
}

std::vector<AuthId> QueryEngine::AuthorizationsOf(SubjectId s) const {
  return auth_db_->ForSubject(s);
}

std::vector<SubjectId> QueryEngine::WhoCanAccess(
    LocationId l, const TimeInterval& window) const {
  std::set<SubjectId> out;
  for (AuthId id : auth_db_->ForLocation(l)) {
    const AuthRecord& rec = auth_db_->record(id);
    if (rec.auth.entry_duration().Overlaps(window)) {
      out.insert(rec.auth.subject());
    }
  }
  return std::vector<SubjectId>(out.begin(), out.end());
}

Result<std::vector<LocationId>> QueryEngine::InaccessibleLocations(
    SubjectId s, std::optional<LocationId> scope) const {
  LTAM_ASSIGN_OR_RETURN(
      InaccessibleResult r,
      FindInaccessible(*graph_, scope.value_or(graph_->root()), s, *auth_db_,
                       InaccessibleOptions{}));
  return r.inaccessible;
}

Result<std::vector<LocationId>> QueryEngine::AccessibleLocations(
    SubjectId s, std::optional<LocationId> scope) const {
  LTAM_ASSIGN_OR_RETURN(
      InaccessibleResult r,
      FindInaccessible(*graph_, scope.value_or(graph_->root()), s, *auth_db_,
                       InaccessibleOptions{}));
  std::vector<LocationId> out;
  for (LocationId l : r.analyzed) {
    if (!r.IsInaccessible(l)) out.push_back(l);
  }
  return out;
}

Result<IntervalSet> QueryEngine::AccessWindows(
    SubjectId s, LocationId l, std::optional<LocationId> scope) const {
  if (!graph_->Exists(l) || !graph_->location(l).IsPrimitive()) {
    return Status::InvalidArgument(
        "access windows are defined for primitive locations");
  }
  LTAM_ASSIGN_OR_RETURN(
      InaccessibleResult r,
      FindInaccessible(*graph_, scope.value_or(graph_->root()), s, *auth_db_,
                       InaccessibleOptions{}));
  for (const LocationTimeState& st : r.final_states) {
    if (st.location == l) return st.grant;
  }
  return Status::NotFound("location is outside the analysis scope");
}

Result<AuthorizedRoute> QueryEngine::CheckRoute(
    SubjectId s, const std::vector<LocationId>& route,
    const TimeInterval& window) const {
  if (route.empty()) return Status::InvalidArgument("empty route");
  if (!graph_->IsRoute(route)) {
    return Status::InvalidArgument("sequence is not a route in the graph");
  }
  // Section 6 chain. For each step we must pick one authorization whose
  // grant (and, for non-final steps, departure) duration in the current
  // window is non-null. Following the paper we work with the *union*
  // windows per location: grant_i from window_i, departure_i from
  // window_i, and window_{i+1} = departure_i.
  AuthorizedRoute out;
  out.route = route;
  TimeInterval current = window;
  for (size_t i = 0; i < route.size(); ++i) {
    IntervalSet grants;
    IntervalSet departures;
    for (AuthId id : auth_db_->ForSubjectLocation(s, route[i])) {
      const LocationTemporalAuthorization& a = auth_db_->record(id).auth;
      std::optional<TimeInterval> g = a.GrantDuration(current);
      if (!g.has_value()) continue;
      grants.Add(*g);
      std::optional<TimeInterval> d = a.DepartureDuration(current);
      if (d.has_value()) departures.Add(*d);
    }
    if (grants.empty()) {
      return Status::NotFound("route not authorized: no grant duration at '" +
                              graph_->location(route[i]).name + "'");
    }
    out.grants.push_back(TimeInterval(grants.Min(), grants.Max()));
    bool is_last = (i + 1 == route.size());
    if (is_last) {
      if (!departures.empty()) {
        out.departures.push_back(
            TimeInterval(departures.Min(), departures.Max()));
      }
      break;
    }
    if (departures.empty()) {
      return Status::NotFound(
          "route not authorized: no departure duration at '" +
          graph_->location(route[i]).name + "'");
    }
    TimeInterval dep(departures.Min(), departures.Max());
    out.departures.push_back(dep);
    current = dep;
  }
  return out;
}

Result<AuthorizedRoute> QueryEngine::FindAuthorizedRoute(
    SubjectId s, LocationId src, LocationId dst, const TimeInterval& window,
    size_t max_routes, size_t max_length) const {
  std::vector<std::vector<LocationId>> routes =
      graph_->EnumerateRoutes(src, dst, max_routes, max_length);
  if (routes.empty()) {
    return Status::NotFound("no route exists between the locations");
  }
  // Prefer short routes.
  std::stable_sort(routes.begin(), routes.end(),
                   [](const std::vector<LocationId>& a,
                      const std::vector<LocationId>& b) {
                     return a.size() < b.size();
                   });
  for (const std::vector<LocationId>& route : routes) {
    Result<AuthorizedRoute> r = CheckRoute(s, route, window);
    if (r.ok()) return r;
  }
  return Status::NotFound("no authorized route within the request window");
}

LocationId QueryEngine::WhereWas(SubjectId s, Chronon t) const {
  return movements().LocationAt(s, t);
}

std::vector<SubjectId> QueryEngine::Occupants(LocationId l, Chronon t) const {
  return movements().OccupantsAt(l, t);
}

std::vector<MovementDatabase::Contact> QueryEngine::Contacts(
    SubjectId s, const TimeInterval& window, Chronon min_overlap) const {
  return movements().ContactsOf(s, window, min_overlap);
}

std::vector<SubjectId> QueryEngine::OverstayingAt(Chronon t) const {
  std::vector<SubjectId> out;
  for (SubjectId s : profiles_->AllSubjects()) {
    LocationId cur = movements().CurrentLocation(s);
    if (cur == kInvalidLocation) continue;
    // Overstaying iff every authorization's exit window has closed.
    std::vector<AuthId> auths = auth_db_->ForSubjectLocation(s, cur);
    bool any_open = false;
    for (AuthId id : auths) {
      if (t <= auth_db_->record(id).auth.exit_duration().end()) {
        any_open = true;
        break;
      }
    }
    if (!any_open) out.push_back(s);
  }
  return out;
}

}  // namespace ltam
