// Copyright 2026 The LTAM Authors.

#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

TEST(GridIndexTest, EmptyIndexFailsToBuild) {
  GridIndex index;
  EXPECT_TRUE(index.Build().IsFailedPrecondition());
}

TEST(GridIndexTest, FindContaining) {
  GridIndex index(2.0);
  BoundaryId a = index.Add(Polygon::Rect(0, 0, 10, 10));
  BoundaryId b = index.Add(Polygon::Rect(20, 0, 30, 10));
  ASSERT_OK(index.Build());
  EXPECT_EQ(index.FindContaining({5, 5}), std::vector<BoundaryId>{a});
  EXPECT_EQ(index.FindContaining({25, 5}), std::vector<BoundaryId>{b});
  EXPECT_TRUE(index.FindContaining({15, 5}).empty());
  EXPECT_TRUE(index.FindContaining({-5, -5}).empty());
}

TEST(GridIndexTest, OverlappingBoundariesSmallestWins) {
  GridIndex index(4.0);
  index.Add(Polygon::Rect(0, 0, 100, 100));  // Building envelope.
  BoundaryId room = index.Add(Polygon::Rect(10, 10, 20, 20));
  ASSERT_OK(index.Build());
  EXPECT_EQ(index.FindContaining({15, 15}).size(), 2u);
  auto best = index.FindBest({15, 15});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, room);
  // Outside the room, the envelope wins.
  auto best2 = index.FindBest({50, 50});
  ASSERT_TRUE(best2.has_value());
  EXPECT_EQ(*best2, 0u);
  EXPECT_FALSE(index.FindBest({200, 200}).has_value());
}

TEST(GridIndexTest, AgreesWithBruteForceOnRandomQueries) {
  GridIndex index(3.0);
  Rng rng(99);
  std::vector<Polygon> polys;
  for (int i = 0; i < 40; ++i) {
    double x = rng.UniformDouble() * 90;
    double y = rng.UniformDouble() * 90;
    double w = 1 + rng.UniformDouble() * 15;
    double h = 1 + rng.UniformDouble() * 15;
    Polygon p = Polygon::Rect(x, y, x + w, y + h);
    polys.push_back(p);
    index.Add(p);
  }
  ASSERT_OK(index.Build());
  for (int q = 0; q < 500; ++q) {
    Point pt{rng.UniformDouble() * 110 - 5, rng.UniformDouble() * 110 - 5};
    std::vector<BoundaryId> got = index.FindContaining(pt);
    std::vector<BoundaryId> want;
    for (BoundaryId i = 0; i < polys.size(); ++i) {
      if (polys[i].Contains(pt)) want.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "at (" << pt.x << ", " << pt.y << ")";
  }
}

TEST(GridIndexTest, TinyCellSizeStillCorrect) {
  GridIndex index(0.5);
  BoundaryId a = index.Add(Polygon::Rect(0, 0, 3, 3));
  ASSERT_OK(index.Build());
  auto best = index.FindBest({1.5, 1.5});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, a);
}

}  // namespace
}  // namespace ltam
