// Copyright 2026 The LTAM Authors.
// Location and location-temporal authorizations (Definitions 3 and 4).

#ifndef LTAM_CORE_AUTHORIZATION_H_
#define LTAM_CORE_AUTHORIZATION_H_

#include <cstdint>
#include <optional>
#include <string>

#include "graph/location.h"
#include "profile/user_profile.h"
#include "time/interval.h"
#include "util/result.h"

namespace ltam {

/// Identifier of an authorization inside an AuthorizationDatabase.
using AuthId = uint32_t;

/// Sentinel for "no authorization".
inline constexpr AuthId kInvalidAuth = UINT32_MAX;

/// Identifier of an authorization rule (Definition 5).
using RuleId = uint32_t;

/// Sentinel for "no rule" (explicit, administrator-created authorization).
inline constexpr RuleId kInvalidRule = UINT32_MAX;

/// Unlimited entry count — the paper's default ("The default entry value
/// is infinite.").
inline constexpr int64_t kUnlimitedEntries = INT64_MAX;

/// Definition 3: (s, l) — subject s may enter primitive location l.
struct LocationAuthorization {
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;

  friend bool operator==(const LocationAuthorization& a,
                         const LocationAuthorization& b) {
    return a.subject == b.subject && a.location == b.location;
  }
};

/// Definition 4: a location authorization with temporal constraints.
///
/// `([tis,tie], [tos,toe], (s,l), n)`: s may *enter* l during the entry
/// duration at most n times and must *leave* during the exit duration
/// ("If she does not exit during the exit duration, a warning signal to
/// the security guards will be generated").
///
/// Structural constraints from Definition 4: tos >= tis and toe >= tie.
/// Defaults: unspecified exit duration is [tis, +inf]; unspecified n is
/// unlimited.
class LocationTemporalAuthorization {
 public:
  /// Checked constructor enforcing Definition 4.
  static Result<LocationTemporalAuthorization> Make(
      TimeInterval entry_duration, TimeInterval exit_duration,
      LocationAuthorization auth, int64_t max_entries = kUnlimitedEntries);

  /// Checked constructor applying the default exit duration [tis, +inf].
  static Result<LocationTemporalAuthorization> MakeDefaultExit(
      TimeInterval entry_duration, LocationAuthorization auth,
      int64_t max_entries = kUnlimitedEntries);

  const TimeInterval& entry_duration() const { return entry_duration_; }
  const TimeInterval& exit_duration() const { return exit_duration_; }
  const LocationAuthorization& auth() const { return auth_; }
  SubjectId subject() const { return auth_.subject; }
  LocationId location() const { return auth_.location; }
  int64_t max_entries() const { return max_entries_; }

  /// Section 6: the *grant duration* of s for l in an access request
  /// duration [tp, tq] is [max(tp, tis), min(tq, tie)]; nullopt when that
  /// interval is empty.
  std::optional<TimeInterval> GrantDuration(
      const TimeInterval& request_window) const;

  /// Section 6: the *departure duration* in [tp, tq] is
  /// [max(tp, tos), toe]; nullopt when empty.
  std::optional<TimeInterval> DepartureDuration(
      const TimeInterval& request_window) const;

  /// "([5, 20], [15, 50], (s3, l7), 2)" with numeric ids.
  std::string ToString() const;

  /// Same, resolving subject and location names ("(Alice, CAIS)").
  std::string ToString(const UserProfileDatabase& profiles,
                       const class MultilevelLocationGraph& graph) const;

  friend bool operator==(const LocationTemporalAuthorization& a,
                         const LocationTemporalAuthorization& b) {
    return a.entry_duration_ == b.entry_duration_ &&
           a.exit_duration_ == b.exit_duration_ && a.auth_ == b.auth_ &&
           a.max_entries_ == b.max_entries_;
  }

 private:
  LocationTemporalAuthorization(TimeInterval entry_duration,
                                TimeInterval exit_duration,
                                LocationAuthorization auth,
                                int64_t max_entries)
      : entry_duration_(entry_duration),
        exit_duration_(exit_duration),
        auth_(auth),
        max_entries_(max_entries) {}

  TimeInterval entry_duration_;
  TimeInterval exit_duration_;
  LocationAuthorization auth_;
  int64_t max_entries_;
};

}  // namespace ltam

#endif  // LTAM_CORE_AUTHORIZATION_H_
