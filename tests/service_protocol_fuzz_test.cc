// Copyright 2026 The LTAM Authors.
// Deterministic fuzzing of the wire protocol's read paths, in the style
// of wal_fuzz_test.cc: truncated, oversized, bit-flipped, and garbage
// frames must produce ParseErrors (or clean round-trips), never
// crashes, hangs, over-reads, or ids wrapped into nonsense. Run under
// ASan/UBSan by ci.sh, this is the harness that certifies the decoder's
// bounds-checking contract.

#include "service/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng->Uniform(256));
  }
  return out;
}

std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = 1 + static_cast<int>(rng->Uniform(8));
  for (int i = 0; i < edits && !out.empty(); ++i) {
    size_t pos = rng->Uniform(out.size());
    switch (rng->Uniform(3)) {
      case 0:
        out[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:
        out.erase(pos, 1);
        break;
      case 2:
        out.insert(pos, 1, static_cast<char>(rng->Uniform(256)));
        break;
    }
  }
  return out;
}

AccessEvent RandomEvent(Rng* rng) {
  Chronon t = static_cast<Chronon>(rng->Uniform(1000));
  SubjectId s = static_cast<SubjectId>(rng->Uniform(64));
  LocationId l = static_cast<LocationId>(rng->Uniform(64));
  switch (rng->Uniform(3)) {
    case 0: return AccessEvent::Entry(t, s, l);
    case 1: return AccessEvent::Exit(t, s);
    default: return AccessEvent::Observe(t, s, l);
  }
}

/// Every decoder in one place, so fuzz loops can hammer them all.
void DecodeEverything(const std::string& payload) {
  (void)DecodeApplyRequest(payload);
  (void)DecodeApplyBatchRequest(payload);
  (void)DecodeApplyFixRequest(payload);
  (void)DecodeQueryRequest(payload);
  (void)DecodeBatchResult(payload);
  (void)DecodeFixResult(payload);
  (void)DecodeQueryResult(payload);
  (void)DecodeStatsResult(payload);
  Status error;
  (void)DecodeErrorResult(payload, &error);
  (void)DecodeReplicaHello(payload);
  (void)DecodeReplicaWelcome(payload);
  (void)DecodeSegmentChunk(payload);
  (void)DecodeWatermarkAdvance(payload);
  (void)DecodeRepointRequest(payload);
  (void)DecodePromoteResult(payload);
  (void)DecodeMetricsRequest(payload);
  (void)DecodeMetricsResult(payload);
}

// --- Round trips -------------------------------------------------------------

TEST(ServiceProtocolTest, EventPayloadsRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    AccessEvent event = RandomEvent(&rng);
    ASSERT_OK_AND_ASSIGN(AccessEvent decoded,
                         DecodeApplyRequest(EncodeApplyRequest(event)));
    EXPECT_EQ(event.ToString(), decoded.ToString());
  }
  std::vector<AccessEvent> batch;
  for (int i = 0; i < 200; ++i) batch.push_back(RandomEvent(&rng));
  ASSERT_OK_AND_ASSIGN(
      std::vector<AccessEvent> decoded,
      DecodeApplyBatchRequest(EncodeApplyBatchRequest(batch)));
  ASSERT_EQ(batch.size(), decoded.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].ToString(), decoded[i].ToString());
  }
  // Empty batches are legal frames.
  ASSERT_OK_AND_ASSIGN(decoded, DecodeApplyBatchRequest(
                                    EncodeApplyBatchRequest({})));
  EXPECT_TRUE(decoded.empty());
}

TEST(ServiceProtocolTest, FixAndQueryPayloadsRoundTrip) {
  PositionFix fix{42, 7, {3.25, -9.5}};
  ASSERT_OK_AND_ASSIGN(PositionFix decoded_fix,
                       DecodeApplyFixRequest(EncodeApplyFixRequest(fix)));
  EXPECT_EQ(fix.time, decoded_fix.time);
  EXPECT_EQ(fix.subject, decoded_fix.subject);
  EXPECT_EQ(fix.position.x, decoded_fix.position.x);
  EXPECT_EQ(fix.position.y, decoded_fix.position.y);

  const std::string statement = "WHEN CAN Alice ACCESS CAIS";
  ASSERT_OK_AND_ASSIGN(std::string decoded_query,
                       DecodeQueryRequest(EncodeQueryRequest(statement)));
  EXPECT_EQ(statement, decoded_query);
  // Embedded NUL and non-ASCII bytes survive (length-prefixed, not
  // NUL-terminated).
  std::string gnarly("a\0b\xff\x01", 5);
  ASSERT_OK_AND_ASSIGN(decoded_query,
                       DecodeQueryRequest(EncodeQueryRequest(gnarly)));
  EXPECT_EQ(gnarly, decoded_query);
}

TEST(ServiceProtocolTest, ResultPayloadsRoundTrip) {
  WireBatchResult result;
  result.decisions.push_back(Decision::Grant(12));
  result.decisions.push_back(Decision::Deny(DenyReason::kNotAdjacent));
  result.decisions.push_back(Decision::Deny(DenyReason::kWalError));
  result.alerts.push_back(
      Alert{30, 2, 5, AlertType::kOverstay, "stay expired"});
  result.alerts.push_back(
      Alert{31, 3, kInvalidLocation, AlertType::kEarlyExit, ""});
  result.durability = Status::IOError("fsync failed");
  ASSERT_OK_AND_ASSIGN(WireBatchResult decoded,
                       DecodeBatchResult(EncodeBatchResult(result)));
  ASSERT_EQ(result.decisions.size(), decoded.decisions.size());
  for (size_t i = 0; i < result.decisions.size(); ++i) {
    EXPECT_EQ(result.decisions[i].ToString(),
              decoded.decisions[i].ToString());
  }
  ASSERT_EQ(result.alerts.size(), decoded.alerts.size());
  for (size_t i = 0; i < result.alerts.size(); ++i) {
    EXPECT_EQ(result.alerts[i].ToString(), decoded.alerts[i].ToString());
  }
  EXPECT_TRUE(result.durability == decoded.durability);

  WireFixResult fix;
  fix.status = Status::FailedPrecondition("position fix refused");
  fix.alerts.push_back(
      Alert{9, 1, 2, AlertType::kImpossibleMovement, "gap"});
  ASSERT_OK_AND_ASSIGN(WireFixResult decoded_fix,
                       DecodeFixResult(EncodeFixResult(fix)));
  EXPECT_TRUE(fix.status == decoded_fix.status);
  ASSERT_EQ(1u, decoded_fix.alerts.size());
  EXPECT_EQ(fix.alerts[0].ToString(), decoded_fix.alerts[0].ToString());

  QueryResult table;
  table.columns = {"subject", "location"};
  table.rows = {{"Alice", "CAIS"}, {"Bob", ""}};
  ASSERT_OK_AND_ASSIGN(QueryResult decoded_table,
                       DecodeQueryResult(EncodeQueryResult(table)));
  EXPECT_EQ(table.columns, decoded_table.columns);
  EXPECT_EQ(table.rows, decoded_table.rows);

  RuntimeStats stats;
  stats.num_shards = 4;
  stats.requested_shards = 8;
  stats.durable = true;
  stats.shard_count_overridden = true;
  stats.epoch = 3;
  stats.wal_events = 77;
  stats.requests_processed = 1000;
  stats.requests_granted = 900;
  stats.batches_applied = 12;
  stats.events_applied = 1100;
  stats.events_refused = 5;
  stats.batches_rejected = 2;
  stats.pending_alerts = 1;
  ASSERT_OK_AND_ASSIGN(RuntimeStats decoded_stats,
                       DecodeStatsResult(EncodeStatsResult(stats)));
  EXPECT_EQ(stats.num_shards, decoded_stats.num_shards);
  EXPECT_EQ(stats.requested_shards, decoded_stats.requested_shards);
  EXPECT_EQ(stats.durable, decoded_stats.durable);
  EXPECT_EQ(stats.shard_count_overridden,
            decoded_stats.shard_count_overridden);
  EXPECT_EQ(stats.epoch, decoded_stats.epoch);
  EXPECT_EQ(stats.wal_events, decoded_stats.wal_events);
  EXPECT_EQ(stats.requests_processed, decoded_stats.requests_processed);
  EXPECT_EQ(stats.requests_granted, decoded_stats.requests_granted);
  EXPECT_EQ(stats.batches_applied, decoded_stats.batches_applied);
  EXPECT_EQ(stats.events_applied, decoded_stats.events_applied);
  EXPECT_EQ(stats.events_refused, decoded_stats.events_refused);
  EXPECT_EQ(stats.batches_rejected, decoded_stats.batches_rejected);
  EXPECT_EQ(stats.pending_alerts, decoded_stats.pending_alerts);

  Status error = Status::NotFound("no such subject 'Mallory'");
  Status decoded_error;
  ASSERT_OK(DecodeErrorResult(EncodeErrorResult(error), &decoded_error));
  EXPECT_TRUE(error == decoded_error);
}

TEST(ServiceProtocolTest, StatsShardWatermarksRoundTrip) {
  RuntimeStats stats;
  stats.num_shards = 3;
  stats.durable = true;
  stats.applied_offset = 60;
  stats.durable_offset = 55;
  stats.shard_watermarks = {{20, 20}, {25, 21}, {15, 14}};
  ASSERT_OK_AND_ASSIGN(RuntimeStats decoded,
                       DecodeStatsResult(EncodeStatsResult(stats)));
  ASSERT_EQ(3u, decoded.shard_watermarks.size());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(stats.shard_watermarks[i].applied,
              decoded.shard_watermarks[i].applied);
    EXPECT_EQ(stats.shard_watermarks[i].durable,
              decoded.shard_watermarks[i].durable);
  }
  // In-memory runtimes carry none, and that round-trips too.
  stats.shard_watermarks.clear();
  ASSERT_OK_AND_ASSIGN(decoded, DecodeStatsResult(EncodeStatsResult(stats)));
  EXPECT_TRUE(decoded.shard_watermarks.empty());

  // durable > applied is corruption, not a legal watermark.
  stats.shard_watermarks = {{5, 9}};
  EXPECT_FALSE(DecodeStatsResult(EncodeStatsResult(stats)).ok());
}

TEST(ServiceProtocolTest, AlertPushRoundTrips) {
  std::vector<Alert> alerts;
  alerts.push_back(Alert{30, 2, 5, AlertType::kOverstay, "stay expired"});
  alerts.push_back(Alert{31, 3, kInvalidLocation, AlertType::kEarlyExit, ""});
  ASSERT_OK_AND_ASSIGN(std::vector<Alert> decoded,
                       DecodeAlertPush(EncodeAlertPush(alerts)));
  ASSERT_EQ(alerts.size(), decoded.size());
  for (size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(alerts[i].ToString(), decoded[i].ToString());
  }
  // An empty push is a legal (if pointless) frame.
  ASSERT_OK_AND_ASSIGN(decoded,
                       DecodeAlertPush(EncodeAlertPush(std::vector<Alert>{})));
  EXPECT_TRUE(decoded.empty());
  // Truncations never parse.
  const std::string payload = EncodeAlertPush(alerts);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeAlertPush(payload.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeAlertPush(payload + 'x').ok());
}

// --- Replication payloads (v4) -----------------------------------------------

TEST(ServiceProtocolTest, ReplicationPayloadsRoundTrip) {
  ReplicaHello hello;
  hello.epoch = 3;
  hello.num_shards = 4;
  hello.positions = {0, 17, 250, 9001};
  ASSERT_OK_AND_ASSIGN(ReplicaHello decoded_hello,
                       DecodeReplicaHello(EncodeReplicaHello(hello)));
  EXPECT_EQ(hello.epoch, decoded_hello.epoch);
  EXPECT_EQ(hello.num_shards, decoded_hello.num_shards);
  EXPECT_EQ(hello.positions, decoded_hello.positions);

  ReplicaWelcome welcome;
  welcome.epoch = 5;
  welcome.num_shards = 4;
  ASSERT_OK_AND_ASSIGN(ReplicaWelcome decoded_welcome,
                       DecodeReplicaWelcome(EncodeReplicaWelcome(welcome)));
  EXPECT_EQ(welcome.epoch, decoded_welcome.epoch);
  EXPECT_EQ(welcome.num_shards, decoded_welcome.num_shards);

  SegmentChunk chunk;
  chunk.epoch = 2;
  chunk.shard = 1;
  chunk.start = 4096;
  chunk.records = {"E 1 2 3", "", std::string("x\0y\xff", 4)};
  ASSERT_OK_AND_ASSIGN(SegmentChunk decoded_chunk,
                       DecodeSegmentChunk(EncodeSegmentChunk(chunk)));
  EXPECT_EQ(chunk.epoch, decoded_chunk.epoch);
  EXPECT_EQ(chunk.shard, decoded_chunk.shard);
  EXPECT_EQ(chunk.start, decoded_chunk.start);
  EXPECT_EQ(chunk.records, decoded_chunk.records);
  // A record-free chunk is a legal (if pointless) frame.
  chunk.records.clear();
  ASSERT_OK_AND_ASSIGN(decoded_chunk,
                       DecodeSegmentChunk(EncodeSegmentChunk(chunk)));
  EXPECT_TRUE(decoded_chunk.records.empty());

  WatermarkAdvance advance;
  advance.epoch = 2;
  advance.durable = {100, 0, 77};
  ASSERT_OK_AND_ASSIGN(
      WatermarkAdvance decoded_advance,
      DecodeWatermarkAdvance(EncodeWatermarkAdvance(advance)));
  EXPECT_EQ(advance.epoch, decoded_advance.epoch);
  EXPECT_EQ(advance.durable, decoded_advance.durable);

  RepointRequest repoint;
  repoint.host = "replica-2.internal";
  repoint.port = 7411;
  ASSERT_OK_AND_ASSIGN(RepointRequest decoded_repoint,
                       DecodeRepointRequest(EncodeRepointRequest(repoint)));
  EXPECT_EQ(repoint.host, decoded_repoint.host);
  EXPECT_EQ(repoint.port, decoded_repoint.port);

  ASSERT_OK_AND_ASSIGN(uint64_t epoch,
                       DecodePromoteResult(EncodePromoteResult(42)));
  EXPECT_EQ(42u, epoch);

  // Stats carry the replication role since v4.
  RuntimeStats stats;
  stats.num_shards = 2;
  stats.replica = true;
  stats.replication_epoch = 9;
  ASSERT_OK_AND_ASSIGN(RuntimeStats decoded_stats,
                       DecodeStatsResult(EncodeStatsResult(stats)));
  EXPECT_TRUE(decoded_stats.replica);
  EXPECT_EQ(9u, decoded_stats.replication_epoch);
}

TEST(ServiceProtocolTest, ReplicationDecodersRejectCorruption) {
  ReplicaHello hello;
  hello.epoch = 1;
  hello.num_shards = 3;
  hello.positions = {5, 6, 7};
  const std::string hello_bytes = EncodeReplicaHello(hello);
  // Truncation at every byte boundary, and strict consumption.
  for (size_t cut = 0; cut < hello_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeReplicaHello(hello_bytes.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeReplicaHello(hello_bytes + 'x').ok());
  // A corrupt shard count cannot drive an allocation: the count must be
  // bounded against the remaining bytes before anything reserves.
  std::string lying = hello_bytes;
  lying[8] = static_cast<char>(0xff);
  lying[9] = static_cast<char>(0xff);
  lying[10] = static_cast<char>(0xff);
  lying[11] = static_cast<char>(0x7f);
  EXPECT_FALSE(DecodeReplicaHello(lying).ok());
  // Zero shards is not a subscription.
  ReplicaHello empty;
  EXPECT_FALSE(DecodeReplicaHello(EncodeReplicaHello(empty)).ok());

  SegmentChunk chunk;
  chunk.epoch = 1;
  chunk.shard = 0;
  chunk.start = 10;
  chunk.records = {"E 1 2 3", "X 4 5"};
  const std::string chunk_bytes = EncodeSegmentChunk(chunk);
  for (size_t cut = 0; cut < chunk_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeSegmentChunk(chunk_bytes.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeSegmentChunk(chunk_bytes + 'x').ok());
  // A record count over kMaxReplicationRecords is rejected from the
  // count field alone — it could not have been produced by a shipper.
  std::string flooded = chunk_bytes;
  const uint32_t too_many = kMaxReplicationRecords + 1;
  flooded[20] = static_cast<char>(too_many & 0xff);
  flooded[21] = static_cast<char>((too_many >> 8) & 0xff);
  flooded[22] = static_cast<char>((too_many >> 16) & 0xff);
  flooded[23] = static_cast<char>((too_many >> 24) & 0xff);
  EXPECT_FALSE(DecodeSegmentChunk(flooded).ok());

  WatermarkAdvance advance;
  advance.epoch = 1;
  advance.durable = {1, 2};
  const std::string advance_bytes = EncodeWatermarkAdvance(advance);
  for (size_t cut = 0; cut < advance_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeWatermarkAdvance(advance_bytes.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeWatermarkAdvance(advance_bytes + 'x').ok());

  RepointRequest repoint;
  repoint.host = "h";
  repoint.port = 1;
  const std::string repoint_bytes = EncodeRepointRequest(repoint);
  for (size_t cut = 0; cut < repoint_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeRepointRequest(repoint_bytes.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeRepointRequest(repoint_bytes + 'x').ok());

  EXPECT_FALSE(DecodePromoteResult("").ok());
  EXPECT_FALSE(DecodePromoteResult(EncodePromoteResult(1) + 'x').ok());
}

// --- Metrics payloads (v5) ---------------------------------------------------

TEST(ServiceProtocolTest, MetricsPayloadsRoundTrip) {
  ASSERT_OK_AND_ASSIGN(
      uint8_t format,
      DecodeMetricsRequest(EncodeMetricsRequest(kMetricsFormatStructured)));
  EXPECT_EQ(kMetricsFormatStructured, format);
  ASSERT_OK_AND_ASSIGN(
      format, DecodeMetricsRequest(EncodeMetricsRequest(kMetricsFormatText)));
  EXPECT_EQ(kMetricsFormatText, format);
  // Unknown format bytes are refused at decode, not interpreted.
  std::string bad_format = EncodeMetricsRequest(kMetricsFormatText);
  bad_format[0] = 7;
  EXPECT_FALSE(DecodeMetricsRequest(bad_format).ok());
  EXPECT_FALSE(DecodeMetricsRequest("").ok());

  MetricsSnapshot snapshot;
  snapshot.counters = {{"ingest.events", 12345}, {"ingest.frames", 99}};
  snapshot.gauges = {{"replication.replica.3.lag_records", -2},
                     {"replication.replica.7.lag_records", 40}};
  LatencyHistogram hist;
  hist.Record(1);
  hist.Record(900);
  hist.Record(1u << 20);
  for (int i = 0; i < 50; ++i) hist.Record(1000 + i * 37);
  LatencyHistogram empty;
  snapshot.histograms = {{"ingest.apply", hist}, {"query.run", empty}};
  ASSERT_OK_AND_ASSIGN(MetricsSnapshot decoded,
                       DecodeMetricsResult(EncodeMetricsResult(snapshot)));
  EXPECT_EQ(snapshot.counters, decoded.counters);
  EXPECT_EQ(snapshot.gauges, decoded.gauges);
  ASSERT_EQ(2u, decoded.histograms.size());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(snapshot.histograms[i].first, decoded.histograms[i].first);
    const LatencyHistogram& a = snapshot.histograms[i].second;
    const LatencyHistogram& b = decoded.histograms[i].second;
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_EQ(a.p50(), b.p50());
    EXPECT_EQ(a.p999(), b.p999());
    EXPECT_EQ(a.NonZeroBuckets(), b.NonZeroBuckets());
  }

  // Truncation at every byte boundary, and strict consumption.
  const std::string payload = EncodeMetricsResult(snapshot);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMetricsResult(payload.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeMetricsResult(payload + 'x').ok());
  // A corrupt metric count cannot drive an allocation.
  std::string lying = payload;
  lying[0] = static_cast<char>(0xff);
  lying[1] = static_cast<char>(0xff);
  lying[2] = static_cast<char>(0xff);
  lying[3] = static_cast<char>(0x7f);
  EXPECT_FALSE(DecodeMetricsResult(lying).ok());
  // An internally inconsistent histogram (bucket counts that do not sum
  // to the advertised count) is a ParseError, not a trusted value: the
  // wire never hands out a histogram FromParts would refuse.
  MetricsSnapshot one;
  one.histograms = {{"h", hist}};
  std::string tampered = EncodeMetricsResult(one);
  // Layout: counters count (4) + gauges count (4) + histograms count
  // (4) + name length (4) + name (1) + count (8, little-endian first).
  ++tampered[4 + 4 + 4 + 4 + 1];
  EXPECT_FALSE(DecodeMetricsResult(tampered).ok());
}

// --- Targeted rejections -----------------------------------------------------

TEST(ServiceProtocolTest, HeaderRejectsMalformedFields) {
  const std::string good = EncodeFrame(MessageType::kPing, 7, "");
  auto decode = [](std::string bytes) {
    return DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bytes.data()),
                             bytes.size());
  };
  ASSERT_OK_AND_ASSIGN(FrameHeader header, decode(good));
  EXPECT_EQ(MessageType::kPing, header.type);
  EXPECT_EQ(7u, header.request_id);
  EXPECT_EQ(0u, header.payload_length);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_FALSE(decode(bad_version).ok());

  std::string bad_type = good;
  bad_type[5] = static_cast<char>(200);
  EXPECT_FALSE(decode(bad_type).ok());
  bad_type[5] = 0;  // Type 0 is not assigned either.
  EXPECT_FALSE(decode(bad_type).ok());

  std::string reserved_bits = good;
  reserved_bits[6] = 1;
  EXPECT_FALSE(decode(reserved_bits).ok());

  // A length over the ceiling must be rejected from the header alone —
  // before anything tries to buffer 4 GiB.
  std::string huge_length = good;
  for (int i = 12; i < 16; ++i) huge_length[i] = static_cast<char>(0xff);
  EXPECT_FALSE(decode(huge_length).ok());
}

TEST(ServiceProtocolTest, PayloadDecodersRejectCorruption) {
  // Truncation at every byte boundary: never OK with trailing intent,
  // never a crash.
  std::vector<AccessEvent> batch;
  Rng rng(11);
  for (int i = 0; i < 8; ++i) batch.push_back(RandomEvent(&rng));
  const std::string payload = EncodeApplyBatchRequest(batch);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeApplyBatchRequest(payload.substr(0, cut)).ok());
  }
  // A trailing byte violates strict consumption.
  EXPECT_FALSE(DecodeApplyBatchRequest(payload + 'x').ok());

  // An event count far beyond what the payload can hold must be
  // rejected up front (no allocation driven by a corrupt count).
  std::string lying = payload;
  lying[0] = static_cast<char>(0xff);
  lying[1] = static_cast<char>(0xff);
  lying[2] = static_cast<char>(0xff);
  lying[3] = static_cast<char>(0x7f);
  EXPECT_FALSE(DecodeApplyBatchRequest(lying).ok());

  // Enum fields outside their ranges are errors, not casts.
  std::string bad_kind = EncodeApplyRequest(batch[0]);
  bad_kind[0] = 9;
  EXPECT_FALSE(DecodeApplyRequest(bad_kind).ok());

  WireBatchResult result;
  result.decisions.push_back(Decision::Grant(1));
  std::string bad_reason = EncodeBatchResult(result);
  bad_reason[4 + 5] = 42;  // count + (granted, auth) then reason.
  EXPECT_FALSE(DecodeBatchResult(bad_reason).ok());

  // An OK status smuggled into an error frame is rejected.
  std::string ok_error;
  ok_error.push_back('\0');            // code = kOk.
  ok_error.append(4, '\0');            // empty message.
  Status sink;
  EXPECT_FALSE(DecodeErrorResult(ok_error, &sink).ok());
}

// --- Assembler ---------------------------------------------------------------

TEST(ServiceProtocolTest, AssemblerReassemblesArbitrarySplits) {
  Rng rng(13);
  std::vector<AccessEvent> batch;
  for (int i = 0; i < 20; ++i) batch.push_back(RandomEvent(&rng));
  std::string stream;
  stream += EncodeFrame(MessageType::kPing, 1, "");
  stream += EncodeFrame(MessageType::kApplyBatch, 2,
                        EncodeApplyBatchRequest(batch));
  stream += EncodeFrame(MessageType::kQuery, 3,
                        EncodeQueryRequest("HISTORY OF Alice"));
  for (int round = 0; round < 40; ++round) {
    FrameAssembler assembler;
    std::vector<Frame> frames;
    size_t pos = 0;
    while (pos < stream.size()) {
      size_t chunk = 1 + rng.Uniform(17);
      chunk = std::min(chunk, stream.size() - pos);
      assembler.Append(stream.data() + pos, chunk);
      pos += chunk;
      while (true) {
        Result<std::optional<Frame>> next = assembler.Next();
        ASSERT_OK(next.status());
        if (!next->has_value()) break;
        frames.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(3u, frames.size());
    EXPECT_EQ(MessageType::kPing, frames[0].header.type);
    EXPECT_EQ(MessageType::kApplyBatch, frames[1].header.type);
    EXPECT_EQ(MessageType::kQuery, frames[2].header.type);
    EXPECT_EQ(2u, frames[1].header.request_id);
    ASSERT_OK_AND_ASSIGN(std::vector<AccessEvent> decoded,
                         DecodeApplyBatchRequest(frames[1].payload));
    EXPECT_EQ(batch.size(), decoded.size());
    EXPECT_EQ(0u, assembler.buffered_bytes());
  }
}

/// NextView() must frame the identical byte stream as Next(), and its
/// views must stay byte-valid however the assembler recycles chunks
/// afterwards — including frames big enough to straddle a chunk
/// boundary, and bytes landed through the BeginFill/CommitFill recv
/// path rather than Append().
TEST(ServiceProtocolTest, NextViewMatchesNextAndPinsSurviveRecycling) {
  Rng rng(17);
  std::vector<AccessEvent> batch;
  for (int i = 0; i < 40; ++i) batch.push_back(RandomEvent(&rng));
  // Enough apply-batch frames that the stream crosses several 64 KiB
  // chunks, forcing straddle handling and chunk turnover.
  std::vector<AccessEvent> big(4000, batch[0]);
  std::string stream;
  for (uint32_t i = 1; i <= 24; ++i) {
    switch (i % 4) {
      case 0:
        stream += EncodeFrame(MessageType::kApplyBatch, i,
                              EncodeApplyBatchRequest(big));
        break;
      case 1:
        stream += EncodeFrame(MessageType::kApplyBatch, i,
                              EncodeApplyBatchRequest(batch));
        break;
      case 2:
        stream += EncodeFrame(MessageType::kPing, i, "");
        break;
      default:
        stream += EncodeFrame(MessageType::kQuery, i,
                              EncodeQueryRequest("HISTORY OF Alice"));
    }
  }
  ASSERT_GT(stream.size(), 3u * 64 * 1024);  // Spans several chunks.
  for (int round = 0; round < 6; ++round) {
    FrameAssembler by_copy;
    FrameAssembler by_view;
    std::vector<Frame> copies;
    std::vector<FrameView> views;  // Held to the end: pins must survive.
    size_t pos = 0;
    while (pos < stream.size()) {
      size_t len =
          std::min<size_t>(1 + rng.Uniform(9000), stream.size() - pos);
      by_copy.Append(stream.data() + pos, len);
      // The view-side assembler ingests through the recv-style fill
      // path, possibly in two commits.
      size_t filled = 0;
      while (filled < len) {
        size_t capacity = 0;
        char* dst = by_view.BeginFill(1, &capacity);
        ASSERT_NE(nullptr, dst);
        size_t take = std::min(capacity, len - filled);
        std::memcpy(dst, stream.data() + pos + filled, take);
        by_view.CommitFill(take);
        filled += take;
      }
      pos += len;
      while (true) {
        Result<std::optional<Frame>> next = by_copy.Next();
        ASSERT_OK(next.status());
        if (!next->has_value()) break;
        copies.push_back(std::move(**next));
      }
      while (true) {
        Result<std::optional<FrameView>> next = by_view.NextView();
        ASSERT_OK(next.status());
        if (!next->has_value()) break;
        views.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(24u, copies.size());
    ASSERT_EQ(copies.size(), views.size());
    EXPECT_EQ(0u, by_view.buffered_bytes());
    for (size_t i = 0; i < copies.size(); ++i) {
      EXPECT_EQ(copies[i].header.type, views[i].header.type);
      EXPECT_EQ(copies[i].header.request_id, views[i].header.request_id);
      ASSERT_EQ(std::string_view(copies[i].payload), views[i].payload);
    }
    // The big frames decode straight out of their views.
    ASSERT_OK_AND_ASSIGN(std::vector<AccessEvent> decoded,
                         DecodeApplyBatchRequest(views[3].payload));
    EXPECT_EQ(big.size(), decoded.size());
  }
}

TEST(ServiceProtocolTest, AssemblerErrorIsSticky) {
  FrameAssembler assembler;
  std::string garbage(kFrameHeaderBytes, 'Z');
  assembler.Append(garbage.data(), garbage.size());
  EXPECT_FALSE(assembler.Next().ok());
  // Even appending a pristine frame afterwards cannot resynchronize a
  // byte stream whose framing is lost.
  std::string good = EncodeFrame(MessageType::kPing, 1, "");
  assembler.Append(good.data(), good.size());
  EXPECT_FALSE(assembler.Next().ok());
}

class ServiceProtocolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

/// Mutated, truncated, and garbage frames through the assembler: every
/// outcome is a frame or an error, never a crash or an over-read.
TEST_P(ServiceProtocolFuzzTest, AssemblerNeverCrashes) {
  Rng rng(GetParam());
  std::vector<AccessEvent> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(RandomEvent(&rng));
  std::string valid;
  valid += EncodeFrame(MessageType::kApplyBatch, 1,
                       EncodeApplyBatchRequest(batch));
  valid += EncodeFrame(MessageType::kStats, 2, "");
  valid += EncodeFrame(MessageType::kQueryResult, 3,
                       EncodeQueryResult({{"c"}, {{"v"}}}));
  ReplicaHello hello;
  hello.epoch = 1;
  hello.num_shards = 2;
  hello.positions = {10, 20};
  valid += EncodeFrame(MessageType::kReplicaHello, 4,
                       EncodeReplicaHello(hello));
  SegmentChunk chunk;
  chunk.epoch = 1;
  chunk.shard = 1;
  chunk.start = 10;
  chunk.records = {"E 1 2 3", "T 9"};
  valid += EncodeFrame(MessageType::kSegmentChunk, 0,
                       EncodeSegmentChunk(chunk));

  for (int i = 0; i < 300; ++i) {
    std::string input;
    switch (i % 3) {
      case 0: input = Mutate(valid, &rng); break;
      case 1: input = valid.substr(0, rng.Uniform(valid.size() + 1)); break;
      default: input = RandomBytes(&rng, 400); break;
    }
    FrameAssembler assembler;
    // Feed in random chunks, as a socket would.
    size_t pos = 0;
    while (pos < input.size()) {
      size_t chunk = std::min<size_t>(1 + rng.Uniform(64),
                                      input.size() - pos);
      assembler.Append(input.data() + pos, chunk);
      pos += chunk;
      while (true) {
        Result<std::optional<Frame>> next = assembler.Next();
        if (!next.ok() || !next->has_value()) break;
        // Whatever framed, every payload decoder must survive it.
        DecodeEverything((*next)->payload);
      }
    }
  }
}

/// Raw payload decoding over mutated and garbage bytes.
TEST_P(ServiceProtocolFuzzTest, PayloadDecodersNeverCrash) {
  Rng rng(GetParam() + 1000);
  std::vector<AccessEvent> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(RandomEvent(&rng));
  WireBatchResult result;
  for (int i = 0; i < 6; ++i) {
    result.decisions.push_back(Decision::Grant(i));
    result.alerts.push_back(Alert{i, 1, 2, AlertType::kOverstay, "d"});
  }
  RuntimeStats stats;
  stats.num_shards = 3;
  ReplicaHello hello;
  hello.epoch = 2;
  hello.num_shards = 3;
  hello.positions = {1, 2, 3};
  SegmentChunk chunk;
  chunk.epoch = 2;
  chunk.shard = 0;
  chunk.start = 6;
  chunk.records = {"E 1 2 3"};
  WatermarkAdvance advance;
  advance.epoch = 2;
  advance.durable = {7, 8, 9};
  MetricsSnapshot snapshot;
  snapshot.counters = {{"ingest.events", 7}};
  snapshot.gauges = {{"replication.replica.1.lag_records", 3}};
  LatencyHistogram hist;
  for (int i = 0; i < 20; ++i) hist.Record(100 + i * 53);
  snapshot.histograms = {{"ingest.apply", hist}};
  const std::string seeds[] = {
      EncodeApplyRequest(batch[0]),
      EncodeApplyBatchRequest(batch),
      EncodeApplyFixRequest({1, 2, {3.0, 4.0}}),
      EncodeQueryRequest("OCCUPANTS OF CAIS AT 10"),
      EncodeBatchResult(result),
      EncodeFixResult({Status::OK(), {}}),
      EncodeQueryResult({{"a", "b"}, {{"1", "2"}}}),
      EncodeStatsResult(stats),
      EncodeErrorResult(Status::Internal("boom")),
      EncodeReplicaHello(hello),
      EncodeReplicaWelcome({2, 3}),
      EncodeSegmentChunk(chunk),
      EncodeWatermarkAdvance(advance),
      EncodeRepointRequest({"replica-2.internal", 7411}),
      EncodePromoteResult(3),
      EncodeMetricsRequest(kMetricsFormatStructured),
      EncodeMetricsResult(snapshot),
  };
  for (int i = 0; i < 400; ++i) {
    const std::string& seed = seeds[i % (sizeof(seeds) / sizeof(seeds[0]))];
    std::string input = (i % 2 == 0) ? Mutate(seed, &rng)
                                     : RandomBytes(&rng, 300);
    DecodeEverything(input);
    // Truncations of valid payloads, at every prefix for small ones.
    if (seed.size() < 128) {
      DecodeEverything(seed.substr(0, rng.Uniform(seed.size() + 1)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ServiceProtocolFuzzTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace ltam
