// Copyright 2026 The LTAM Authors.
// The authorization database (Figure 3) with the Definition-7 decision
// procedure and the per-authorization entry-count ledger.

#ifndef LTAM_CORE_AUTH_DATABASE_H_
#define LTAM_CORE_AUTH_DATABASE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/authorization.h"
#include "core/decision.h"
#include "time/interval_set.h"
#include "util/result.h"

namespace ltam {

/// Where an authorization record came from.
enum class AuthOrigin : uint8_t {
  kExplicit = 0,  ///< Created directly by a security officer.
  kDerived = 1,   ///< Produced by an authorization rule (Section 4).
};

/// A stored authorization with provenance and lifecycle state.
struct AuthRecord {
  AuthId id = kInvalidAuth;
  LocationTemporalAuthorization auth;
  AuthOrigin origin = AuthOrigin::kExplicit;
  /// Rule that derived this record; kInvalidRule for explicit records.
  RuleId source_rule = kInvalidRule;
  /// Revoked records are kept for audit but ignored by every query.
  bool revoked = false;
  /// Number of entries exercised against this authorization.
  int64_t entries_used = 0;
};

/// Indexed in-memory store of location-temporal authorizations.
///
/// Supports the access-control engine (Definition 7 checks + entry
/// ledger), the rule engine (provenance-tracked derived records with bulk
/// revocation), and the reachability analysis of Section 6 (per-location
/// authorization scans).
///
/// ### Caching and concurrency contract
///
/// CheckAccess goes through a per-subject *derived-authorization cache*:
/// the active (explicit + rule-derived, non-revoked) authorization ids
/// per (subject, location) pair, tagged with the subject's mutation
/// version. A mutation (Add/AddDerived/Revoke/RevokeDerivedBy) bumps
/// only the touched subject's version, so only that subject's cached
/// lists refresh; everyone else keeps hitting. Repeated CheckAccess
/// calls therefore skip the re-derivation scan and its allocation.
/// Bulk analytic lookups (ForSubjectLocation and the interval
/// aggregates) deliberately bypass the cache so sweeps over millions of
/// (subject, location) pairs do not grow it unboundedly.
///
/// Concurrency follows the sharded-engine discipline (phase-based):
///  - CheckAccess / RecordEntry / ForSubjectLocation may be called from
///    multiple threads concurrently **as long as no two threads touch the
///    same subject** (the sharded engine partitions subjects per shard).
///    The candidate cache is internally bucketed by subject so concurrent
///    readers do not race.
///  - Mutations (Add, AddDerived, Revoke, RevokeDerivedBy) must be
///    externally synchronized against all readers — run them between
///    batches, never during one.
class AuthorizationDatabase {
 public:
  AuthorizationDatabase() = default;

  /// Movable and copyable (snapshot restore moves a rebuilt database
  /// into place; benchmarks copy a template database to get a fresh
  /// ledger). The candidate cache does not travel — the destination
  /// starts cold and refills lazily.
  AuthorizationDatabase(AuthorizationDatabase&& other) noexcept;
  AuthorizationDatabase& operator=(AuthorizationDatabase&& other) noexcept;
  AuthorizationDatabase(const AuthorizationDatabase& other);
  AuthorizationDatabase& operator=(const AuthorizationDatabase& other);

  // --- Mutation ------------------------------------------------------------

  /// Adds an explicit authorization; returns its id.
  AuthId Add(const LocationTemporalAuthorization& auth);

  /// Adds a rule-derived authorization; returns its id.
  AuthId AddDerived(const LocationTemporalAuthorization& auth, RuleId rule);

  /// Marks a record revoked. Idempotent.
  Status Revoke(AuthId id);

  /// Revokes every active record derived by `rule`; returns the count.
  size_t RevokeDerivedBy(RuleId rule);

  /// Records that the subject exercised one entry under `id`
  /// (FailedPrecondition when the record is revoked or exhausted).
  Status RecordEntry(AuthId id);

  // --- Lookup --------------------------------------------------------------

  /// True iff `id` denotes an existing (possibly revoked) record.
  bool Exists(AuthId id) const { return id < records_.size(); }

  /// Borrowing accessor; `id` must exist.
  const AuthRecord& record(AuthId id) const;

  /// Total records ever added (including revoked).
  size_t size() const { return records_.size(); }

  /// Number of non-revoked records.
  size_t active_size() const { return active_count_; }

  /// Active authorization ids for a (subject, location) pair.
  std::vector<AuthId> ForSubjectLocation(SubjectId s, LocationId l) const;

  /// Active authorization ids mentioning subject `s`.
  std::vector<AuthId> ForSubject(SubjectId s) const;

  /// Active authorization ids mentioning location `l`.
  std::vector<AuthId> ForLocation(LocationId l) const;

  /// Every active authorization id, ascending.
  std::vector<AuthId> Active() const;

  // --- Decision procedure (Definition 7) -----------------------------------

  /// Evaluates an access request: granted iff some active authorization
  /// for (s, l) has t inside its entry duration and fewer than n entries
  /// used. Pure: does not touch the ledger.
  Decision CheckAccess(Chronon t, SubjectId s, LocationId l) const;

  /// CheckAccess + RecordEntry on the granting authorization.
  Decision CheckAndRecordAccess(Chronon t, SubjectId s, LocationId l);

  // --- Aggregates for Section 6 --------------------------------------------

  // --- Cache observability ---------------------------------------------

  /// Global database version; bumped by every mutation (observability /
  /// change detection across the whole store).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Per-subject mutation version: bumped whenever an authorization
  /// mentioning `s` is added, revoked, or re-derived. Tags the candidate
  /// cache and lets incremental analyses (core/inaccessible.h) recompute
  /// only subjects that changed.
  uint64_t SubjectVersion(SubjectId s) const;

  /// Candidate-cache hit/miss counters (CheckAccess + ForSubjectLocation).
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  /// Union of entry durations of active authorizations for (s, l) — the
  /// raw material of the overall grant time.
  IntervalSet EntryDurations(SubjectId s, LocationId l) const;

  /// Union of exit durations of active authorizations for (s, l).
  IntervalSet ExitDurations(SubjectId s, LocationId l) const;

  /// Chronons at which s could enter l, honoring the request window:
  /// union over authorizations of GrantDuration(window).
  IntervalSet GrantDurations(SubjectId s, LocationId l,
                             const TimeInterval& window) const;

 private:
  static uint64_t Key(SubjectId s, LocationId l) {
    return (static_cast<uint64_t>(s) << 32) | l;
  }

  /// One cached candidate list: the active AuthIds for a (s, l) key as of
  /// the subject's version. entries_used / ledger state is *not* cached —
  /// CheckAccess reads it live — so RecordEntry needs no invalidation.
  struct CacheEntry {
    uint64_t version = 0;
    std::vector<AuthId> active;
  };
  /// Cache shard; bucketed by subject so concurrent readers of distinct
  /// subjects rarely contend (and per the class contract, same-subject
  /// calls are single-threaded anyway).
  struct CacheBucket {
    std::mutex mu;
    std::unordered_map<uint64_t, CacheEntry> entries;
  };
  static constexpr size_t kCacheBuckets = 16;

  /// Uncached scan (the pre-cache ForSubjectLocation body).
  std::vector<AuthId> ScanSubjectLocation(SubjectId s, LocationId l) const;

  /// Returns the cached active list for (s, l), refreshing it when stale.
  /// `bucket.mu` must be held by the caller; the reference is valid while
  /// the lock is held.
  const std::vector<AuthId>& CachedActive(CacheBucket& bucket, SubjectId s,
                                          LocationId l) const;

  /// Records a mutation touching subject `s` (invalidates caches).
  void TouchSubject(SubjectId s);

  /// Drops every cached candidate list (used by move/copy, where entry
  /// tags could collide with another database's version history).
  void ClearCache() const;

  std::vector<AuthRecord> records_;
  std::unordered_map<uint64_t, std::vector<AuthId>> by_subject_location_;
  std::unordered_map<SubjectId, std::vector<AuthId>> by_subject_;
  std::unordered_map<LocationId, std::vector<AuthId>> by_location_;
  std::unordered_map<RuleId, std::vector<AuthId>> by_rule_;
  size_t active_count_ = 0;

  std::atomic<uint64_t> version_{1};
  std::unordered_map<SubjectId, uint64_t> subject_version_;
  mutable std::array<CacheBucket, kCacheBuckets> cache_;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace ltam

#endif  // LTAM_CORE_AUTH_DATABASE_H_
