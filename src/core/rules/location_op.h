// Copyright 2026 The LTAM Authors.
// Location operators of authorization rules (Definition 5).
//
// "op_location is a location operator, which generates a set of primitive
// locations for the derived authorizations, given the primitive location
// l of a." The flagship operator is all_route_from (Example 3), which
// grants access to every location on the routes between a source and the
// base location.

#ifndef LTAM_CORE_RULES_LOCATION_OP_H_
#define LTAM_CORE_RULES_LOCATION_OP_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/multilevel_graph.h"
#include "util/result.h"

namespace ltam {

/// Abstract location operator.
class LocationOperator {
 public:
  virtual ~LocationOperator() = default;

  /// Maps the base location to the derived locations (primitive ids).
  virtual Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const = 0;

  /// Stable operator name for display and serialization.
  virtual std::string ToString() const = 0;
};

using LocationOperatorPtr = std::shared_ptr<const LocationOperator>;

/// Identity: the derived authorization keeps the base location.
class IdentityLocationOp : public LocationOperator {
 public:
  Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const override;
  std::string ToString() const override { return "Identity"; }
};

/// all_route_from(src) (Example 3): the locations on the routes from
/// `src` to the base location.
///
/// Example 3 applies all_route_from(SCE.GO) to base CAIS and obtains
/// {SCE.GO, SCE.SectionA, SCE.SectionB, SCE.SectionC, SCE.CHIPES}: the
/// union over all loop-free routes of every location visited, excluding
/// the base location itself (the base authorization already covers it).
/// We reproduce exactly that semantics; route enumeration is capped to
/// keep the operator total on large graphs.
class AllRouteFromOp : public LocationOperator {
 public:
  explicit AllRouteFromOp(std::string source, size_t max_routes = 64,
                          size_t max_length = 64)
      : source_(std::move(source)),
        max_routes_(max_routes),
        max_length_(max_length) {}
  Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const override;
  std::string ToString() const override {
    return "all_route_from(" + source_ + ")";
  }

 private:
  std::string source_;
  size_t max_routes_;
  size_t max_length_;
};

/// shortest_route_from(src): only the locations on one shortest route
/// (a tighter variant of all_route_from; includes the source, excludes
/// the base).
class ShortestRouteFromOp : public LocationOperator {
 public:
  explicit ShortestRouteFromOp(std::string source)
      : source_(std::move(source)) {}
  Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const override;
  std::string ToString() const override {
    return "shortest_route_from(" + source_ + ")";
  }

 private:
  std::string source_;
};

/// neighbors: the primitive locations directly reachable from the base
/// (one step in the flattened adjacency).
class NeighborsOp : public LocationOperator {
 public:
  Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const override;
  std::string ToString() const override { return "neighbors"; }
};

/// within(c): every primitive location that is part of composite c
/// (independent of base) — e.g. grant a janitor the whole of SCE.
class WithinCompositeOp : public LocationOperator {
 public:
  explicit WithinCompositeOp(std::string composite)
      : composite_(std::move(composite)) {}
  Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const override;
  std::string ToString() const override {
    return "within(" + composite_ + ")";
  }

 private:
  std::string composite_;
};

/// entries_of(c): the primitive entry doors of composite c.
class EntriesOfOp : public LocationOperator {
 public:
  explicit EntriesOfOp(std::string composite)
      : composite_(std::move(composite)) {}
  Result<std::vector<LocationId>> Apply(
      LocationId base, const MultilevelLocationGraph& graph) const override;
  std::string ToString() const override {
    return "entries_of(" + composite_ + ")";
  }

 private:
  std::string composite_;
};

/// Registry of location operators addressable by name (mirrors
/// SubjectOperatorRegistry; supports custom operators).
class LocationOperatorRegistry {
 public:
  using Factory =
      std::function<Result<LocationOperatorPtr>(const std::string& arg)>;

  /// A registry pre-populated with the built-in operators.
  static LocationOperatorRegistry Default();

  void Register(const std::string& name, Factory factory);

  /// Parses "name" or "name(arg)".
  Result<LocationOperatorPtr> Parse(const std::string& spec) const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace ltam

#endif  // LTAM_CORE_RULES_LOCATION_OP_H_
