// Copyright 2026 The LTAM Authors.
// LatencyHistogram vs a sorted-reference oracle: the documented
// quantile convention (upper bound of the bucket holding the
// ceil(q*count)-th smallest sample, clamped to max) is checked exactly
// — for every distribution the bucket of the rank-k sample is
// computable from the sorted samples, so the expected quantile is not
// approximate — plus the never-under-report guarantee, the 2^-6
// relative-error bound, Merge() linearity over per-connection shards,
// and determinism under seeded input.

#include "telemetry/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ltam {
namespace {

constexpr double kQuantiles[] = {0.0,  0.01, 0.1,  0.25, 0.5,
                                 0.9,  0.99, 0.999, 1.0};

/// The exact value the documented convention must return for `q` over
/// `sorted`: bucket indices are monotone in the value, so the bucket
/// whose cumulative count first reaches ceil(q*n) is exactly the bucket
/// of the ceil(q*n)-th smallest sample.
uint64_t OracleQuantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::max<size_t>(1, std::min(rank, sorted.size()));
  const uint64_t at_rank = sorted[rank - 1];
  return std::min(
      LatencyHistogram::BucketUpperBound(
          LatencyHistogram::BucketIndexFor(at_rank)),
      sorted.back());
}

void ExpectMatchesOracle(const LatencyHistogram& h,
                         std::vector<uint64_t> samples) {
  std::sort(samples.begin(), samples.end());
  ASSERT_EQ(h.count(), samples.size());
  if (!samples.empty()) {
    EXPECT_EQ(h.min(), samples.front());
    EXPECT_EQ(h.max(), samples.back());
  }
  for (double q : kQuantiles) {
    SCOPED_TRACE("q=" + std::to_string(q));
    const uint64_t got = h.Quantile(q);
    const uint64_t want = OracleQuantile(samples, q);
    EXPECT_EQ(got, want);
    if (samples.empty()) continue;
    // Never under-report, and never overshoot the true rank value by
    // more than one sub-bucket width (2^-kSubBucketBits relative).
    size_t rank = q <= 0.0 ? 1
                           : std::max<size_t>(
                                 1, static_cast<size_t>(std::ceil(
                                        q * static_cast<double>(
                                                samples.size()))));
    rank = std::min(rank, samples.size());
    const uint64_t truth = samples[rank - 1];
    EXPECT_GE(got, truth);
    EXPECT_LE(got - truth,
              (truth >> LatencyHistogram::kSubBucketBits) + 1);
  }
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (double q : kQuantiles) EXPECT_EQ(h.Quantile(q), 0u);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(LatencyHistogramTest, SingleSampleIsEveryQuantile) {
  for (uint64_t v : {0ull, 1ull, 63ull, 64ull, 1'000'000ull,
                     123'456'789'123ull}) {
    SCOPED_TRACE("v=" + std::to_string(v));
    LatencyHistogram h;
    h.Record(v);
    ExpectMatchesOracle(h, {v});
    EXPECT_EQ(h.Quantile(0.0), v);
    EXPECT_EQ(h.Quantile(1.0), v);
    EXPECT_EQ(h.mean(), static_cast<double>(v));
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below 2^kSubBucketBits land in unit buckets: quantiles are
  // exact, not just bounded.
  LatencyHistogram h;
  std::vector<uint64_t> samples;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Uniform(1ull << LatencyHistogram::kSubBucketBits);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : kQuantiles) {
    size_t rank = q <= 0.0 ? 1
                           : std::max<size_t>(
                                 1, static_cast<size_t>(std::ceil(
                                        q * static_cast<double>(
                                                samples.size()))));
    rank = std::min(rank, samples.size());
    EXPECT_EQ(h.Quantile(q), samples[rank - 1]) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, BimodalDistribution) {
  // 90% fast mode around 1us, 10% slow mode around 100ms: p50 must
  // stay in the fast mode, p99/p999 in the slow one.
  LatencyHistogram h;
  std::vector<uint64_t> samples;
  Rng rng(2026);
  for (int i = 0; i < 100'000; ++i) {
    uint64_t v = rng.Bernoulli(0.9)
                     ? 800 + rng.Uniform(400)            // ~1us in ns.
                     : 90'000'000 + rng.Uniform(20'000'000);  // ~100ms.
    samples.push_back(v);
    h.Record(v);
  }
  ExpectMatchesOracle(h, samples);
  EXPECT_LT(h.p50(), 2'000u);
  EXPECT_GT(h.p99(), 80'000'000u);
  EXPECT_GT(h.p999(), 80'000'000u);
}

TEST(LatencyHistogramTest, AdversarialShapes) {
  Rng rng(99);
  // All-equal, two-point extremes, powers of two straddling every
  // octave boundary, and a heavy-tailed mix including saturating
  // values near UINT64_MAX.
  std::vector<std::vector<uint64_t>> shapes;
  shapes.push_back(std::vector<uint64_t>(1000, 42));
  shapes.push_back({});
  for (int i = 0; i < 500; ++i) {
    shapes.back().push_back(i % 2 == 0 ? 1 : UINT64_MAX);
  }
  shapes.push_back({});
  for (int b = 0; b < 64; ++b) {
    shapes.back().push_back(1ull << b);
    if (b > 0) shapes.back().push_back((1ull << b) - 1);
    shapes.back().push_back((1ull << b) + 1);
  }
  shapes.push_back({});
  for (int i = 0; i < 20'000; ++i) {
    // log-uniform over ~12 decades.
    double exponent = rng.UniformDouble() * 40.0;
    shapes.back().push_back(
        static_cast<uint64_t>(std::pow(2.0, exponent)));
  }
  for (size_t s = 0; s < shapes.size(); ++s) {
    SCOPED_TRACE("shape " + std::to_string(s));
    LatencyHistogram h;
    for (uint64_t v : shapes[s]) h.Record(v);
    ExpectMatchesOracle(h, shapes[s]);
  }
}

TEST(LatencyHistogramTest, BucketBoundsRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 200'000; ++i) {
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    const size_t idx = LatencyHistogram::BucketIndexFor(v);
    ASSERT_LT(idx, LatencyHistogram::NumBuckets());
    EXPECT_GE(v, LatencyHistogram::BucketLowerBound(idx));
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(idx));
  }
  // Bucket index is monotone across bounds: bucket i's upper bound is
  // below bucket i+1's lower bound.
  for (size_t i = 0; i + 1 < LatencyHistogram::NumBuckets(); ++i) {
    ASSERT_LT(LatencyHistogram::BucketUpperBound(i),
              LatencyHistogram::BucketLowerBound(i + 1));
  }
}

TEST(LatencyHistogramTest, TenMillionSampleMergeEqualsSingleRecorder) {
  // The load generator's aggregation shape: per-connection recorders
  // merged at the end must equal one recorder that saw every sample —
  // same quantiles, same count/min/max/mean — and both must satisfy
  // the sorted-reference oracle.
  constexpr size_t kConnections = 8;
  constexpr size_t kTotal = 10'000'000;
  LatencyHistogram merged;
  LatencyHistogram single;
  std::vector<uint64_t> samples;
  samples.reserve(kTotal);
  for (size_t c = 0; c < kConnections; ++c) {
    LatencyHistogram shard;
    Rng rng(1000 + c);  // Seeded per connection: deterministic.
    const size_t n = kTotal / kConnections;
    for (size_t i = 0; i < n; ++i) {
      // Latency-shaped: ~100us median with a long tail.
      uint64_t v = 50'000 + rng.Uniform(100'000);
      if (rng.Bernoulli(0.01)) v += rng.Uniform(500'000'000);
      shard.Record(v);
      single.Record(v);
      samples.push_back(v);
    }
    merged.Merge(shard);
  }
  ASSERT_EQ(merged.count(), kTotal);
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  EXPECT_EQ(merged.mean(), single.mean());
  for (double q : kQuantiles) {
    EXPECT_EQ(merged.Quantile(q), single.Quantile(q)) << "q=" << q;
  }
  ExpectMatchesOracle(merged, std::move(samples));
}

TEST(LatencyHistogramTest, DeterministicUnderSeededInput) {
  auto run = [] {
    LatencyHistogram h;
    Rng rng(77);
    for (int i = 0; i < 100'000; ++i) {
      h.Record(rng.Uniform(1'000'000'000));
    }
    return h;
  };
  const LatencyHistogram a = run();
  const LatencyHistogram b = run();
  for (double q : kQuantiles) EXPECT_EQ(a.Quantile(q), b.Quantile(q));
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
}

}  // namespace
}  // namespace ltam
