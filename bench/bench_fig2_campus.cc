// Copyright 2026 The LTAM Authors.
//
// Figures 1-2 harness: rebuilds the NTU multilevel location graph,
// re-derives the paper's route examples, and times the graph operations
// the rest of the system leans on (flattening, routing, enumeration,
// validation) on both the paper-scale graph and parametrically larger
// campuses of the same shape.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/graph_gen.h"
#include "util/logging.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

void PrintReproduction() {
  MultilevelLocationGraph g = MakeNtuCampusGraph().ValueOrDie();
  std::printf("=== Figure 1/2 reproduction: NTU campus ===\n\n");
  std::printf("%zu locations (%zu primitive), %zu edges, validation: %s\n",
              g.size(), g.Primitives().size(), g.Edges().size(),
              g.Validate().ToString().c_str());
  auto id = [&g](const char* name) { return g.Find(name).ValueOrDie(); };
  std::printf("simple route example:  ");
  std::vector<LocationId> simple = {id("SCE.DeanOffice"), id("SCE.SectionA"),
                                    id("SCE.SectionB"), id("CAIS")};
  for (LocationId l : simple) std::printf("%s ", g.location(l).name.c_str());
  std::printf("(valid: %s)\n", g.IsSimpleRoute(simple) ? "yes" : "no");
  std::printf("complex route example: ");
  std::vector<LocationId> complex_route =
      g.FindRoute(id("EEE.DeanOffice"), id("SCE.DeanOffice")).ValueOrDie();
  for (LocationId l : complex_route) {
    std::printf("%s ", g.location(l).name.c_str());
  }
  std::printf("\n\n");
}

void BM_BuildNtuGraph(benchmark::State& state) {
  for (auto _ : state) {
    auto g = MakeNtuCampusGraph();
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildNtuGraph);

void BM_NtuComplexRoute(benchmark::State& state) {
  MultilevelLocationGraph g = MakeNtuCampusGraph().ValueOrDie();
  LocationId from = g.Find("EEE.DeanOffice").ValueOrDie();
  LocationId to = g.Find("SCE.DeanOffice").ValueOrDie();
  for (auto _ : state) {
    auto r = g.FindRoute(from, to);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NtuComplexRoute);

void BM_NtuEnumerateRoutes(benchmark::State& state) {
  MultilevelLocationGraph g = MakeNtuCampusGraph().ValueOrDie();
  LocationId sce = g.Find("SCE").ValueOrDie();
  LocationId from = g.Find("SCE.GO").ValueOrDie();
  LocationId to = g.Find("CAIS").ValueOrDie();
  for (auto _ : state) {
    auto routes = g.EnumerateRoutesWithin(sce, from, to, 64, 64);
    benchmark::DoNotOptimize(routes);
  }
}
BENCHMARK(BM_NtuEnumerateRoutes);

/// Campus-shaped graphs scaled up: buildings x rooms.
void BM_CampusRoute(benchmark::State& state) {
  uint32_t buildings = static_cast<uint32_t>(state.range(0));
  uint32_t rooms = static_cast<uint32_t>(state.range(1));
  MultilevelLocationGraph g = MakeCampusGraph(buildings, rooms).ValueOrDie();
  LocationId from = g.Find("B0.R" + std::to_string(rooms - 1)).ValueOrDie();
  LocationId to =
      g.Find("B" + std::to_string(buildings / 2) + ".R" +
             std::to_string(rooms - 1))
          .ValueOrDie();
  for (auto _ : state) {
    auto r = g.FindRoute(from, to);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(buildings) * rooms);
}
BENCHMARK(BM_CampusRoute)
    ->Args({4, 8})
    ->Args({8, 16})
    ->Args({16, 32})
    ->Args({32, 64})
    ->Complexity(benchmark::oN);

void BM_CampusFlatten(benchmark::State& state) {
  uint32_t buildings = static_cast<uint32_t>(state.range(0));
  uint32_t rooms = static_cast<uint32_t>(state.range(1));
  MultilevelLocationGraph g = MakeCampusGraph(buildings, rooms).ValueOrDie();
  LocationId probe = g.Find("B0.R0").ValueOrDie();
  for (auto _ : state) {
    // Mutating resets the cache; EffectiveNeighbors rebuilds it.
    state.PauseTiming();
    MultilevelLocationGraph copy = g;
    state.ResumeTiming();
    benchmark::DoNotOptimize(copy.EffectiveNeighbors(probe).size());
  }
}
BENCHMARK(BM_CampusFlatten)->Args({8, 16})->Args({32, 64});

void BM_CampusValidate(benchmark::State& state) {
  MultilevelLocationGraph g = MakeCampusGraph(
                                  static_cast<uint32_t>(state.range(0)),
                                  static_cast<uint32_t>(state.range(1)))
                                  .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Validate());
  }
}
BENCHMARK(BM_CampusValidate)->Args({8, 16})->Args({32, 64});

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
