// Copyright 2026 The LTAM Authors.
// Tests for IntervalSet, including parameterized algebraic-law suites
// over randomly generated sets — Algorithm 1's T^g/T^d computations
// depend on this algebra being exactly right.

#include "time/interval_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

TEST(IntervalSetTest, EmptyBehaves) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.ToString(), "{}");
  EXPECT_EQ(s.TotalSize(), 0);
}

TEST(IntervalSetTest, AddCoalescesOverlaps) {
  IntervalSet s;
  s.Add(TimeInterval(5, 10));
  s.Add(TimeInterval(8, 20));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], TimeInterval(5, 20));
}

TEST(IntervalSetTest, AddCoalescesAdjacency) {
  IntervalSet s;
  s.Add(TimeInterval(5, 10));
  s.Add(TimeInterval(11, 20));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], TimeInterval(5, 20));
}

TEST(IntervalSetTest, AddKeepsGaps) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ToString(), "{[5, 10], [20, 30]}");
}

TEST(IntervalSetTest, AddBridgingIntervalMergesEverything) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30),
                TimeInterval(40, 50)};
  s.Add(TimeInterval(9, 41));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], TimeInterval(5, 50));
}

TEST(IntervalSetTest, AddIgnoresInvalidInterval) {
  IntervalSet s;
  s.Add(TimeInterval(10, 5));  // Raw invalid interval = null contribution.
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, MinMax) {
  IntervalSet s{TimeInterval(20, 30), TimeInterval(5, 10)};
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.Max(), 30);
}

TEST(IntervalSetTest, RemoveSplits) {
  IntervalSet s(TimeInterval(0, 100));
  s.Remove(TimeInterval(40, 60));
  EXPECT_EQ(s.ToString(), "{[0, 39], [61, 100]}");
  s.Remove(TimeInterval(0, 39));
  EXPECT_EQ(s.ToString(), "{[61, 100]}");
  s.Remove(TimeInterval(0, 200));
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, ContainsPoint) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(25));
  EXPECT_FALSE(s.Contains(15));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_FALSE(s.Contains(31));
}

TEST(IntervalSetTest, ContainsIntervalAndSet) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  EXPECT_TRUE(s.Contains(TimeInterval(6, 9)));
  EXPECT_FALSE(s.Contains(TimeInterval(9, 21)));
  EXPECT_TRUE(s.ContainsSet(IntervalSet{TimeInterval(5, 6),
                                        TimeInterval(29, 30)}));
  EXPECT_FALSE(s.ContainsSet(IntervalSet(TimeInterval(10, 20))));
  EXPECT_TRUE(s.ContainsSet(IntervalSet()));
}

TEST(IntervalSetTest, OverlapQueries) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  EXPECT_TRUE(s.Overlaps(TimeInterval(10, 12)));
  EXPECT_FALSE(s.Overlaps(TimeInterval(11, 19)));
  EXPECT_TRUE(s.Overlaps(IntervalSet(TimeInterval(15, 25))));
  EXPECT_FALSE(s.Overlaps(IntervalSet(TimeInterval(11, 19))));
  EXPECT_FALSE(s.Overlaps(IntervalSet()));
}

TEST(IntervalSetTest, UnionMatchesPaperNotation) {
  // Table 2's final row: [2,35] u [20,35] = [2,35] and
  // [20,50] u [30,50] = [20,50].
  IntervalSet a(TimeInterval(2, 35));
  EXPECT_EQ(a.Union(IntervalSet(TimeInterval(20, 35))),
            IntervalSet(TimeInterval(2, 35)));
  IntervalSet b(TimeInterval(20, 50));
  EXPECT_EQ(b.Union(IntervalSet(TimeInterval(30, 50))),
            IntervalSet(TimeInterval(20, 50)));
}

TEST(IntervalSetTest, IntersectSetAndInterval) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  EXPECT_EQ(s.Intersect(TimeInterval(8, 22)).ToString(), "{[8, 10], [20, 22]}");
  IntervalSet t{TimeInterval(0, 6), TimeInterval(9, 21)};
  EXPECT_EQ(s.Intersect(t).ToString(), "{[5, 6], [9, 10], [20, 21]}");
  EXPECT_TRUE(s.Intersect(IntervalSet()).empty());
}

TEST(IntervalSetTest, DifferenceAndComplement) {
  IntervalSet s(TimeInterval(0, 100));
  IntervalSet holes{TimeInterval(10, 20), TimeInterval(50, 60)};
  EXPECT_EQ(s.Difference(holes).ToString(),
            "{[0, 9], [21, 49], [61, 100]}");
  EXPECT_EQ(holes.Complement(TimeInterval(0, 100)).ToString(),
            "{[0, 9], [21, 49], [61, 100]}");
  // Complement of empty is the universe.
  EXPECT_EQ(IntervalSet().Complement(TimeInterval(0, 5)).ToString(),
            "{[0, 5]}");
}

TEST(IntervalSetTest, TotalSize) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  EXPECT_EQ(s.TotalSize(), 6 + 11);
  EXPECT_EQ(IntervalSet(TimeInterval::From(0)).TotalSize(), kChrononMax);
}

TEST(IntervalSetTest, ParseRoundTrip) {
  IntervalSet s{TimeInterval(5, 10), TimeInterval(20, 30)};
  ASSERT_OK_AND_ASSIGN(IntervalSet parsed, IntervalSet::Parse(s.ToString()));
  EXPECT_EQ(parsed, s);
  ASSERT_OK_AND_ASSIGN(IntervalSet empty, IntervalSet::Parse("{}"));
  EXPECT_TRUE(empty.empty());
  ASSERT_OK_AND_ASSIGN(IntervalSet null1, IntervalSet::Parse("null"));
  EXPECT_TRUE(null1.empty());
  ASSERT_OK_AND_ASSIGN(IntervalSet bare, IntervalSet::Parse("[1, 2]"));
  EXPECT_EQ(bare, IntervalSet(TimeInterval(1, 2)));
  EXPECT_TRUE(IntervalSet::Parse("{[1, 2}").status().IsParseError());
}

// ---------------------------------------------------------------------------
// Property-based algebra laws over random sets.
// ---------------------------------------------------------------------------

IntervalSet RandomSet(Rng* rng, int max_intervals = 6, Chronon span = 200) {
  IntervalSet s;
  int k = static_cast<int>(rng->Uniform(static_cast<uint64_t>(max_intervals) + 1));
  for (int i = 0; i < k; ++i) {
    Chronon a = rng->UniformRange(0, span);
    Chronon b = rng->UniformRange(0, span);
    if (a > b) std::swap(a, b);
    s.Add(TimeInterval(a, b));
  }
  return s;
}

class IntervalSetAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetAlgebraTest, NormalizationInvariant) {
  Rng rng(GetParam());
  IntervalSet s = RandomSet(&rng);
  // Sorted, disjoint, non-adjacent.
  for (size_t i = 0; i + 1 < s.intervals().size(); ++i) {
    const TimeInterval& cur = s.intervals()[i];
    const TimeInterval& nxt = s.intervals()[i + 1];
    EXPECT_LT(cur.end(), nxt.start());
    EXPECT_FALSE(cur.Mergeable(nxt)) << s.ToString();
  }
}

TEST_P(IntervalSetAlgebraTest, UnionCommutativeAssociativeIdempotent) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(&rng);
  IntervalSet b = RandomSet(&rng);
  IntervalSet c = RandomSet(&rng);
  EXPECT_EQ(a.Union(b), b.Union(a));
  EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
  EXPECT_EQ(a.Union(a), a);
  EXPECT_EQ(a.Union(IntervalSet()), a);
}

TEST_P(IntervalSetAlgebraTest, IntersectCommutativeAssociativeIdempotent) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(&rng);
  IntervalSet b = RandomSet(&rng);
  IntervalSet c = RandomSet(&rng);
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
  EXPECT_EQ(a.Intersect(b).Intersect(c), a.Intersect(b.Intersect(c)));
  EXPECT_EQ(a.Intersect(a), a);
  EXPECT_TRUE(a.Intersect(IntervalSet()).empty());
}

TEST_P(IntervalSetAlgebraTest, DistributivityAndDeMorgan) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(&rng);
  IntervalSet b = RandomSet(&rng);
  IntervalSet c = RandomSet(&rng);
  // a n (b u c) == (a n b) u (a n c).
  EXPECT_EQ(a.Intersect(b.Union(c)),
            a.Intersect(b).Union(a.Intersect(c)));
  // De Morgan within a bounded universe.
  TimeInterval u(0, 300);
  EXPECT_EQ(a.Union(b).Complement(u),
            a.Complement(u).Intersect(b.Complement(u)));
  EXPECT_EQ(a.Intersect(b).Complement(u),
            a.Complement(u).Union(b.Complement(u)));
}

TEST_P(IntervalSetAlgebraTest, DifferenceLaws) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(&rng);
  IntervalSet b = RandomSet(&rng);
  IntervalSet diff = a.Difference(b);
  EXPECT_TRUE(a.ContainsSet(diff));
  EXPECT_FALSE(diff.Overlaps(b));
  // diff u (a n b) == a.
  EXPECT_EQ(diff.Union(a.Intersect(b)), a);
}

TEST_P(IntervalSetAlgebraTest, MembershipConsistency) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(&rng);
  IntervalSet b = RandomSet(&rng);
  IntervalSet u = a.Union(b);
  IntervalSet x = a.Intersect(b);
  for (Chronon t = 0; t <= 200; t += 7) {
    EXPECT_EQ(u.Contains(t), a.Contains(t) || b.Contains(t));
    EXPECT_EQ(x.Contains(t), a.Contains(t) && b.Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetAlgebraTest,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace ltam
