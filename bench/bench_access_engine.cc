// Copyright 2026 The LTAM Authors.
//
// Enforcement-path benchmarks (Figure 3): Definition-7 decision latency
// as the authorization database grows, and full engine request throughput
// including adjacency checks, ledger, and movement recording.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "engine/access_control_engine.h"
#include "engine/sharded_engine.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "storage/durable_sharded_system.h"
#include "storage/durable_system.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
  std::vector<AccessRequest> requests;
};

World MakeWorld(uint32_t side, uint32_t subjects, uint32_t auths_per_loc) {
  World w;
  w.graph = MakeGridGraph(side, side).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, subjects);
  Rng rng(99);
  AuthWorkloadOptions opt;
  opt.auths_per_location = auths_per_loc;
  opt.horizon = 500;
  opt.min_len = 50;
  opt.max_len = 200;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  w.requests = GenerateRequests(w.graph, w.subjects, 4096, 500, &rng);
  return w;
}

/// Pure Definition-7 checks against a database of state.range(0) total
/// authorizations (16 subjects x grid x per-loc factor).
void BM_CheckAccess(benchmark::State& state) {
  World w = MakeWorld(16, 16, static_cast<uint32_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const AccessRequest& req = w.requests[i++ % w.requests.size()];
    benchmark::DoNotOptimize(
        w.auth_db.CheckAccess(req.time, req.subject, req.location));
  }
  state.counters["auths"] = static_cast<double>(w.auth_db.active_size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckAccess)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Full engine path with adjacency off (card-reader-comparable).
void BM_EngineRequestNoAdjacency(benchmark::State& state) {
  World w = MakeWorld(16, 16, 2);
  MovementDatabase movements;
  EngineOptions options;
  options.enforce_adjacency = false;
  options.alert_on_denial = false;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles,
                             options);
  Chronon t = 0;
  size_t i = 0;
  for (auto _ : state) {
    // Strictly increasing time keeps the movement database happy.
    const AccessRequest& req = w.requests[i++ % w.requests.size()];
    benchmark::DoNotOptimize(engine.RequestEntry(++t, req.subject,
                                                 req.location));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineRequestNoAdjacency);

/// Full engine path with adjacency enforcement: subjects walk neighbor to
/// neighbor, the common production pattern.
void BM_EngineRequestWalk(benchmark::State& state) {
  World w = MakeWorld(16, 4, 1);
  // Blanket authorizations so the walk is never policy-blocked.
  for (SubjectId s : w.subjects) {
    for (LocationId l : w.graph.Primitives()) {
      w.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(0, kChrononMax),
                        TimeInterval(0, kChrononMax),
                        LocationAuthorization{s, l}, kUnlimitedEntries)
                        .ValueOrDie());
    }
  }
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  Rng rng(5);
  Chronon t = 0;
  // Enter everyone through the door first.
  std::vector<LocationId> doors = w.graph.EntryPrimitives(w.graph.root());
  for (SubjectId s : w.subjects) engine.RequestEntry(++t, s, doors[0]);
  for (auto _ : state) {
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    LocationId cur = movements.CurrentLocation(s);
    const std::vector<LocationId>& adj = w.graph.EffectiveNeighbors(cur);
    LocationId next = adj[rng.Uniform(adj.size())];
    benchmark::DoNotOptimize(engine.RequestEntry(++t, s, next));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineRequestWalk);

/// Ledger update cost.
void BM_CheckAndRecord(benchmark::State& state) {
  World w = MakeWorld(8, 8, 1);
  // Unlimited-entry blanket auth for one subject/location pair.
  AuthId id = w.auth_db.Add(
      LocationTemporalAuthorization::Make(
          TimeInterval(0, kChrononMax), TimeInterval(0, kChrononMax),
          LocationAuthorization{w.subjects[0], w.graph.Primitives()[0]},
          kUnlimitedEntries)
          .ValueOrDie());
  (void)id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.auth_db.CheckAndRecordAccess(
        100, w.subjects[0], w.graph.Primitives()[0]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckAndRecord);

// --- Batched multi-shard pipeline (campus workload) ------------------------
//
// The same pre-generated event batches are replayed through (a) one
// sequential AccessControlEngine event-by-event and (b) the
// ShardedDecisionEngine at 1..N shards. Decisions are identical by the
// equivalence property (tests/sharded_engine_test.cc); these benchmarks
// measure the throughput gap. On multicore hardware the sharded path
// should clear 2x the sequential items/sec at 4+ shards; on a single
// core it degenerates to the cv-handoff overhead.

struct BatchWorld {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
  std::vector<std::vector<AccessEvent>> batches;
  size_t total_events = 0;
};

BatchWorld MakeBatchWorld() {
  BatchWorld w;
  // Campus of 16 buildings x 12 rooms, 256 subjects, dense coverage —
  // the "whole campus under tracking" shape of Section 1.
  w.graph = MakeCampusGraph(16, 12).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 256);
  Rng rng(2026);
  AuthWorkloadOptions auth_opt;
  auth_opt.auths_per_location = 2;
  auth_opt.coverage = 0.7;
  auth_opt.horizon = 4000;
  auth_opt.min_len = 100;
  auth_opt.max_len = 800;
  auth_opt.max_entries = 0;  // Unlimited: keeps replays ledger-independent.
  GenerateAuthorizations(w.graph, w.subjects, auth_opt, &rng, &w.auth_db);
  BatchWorkloadOptions batch_opt;
  batch_opt.batch_size = 2048;
  batch_opt.exit_fraction = 0.1;
  batch_opt.observe_fraction = 0.1;
  batch_opt.max_step = 3;
  w.batches = GenerateEventBatches(w.graph, w.subjects, /*total_events=*/16384,
                                   batch_opt, &rng);
  for (const auto& b : w.batches) w.total_events += b.size();
  return w;
}

EngineOptions QuietEngineOptions() {
  EngineOptions opt;
  opt.alert_on_denial = false;  // Keep alert buffers flat across replays.
  return opt;
}

/// Sequential baseline: the full batch stream through one engine.
void BM_BatchDecisionSequential(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  for (auto _ : state) {
    state.PauseTiming();
    MovementDatabase movements;
    AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles,
                               QuietEngineOptions());
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      for (const AccessEvent& e : batch) {
        benchmark::DoNotOptimize(ApplyAccessEvent(&engine, e));
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
BENCHMARK(BM_BatchDecisionSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Sharded pipeline at state.range(0) shards over the same stream.
void BM_BatchDecisionSharded(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  ShardedEngineOptions opt;
  opt.num_shards = static_cast<uint32_t>(state.range(0));
  opt.engine = QuietEngineOptions();
  for (auto _ : state) {
    // Engine construction (thread spawn) and destruction (stop + join)
    // both stay outside the timed region; only EvaluateBatch is measured.
    state.PauseTiming();
    auto engine = std::make_unique<ShardedDecisionEngine>(
        &w.graph, &w.auth_db, &w.profiles, opt);
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      benchmark::DoNotOptimize(engine->EvaluateBatch(batch));
    }
    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["shards"] = static_cast<double>(opt.num_shards);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
// Real time, not CPU time: the work happens on the shard workers, and
// the speedup claim is wall-clock throughput vs the sequential path.
BENCHMARK(BM_BatchDecisionSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Durable batch pipeline (WAL + group commit) ----------------------------
//
// The same stream as the in-memory BatchDecision benchmarks, but through
// the crash-safe runtimes: every event is appended to a write-ahead log
// before it is applied. The gap between BM_BatchDecision* and
// BM_DurableBatch* is the price of durability; the sequential durable
// runtime flushes per event while the sharded one group-commits one
// fsync per shard per batch.

std::string MakeBenchDir() {
  std::string tmpl = std::filesystem::temp_directory_path().string() +
                     "/ltam_bench_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  LTAM_CHECK(made != nullptr) << "mkdtemp failed";
  return tmpl;
}

/// Sequential durable runtime over the flattened stream.
void BM_DurableBatchSequential(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = MakeBenchDir();
    SystemState init;
    init.graph = w.graph;
    init.profiles = w.profiles;
    init.auth_db = w.auth_db;
    auto sys = DurableSystem::Open(dir, std::move(init)).ValueOrDie();
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      for (const AccessEvent& e : batch) {
        switch (e.kind) {
          case AccessEventKind::kRequestEntry:
            benchmark::DoNotOptimize(
                sys->RequestEntry(e.time, e.subject, e.location));
            break;
          case AccessEventKind::kRequestExit:
            benchmark::DoNotOptimize(sys->RequestExit(e.time, e.subject));
            break;
          case AccessEventKind::kObserve:
            benchmark::DoNotOptimize(
                sys->ObservePresence(e.time, e.subject, e.location));
            break;
        }
      }
    }
    state.PauseTiming();
    sys.reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
BENCHMARK(BM_DurableBatchSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Sharded durable runtime: per-shard WALs appended on the workers, one
/// group-commit fsync per shard per batch.
void BM_DurableBatchSharded(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  DurableShardedOptions opt;
  opt.num_shards = static_cast<uint32_t>(state.range(0));
  opt.engine = QuietEngineOptions();
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = MakeBenchDir();
    SystemState init;
    init.graph = w.graph;
    init.profiles = w.profiles;
    init.auth_db = w.auth_db;
    auto sys =
        DurableShardedSystem::Open(dir, std::move(init), opt).ValueOrDie();
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      benchmark::DoNotOptimize(sys->EvaluateBatch(batch));
    }
    state.PauseTiming();
    sys.reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.counters["shards"] = static_cast<double>(opt.num_shards);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
BENCHMARK(BM_DurableBatchSharded)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
