// Copyright 2026 The LTAM Authors.
// Tests for the access control engine (Figure 3 / Section 5): grants,
// adjacency enforcement, overstay/early-exit alerts, and tailgating
// detection through movement observations.

#include "engine/access_control_engine.h"

#include <gtest/gtest.h>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeFig4Graph());
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
    ASSERT_OK_AND_ASSIGN(a_, graph_.Find("A"));
    ASSERT_OK_AND_ASSIGN(b_, graph_.Find("B"));
    ASSERT_OK_AND_ASSIGN(c_, graph_.Find("C"));
    ASSERT_OK_AND_ASSIGN(d_, graph_.Find("D"));
  }

  void Grant(SubjectId s, LocationId l, Chronon es, Chronon ee, Chronon xs,
             Chronon xe, int64_t n = kUnlimitedEntries) {
    auth_db_.Add(LocationTemporalAuthorization::Make(
                     TimeInterval(es, ee), TimeInterval(xs, xe),
                     LocationAuthorization{s, l}, n)
                     .ValueOrDie());
  }

  AccessControlEngine MakeEngine(EngineOptions options = {}) {
    return AccessControlEngine(&graph_, &auth_db_, &movement_db_, &profiles_,
                               options);
  }

  size_t CountAlerts(const AccessControlEngine& engine, AlertType type) {
    size_t n = 0;
    for (const Alert& a : engine.alerts()) {
      if (a.type == type) ++n;
    }
    return n;
  }

  MultilevelLocationGraph graph_;
  UserProfileDatabase profiles_;
  AuthorizationDatabase auth_db_;
  MovementDatabase movement_db_;
  SubjectId alice_ = kInvalidSubject;
  LocationId a_ = kInvalidLocation;
  LocationId b_ = kInvalidLocation;
  LocationId c_ = kInvalidLocation;
  LocationId d_ = kInvalidLocation;
};

TEST_F(EngineTest, GrantRecordsMovementAndLedger) {
  Grant(alice_, a_, 0, 100, 0, 200);
  AccessControlEngine engine = MakeEngine();
  Decision d = engine.RequestEntry(10, alice_, a_);
  EXPECT_TRUE(d.granted);
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), a_);
  EXPECT_EQ(auth_db_.record(d.auth).entries_used, 1);
  EXPECT_EQ(engine.requests_processed(), 1u);
  EXPECT_EQ(engine.requests_granted(), 1u);
  EXPECT_TRUE(engine.alerts().empty());
}

TEST_F(EngineTest, DenyWithoutAuthorizationRaisesAlert) {
  AccessControlEngine engine = MakeEngine();
  Decision d = engine.RequestEntry(10, alice_, a_);
  EXPECT_FALSE(d.granted);
  EXPECT_EQ(d.reason, DenyReason::kNoAuthorization);
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), kInvalidLocation);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].type, AlertType::kAccessDenied);
}

TEST_F(EngineTest, UnknownSubjectAndLocation) {
  AccessControlEngine engine = MakeEngine();
  EXPECT_EQ(engine.RequestEntry(0, 99, a_).reason,
            DenyReason::kUnknownSubject);
  EXPECT_EQ(engine.RequestEntry(0, alice_, 999).reason,
            DenyReason::kUnknownLocation);
  // Composite locations are not enterable.
  EXPECT_EQ(engine.RequestEntry(0, alice_, graph_.root()).reason,
            DenyReason::kUnknownLocation);
}

TEST_F(EngineTest, AdjacencyEnforced) {
  Grant(alice_, a_, 0, 100, 0, 200);
  Grant(alice_, c_, 0, 100, 0, 200);
  Grant(alice_, b_, 0, 100, 0, 200);
  AccessControlEngine engine = MakeEngine();
  // From outside, only the entry door A is reachable; C is not.
  EXPECT_EQ(engine.RequestEntry(5, alice_, c_).reason,
            DenyReason::kNotAdjacent);
  EXPECT_TRUE(engine.RequestEntry(6, alice_, a_).granted);
  // From A, C is not adjacent (A-B, A-D only).
  EXPECT_EQ(engine.RequestEntry(7, alice_, c_).reason,
            DenyReason::kNotAdjacent);
  EXPECT_TRUE(engine.RequestEntry(8, alice_, b_).granted);
  // From B, C is adjacent.
  EXPECT_TRUE(engine.RequestEntry(9, alice_, c_).granted);
}

TEST_F(EngineTest, AdjacencyCanBeDisabled) {
  Grant(alice_, c_, 0, 100, 0, 200);
  EngineOptions options;
  options.enforce_adjacency = false;
  AccessControlEngine engine = MakeEngine(options);
  EXPECT_TRUE(engine.RequestEntry(5, alice_, c_).granted);
}

TEST_F(EngineTest, ExitDurationTooEarlyAlerts) {
  // "One may be authorized to leave a location only during a certain time
  // interval. Should this restriction be violated, security alerts can be
  // triggered."
  Grant(alice_, a_, 0, 100, 50, 200);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  ASSERT_OK(engine.RequestExit(20, alice_));  // Exit window opens at 50.
  EXPECT_EQ(CountAlerts(engine, AlertType::kEarlyExit), 1u);
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), kInvalidLocation);
}

TEST_F(EngineTest, ExitWithinWindowIsClean) {
  Grant(alice_, a_, 0, 100, 50, 200);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  ASSERT_OK(engine.RequestExit(60, alice_));
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_TRUE(engine.RequestExit(70, alice_).IsFailedPrecondition());
}

TEST_F(EngineTest, OverstayDetectedByTick) {
  Grant(alice_, a_, 0, 30, 0, 40);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  engine.Tick(30);
  EXPECT_EQ(CountAlerts(engine, AlertType::kOverstay), 0u);
  engine.Tick(41);
  EXPECT_EQ(CountAlerts(engine, AlertType::kOverstay), 1u);
  // The alert fires once per stay, not per tick.
  engine.Tick(42);
  engine.Tick(43);
  EXPECT_EQ(CountAlerts(engine, AlertType::kOverstay), 1u);
}

TEST_F(EngineTest, OverstayAlsoAlertsOnLateExit) {
  Grant(alice_, a_, 0, 30, 0, 40);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  ASSERT_OK(engine.RequestExit(60, alice_));
  EXPECT_EQ(CountAlerts(engine, AlertType::kOverstay), 1u);
}

TEST_F(EngineTest, MovingOnGrantChecksExitWindowOfPreviousStay) {
  Grant(alice_, a_, 0, 100, 50, 200);  // Must stay in A until t=50.
  Grant(alice_, b_, 0, 100, 0, 300);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  ASSERT_TRUE(engine.RequestEntry(20, alice_, b_).granted);  // Leaves A early.
  EXPECT_EQ(CountAlerts(engine, AlertType::kEarlyExit), 1u);
}

TEST_F(EngineTest, TailgatingCaughtByObservation) {
  // Alice is authorized for A only; tracking sees her in B.
  Grant(alice_, a_, 0, 100, 0, 200);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  engine.ObservePresence(20, alice_, b_);
  EXPECT_EQ(CountAlerts(engine, AlertType::kUnauthorizedPresence), 1u);
  // The corrected movement is recorded (reality wins).
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), b_);
}

TEST_F(EngineTest, ObservationAgreeingWithDatabaseIsSilent) {
  Grant(alice_, a_, 0, 100, 0, 200);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  engine.ObservePresence(15, alice_, a_);
  EXPECT_TRUE(engine.alerts().empty());
}

TEST_F(EngineTest, ImpossibleMovementFlagged) {
  Grant(alice_, a_, 0, 100, 0, 200);
  Grant(alice_, c_, 0, 100, 0, 200);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  // C is not adjacent to A: observation implies a tracking gap or bypass.
  engine.ObservePresence(20, alice_, c_);
  EXPECT_EQ(CountAlerts(engine, AlertType::kImpossibleMovement), 1u);
  // She *was* authorized for C, so no unauthorized-presence alert.
  EXPECT_EQ(CountAlerts(engine, AlertType::kUnauthorizedPresence), 0u);
}

TEST_F(EngineTest, ObservedAuthorizedMovementUpdatesLedger) {
  Grant(alice_, a_, 0, 100, 0, 200);
  Grant(alice_, b_, 0, 100, 0, 200, 1);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  engine.ObservePresence(20, alice_, b_);  // Walked through without swiping.
  EXPECT_TRUE(engine.alerts().empty());
  // The observation consumed her single B entry.
  EXPECT_FALSE(auth_db_.CheckAccess(30, alice_, b_).granted);
}

TEST_F(EngineTest, GroupEntryOnSingleAuthorizationDetected) {
  // The Section 1 scenario: two users enter on one authorization. Bob
  // tailgates behind Alice; continuous monitoring catches him.
  ASSERT_OK_AND_ASSIGN(SubjectId bob, profiles_.AddSubject("Bob"));
  Grant(alice_, a_, 0, 100, 0, 200);
  AccessControlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.RequestEntry(10, alice_, a_).granted);
  engine.ObservePresence(10, bob, a_);
  ASSERT_EQ(CountAlerts(engine, AlertType::kUnauthorizedPresence), 1u);
  EXPECT_EQ(engine.alerts().back().subject, bob);
}

TEST_F(EngineTest, ClearAlerts) {
  AccessControlEngine engine = MakeEngine();
  engine.RequestEntry(10, alice_, a_);  // Denied -> alert.
  EXPECT_FALSE(engine.alerts().empty());
  engine.ClearAlerts();
  EXPECT_TRUE(engine.alerts().empty());
}

TEST_F(EngineTest, AlertToStringMentionsType) {
  AccessControlEngine engine = MakeEngine();
  engine.RequestEntry(10, alice_, a_);
  EXPECT_NE(engine.alerts()[0].ToString().find("access-denied"),
            std::string::npos);
}

}  // namespace
}  // namespace ltam
