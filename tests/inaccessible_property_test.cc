// Copyright 2026 The LTAM Authors.
// Property-based tests for Algorithm 1 over randomly generated graphs and
// authorization workloads.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/inaccessible.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

struct RandomCase {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  SubjectId subject = kInvalidSubject;
};

RandomCase MakeCase(uint64_t seed, double coverage) {
  Rng rng(seed);
  RandomCase c;
  uint32_t n = 8 + static_cast<uint32_t>(rng.Uniform(24));
  uint32_t d = 2 + static_cast<uint32_t>(rng.Uniform(4));
  Result<MultilevelLocationGraph> g = MakeRandomRegularGraph(n, d, &rng);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  c.graph = std::move(g).ValueOrDie();
  std::vector<SubjectId> subjects = GenerateSubjects(&c.profiles, 1);
  c.subject = subjects[0];
  AuthWorkloadOptions opt;
  opt.coverage = coverage;
  opt.horizon = 200;
  opt.min_len = 20;
  opt.max_len = 120;
  opt.max_slack = 80;
  GenerateAuthorizations(c.graph, subjects, opt, &rng, &c.auth_db);
  return c;
}

class InaccessiblePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InaccessiblePropertyTest, SweepAndWorklistAgree) {
  RandomCase c = MakeCase(GetParam(), 0.6);
  InaccessibleOptions sweep;
  sweep.algorithm = InaccessibleAlgorithm::kSweep;
  InaccessibleOptions worklist;
  worklist.algorithm = InaccessibleAlgorithm::kWorklist;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult rs,
      FindInaccessible(c.graph, c.graph.root(), c.subject, c.auth_db, sweep));
  ASSERT_OK_AND_ASSIGN(InaccessibleResult rw,
                       FindInaccessible(c.graph, c.graph.root(), c.subject,
                                        c.auth_db, worklist));
  EXPECT_EQ(rs.inaccessible, rw.inaccessible);
  // Not only the answer: the fixpoint durations must agree too.
  ASSERT_EQ(rs.final_states.size(), rw.final_states.size());
  for (size_t i = 0; i < rs.final_states.size(); ++i) {
    EXPECT_EQ(rs.final_states[i].grant, rw.final_states[i].grant);
    EXPECT_EQ(rs.final_states[i].departure, rw.final_states[i].departure);
  }
}

TEST_P(InaccessiblePropertyTest, EntryWithAuthorizationIsAccessible) {
  RandomCase c = MakeCase(GetParam(), 1.0);
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(c.graph, c.graph.root(), c.subject, c.auth_db));
  for (LocationId e : c.graph.EntryPrimitives(c.graph.root())) {
    if (!c.auth_db.ForSubjectLocation(c.subject, e).empty()) {
      EXPECT_FALSE(r.IsInaccessible(e))
          << "authorized entry location must be accessible";
    }
  }
}

TEST_P(InaccessiblePropertyTest, AddingAuthorizationsNeverShrinksAccess) {
  RandomCase c = MakeCase(GetParam(), 0.4);
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult before,
      FindInaccessible(c.graph, c.graph.root(), c.subject, c.auth_db));
  // Add blanket authorizations for three random rooms.
  Rng rng(GetParam() * 31 + 7);
  std::vector<LocationId> prims = c.graph.Primitives();
  for (int i = 0; i < 3; ++i) {
    LocationId l = prims[rng.Uniform(prims.size())];
    c.auth_db.Add(LocationTemporalAuthorization::Make(
                      TimeInterval(0, 500), TimeInterval(0, 600),
                      LocationAuthorization{c.subject, l}, kUnlimitedEntries)
                      .ValueOrDie());
  }
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult after,
      FindInaccessible(c.graph, c.graph.root(), c.subject, c.auth_db));
  // Monotonicity: whatever was accessible stays accessible.
  for (LocationId l : before.analyzed) {
    if (!before.IsInaccessible(l)) {
      EXPECT_FALSE(after.IsInaccessible(l))
          << "location " << l << " lost access after adding authorizations";
    }
  }
}

TEST_P(InaccessiblePropertyTest, InaccessibleLocationsHaveNoAuthorizedRoute) {
  // Cross-check against a direct route-feasibility search: a location the
  // algorithm calls inaccessible must have no authorized route; one it
  // calls accessible must have a grant window (sanity of T^g).
  RandomCase c = MakeCase(GetParam(), 0.5);
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(c.graph, c.graph.root(), c.subject, c.auth_db));
  for (LocationId l : r.analyzed) {
    const IntervalSet& grant =
        r.final_states[std::lower_bound(r.analyzed.begin(), r.analyzed.end(),
                                        l) -
                       r.analyzed.begin()]
            .grant;
    EXPECT_EQ(r.IsInaccessible(l), grant.empty());
    if (!grant.empty()) {
      // Every grant chronon lies inside some entry duration of l.
      IntervalSet entry = c.auth_db.EntryDurations(c.subject, l);
      EXPECT_TRUE(entry.ContainsSet(grant));
    }
  }
}

TEST_P(InaccessiblePropertyTest, HierarchicalPruneSoundOnCampus) {
  Rng rng(GetParam());
  Result<MultilevelLocationGraph> g = MakeCampusGraph(
      2 + static_cast<uint32_t>(rng.Uniform(4)),
      2 + static_cast<uint32_t>(rng.Uniform(5)));
  ASSERT_TRUE(g.ok());
  MultilevelLocationGraph graph = std::move(g).ValueOrDie();
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 1);
  AuthorizationDatabase db;
  AuthWorkloadOptions opt;
  opt.coverage = 0.5;
  GenerateAuthorizations(graph, subjects, opt, &rng, &db);
  ASSERT_OK_AND_ASSIGN(InaccessibleResult global,
                       FindInaccessible(graph, graph.root(), subjects[0], db));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> pruned,
                       HierarchicalInaccessiblePrune(graph, subjects[0], db));
  // Lemma 1 soundness: locally inaccessible implies globally inaccessible.
  for (LocationId l : pruned) {
    EXPECT_TRUE(global.IsInaccessible(l));
  }
}

TEST_P(InaccessiblePropertyTest, FullCoverageWithWideWindowsReachesAll) {
  // With every room authorized over the whole horizon and generous exits,
  // everything reachable in the graph must be accessible.
  Rng rng(GetParam());
  Result<MultilevelLocationGraph> g = MakeGridGraph(4, 4);
  ASSERT_TRUE(g.ok());
  MultilevelLocationGraph graph = std::move(g).ValueOrDie();
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 1);
  AuthorizationDatabase db;
  for (LocationId l : graph.Primitives()) {
    db.Add(LocationTemporalAuthorization::Make(
               TimeInterval(0, 1000), TimeInterval(0, 2000),
               LocationAuthorization{subjects[0], l}, kUnlimitedEntries)
               .ValueOrDie());
  }
  ASSERT_OK_AND_ASSIGN(InaccessibleResult r,
                       FindInaccessible(graph, graph.root(), subjects[0], db));
  EXPECT_TRUE(r.inaccessible.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, InaccessiblePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ltam
