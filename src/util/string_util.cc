// Copyright 2026 The LTAM Authors.

#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ltam {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& part : Split(s, sep)) {
    std::string t = Trim(part);
    if (!t.empty()) out.push_back(std::move(t));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf = Trim(s);
  if (buf.empty()) return Status::ParseError("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: '" + buf + "'");
  }
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf = Trim(s);
  if (buf.empty()) return Status::ParseError("empty float literal");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("float out of range: '" + buf + "'");
  }
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("not a float: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ltam
