// Copyright 2026 The LTAM Authors.
// ltam-serve wire protocol: length-prefixed, versioned binary frames.
//
// Every message on the wire is one frame:
//
//   magic      u32le  0x4D41544C ("LTAM")
//   version    u8     kWireVersion
//   type       u8     MessageType
//   reserved   u16le  must be zero
//   request_id u32le  echoed verbatim in the response (pipelining demux)
//   length     u32le  payload byte count, <= kMaxFramePayload
//   payload    <length> bytes, encoding per MessageType
//
// Requests cover the whole AccessRuntime event/read surface — ApplyBatch,
// Apply, ApplyFix, Query (a query-language string answered over the
// MovementView), Checkpoint, Stats, Ping — and responses carry decisions,
// drained alerts, the batch durability outcome, query tables, runtime
// stats, or a structured error mapped from Status.
//
// Decoding follows the storage/event_log.h discipline: every integer is
// bounds-checked, every enum value validated, every string length checked
// against the remaining payload before it is read, and a payload must be
// consumed exactly — a truncated, oversized, or corrupt frame surfaces as
// a ParseError, never as a crash, an over-read, or an id wrapped into
// nonsense (tests/service_protocol_fuzz_test.cc hammers this contract).

#ifndef LTAM_SERVICE_PROTOCOL_H_
#define LTAM_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/events.h"
#include "query/query_language.h"
#include "runtime/access_runtime.h"
#include "util/result.h"

namespace ltam {

/// Protocol version this build speaks. Frames with any other version are
/// rejected — that rejection is the ONLY compatibility mechanism, so any
/// payload-shape change must bump this. v1 was the PR-4 protocol; v2
/// added the durability watermark to batch results and the
/// watermark/WAL-failure fields to stats results.
inline constexpr uint8_t kWireVersion = 2;

/// "LTAM" as a little-endian u32 ('L' is the first byte on the wire).
inline constexpr uint32_t kWireMagic = 0x4D41544Cu;

/// Hard ceiling on one frame's payload. Large enough for a 64k-event
/// batch or a wide query table; small enough that a corrupt length field
/// can never drive allocation.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

/// Protocol-level ceiling on events per ApplyBatch frame (a server may
/// enforce a tighter one via RuntimeOptions::max_batch_events).
inline constexpr uint32_t kMaxWireBatchEvents = 1u << 16;

/// Frame header size on the wire.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Every message type of the protocol. Requests and responses share the
/// numbering space; responses start at 32.
enum class MessageType : uint8_t {
  // Requests.
  kPing = 1,
  kApply = 2,
  kApplyBatch = 3,
  kApplyFix = 4,
  kQuery = 5,
  kCheckpoint = 6,
  kStats = 7,
  // Responses.
  kPong = 32,
  kApplyResult = 33,
  kBatchResult = 34,
  kFixResult = 35,
  kQueryResult = 36,
  kCheckpointResult = 37,
  kStatsResult = 38,
  kError = 39,
};

/// True for the request half of the numbering space.
bool IsRequestType(MessageType type);

/// Stable lower-case name ("apply-batch", "stats-result", ...).
const char* MessageTypeToString(MessageType type);

/// One decoded frame header.
struct FrameHeader {
  uint8_t version = kWireVersion;
  MessageType type = MessageType::kPing;
  uint32_t request_id = 0;
  uint32_t payload_length = 0;
};

/// One complete frame.
struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Encodes a complete frame (header + payload).
std::string EncodeFrame(MessageType type, uint32_t request_id,
                        const std::string& payload);

/// Decodes the 16 header bytes. ParseError on bad magic, unknown
/// version, unknown type, nonzero reserved bits, or a length above
/// kMaxFramePayload. Requires `size >= kFrameHeaderBytes`.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

/// Incremental frame extraction for a byte stream (the read side of a
/// socket). Append raw bytes as they arrive; Next() yields complete
/// frames in order. A malformed header is a sticky error — the stream
/// can no longer be framed and the connection must be dropped.
class FrameAssembler {
 public:
  /// Appends raw stream bytes.
  void Append(const char* data, size_t size);

  /// Returns the next complete frame, nullopt when more bytes are
  /// needed, or ParseError once the stream is unframeable.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
};

// --- Request payloads --------------------------------------------------------

/// Ping / Checkpoint / Stats requests and the Pong / CheckpointResult
/// responses carry no payload; encode with EncodeFrame(type, id, "").

std::string EncodeApplyRequest(const AccessEvent& event);
Result<AccessEvent> DecodeApplyRequest(const std::string& payload);

std::string EncodeApplyBatchRequest(Span<const AccessEvent> events);
Result<std::vector<AccessEvent>> DecodeApplyBatchRequest(
    const std::string& payload);

std::string EncodeApplyFixRequest(const PositionFix& fix);
Result<PositionFix> DecodeApplyFixRequest(const std::string& payload);

std::string EncodeQueryRequest(const std::string& statement);
Result<std::string> DecodeQueryRequest(const std::string& payload);

// --- Response payloads -------------------------------------------------------

/// What one Apply/ApplyBatch produced, as seen through the wire: the
/// per-event decisions, the alerts the server attributed to this frame
/// (routed by subject out of the coalesced batch), the durability
/// outcome of the underlying AccessRuntime::ApplyBatch, and the
/// runtime's durability watermark at that moment (under a pipelined
/// server the ack arrives before the fsync — durable < applied tells
/// the client exactly how far the crash-proof prefix reaches).
struct WireBatchResult {
  std::vector<Decision> decisions;
  std::vector<Alert> alerts;
  Status durability;
  DurabilityWatermark watermark;
};

/// kApplyResult and kBatchResult share this payload encoding (an Apply
/// is a one-event batch server-side).
std::string EncodeBatchResult(const WireBatchResult& result);
Result<WireBatchResult> DecodeBatchResult(const std::string& payload);

/// kFixResult: the ApplyFix status plus the alerts the fix raised.
struct WireFixResult {
  Status status;
  std::vector<Alert> alerts;
};

std::string EncodeFixResult(const WireFixResult& result);
Result<WireFixResult> DecodeFixResult(const std::string& payload);

/// kQueryResult reuses the interpreter's tabular QueryResult.
std::string EncodeQueryResult(const QueryResult& result);
Result<QueryResult> DecodeQueryResult(const std::string& payload);

/// kStatsResult carries the runtime's own counters verbatim — the remote
/// Stats() answer is the same struct a local caller sees.
std::string EncodeStatsResult(const RuntimeStats& stats);
Result<RuntimeStats> DecodeStatsResult(const std::string& payload);

/// kError: a Status by value (code + message). OK is not a valid error
/// payload — encoding it is a programming error, decoding it a
/// ParseError. The returned status is the decode outcome; the carried
/// error lands in *error (untouched on decode failure).
std::string EncodeErrorResult(const Status& status);
Status DecodeErrorResult(const std::string& payload, Status* error);

}  // namespace ltam

#endif  // LTAM_SERVICE_PROTOCOL_H_
