// Copyright 2026 The LTAM Authors.

#include "storage/durable_sharded_system.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <utility>

#include "storage/event_log.h"
#include "util/logging.h"

namespace ltam {

DurableShardedSystem::DurableShardedSystem(std::string dir,
                                           DurableShardedOptions options)
    : dir_(std::move(dir)), options_(options) {}

DurableShardedSystem::~DurableShardedSystem() {
  // Join the workers before the WAL writers they append through go away.
  engine_.reset();
  wals_.clear();
}

std::string DurableShardedSystem::FilePath(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string DurableShardedSystem::BaseSnapName(uint64_t epoch) const {
  return "base-" + std::to_string(epoch) + ".snap";
}

std::string DurableShardedSystem::ShardSnapName(uint32_t shard,
                                                uint64_t epoch) const {
  return "shard-" + std::to_string(shard) + "-" + std::to_string(epoch) +
         ".snap";
}

std::string DurableShardedSystem::ShardWalName(uint32_t shard,
                                               uint64_t epoch) const {
  return "events-" + std::to_string(shard) + "-" + std::to_string(epoch) +
         ".wal";
}

void DurableShardedSystem::InitEngine(uint32_t num_shards) {
  ShardedEngineOptions opt;
  opt.num_shards = num_shards;
  opt.engine = options_.engine;
  engine_ = std::make_unique<ShardedDecisionEngine>(
      &base_.graph, &base_.auth_db, &base_.profiles, opt);
}

Status DurableShardedSystem::PartitionBaseMovements() {
  MovementDatabase seed = std::move(base_.movements);
  base_.movements = MovementDatabase();
  return PartitionMovementsIntoShards(seed, engine_.get());
}

void DurableShardedSystem::RebuildShardStays(uint32_t k) {
  // Each inside subject resumes their stay under the first active
  // in-window authorization for (s, current location) — the same choice
  // CheckAccess (and the sequential DurableSystem's recovery) makes.
  ResumeOpenStays(&engine_->shard_engine(k), engine_->shard_movements(k),
                  base_.auth_db,
                  SubjectsOnShard(base_.profiles, *engine_, k));
}

Status DurableShardedSystem::ReplayShardLogs(const ShardManifest& manifest) {
  const uint32_t n = engine_->num_shards();
  std::vector<Status> results(n, Status::OK());
  std::vector<std::thread> replayers;
  replayers.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    const std::string path = FilePath(manifest.shards[k].wal);
    if (!FileExists(path)) {
      // WriteEpoch creates every WAL before the manifest rename commits
      // them, so a committed cut whose log vanished is data loss, not a
      // crash window — refuse to silently drop the shard's tail.
      results[k] = Status::IOError("shard WAL '" + path +
                                   "' named by the manifest is missing");
      continue;
    }
    // Repair a torn final record now, before replay and before any new
    // append lands on the same line as the torn bytes.
    Result<size_t> dropped = TruncateTornWalTail(path);
    if (!dropped.ok()) {
      results[k] = dropped.status();
      continue;
    }
    // Parallel replay is safe under the live pipeline's discipline: each
    // log holds only its own shard's subjects (validated below), so no
    // two replayers ever touch the same subject's records.
    replayers.emplace_back([this, k, path, &results] {
      AccessControlEngine& shard_engine = engine_->shard_engine(k);
      results[k] = ReplayWal(path, [&](const Record& rec) -> Status {
        LTAM_ASSIGN_OR_RETURN(LoggedEvent event, DecodeEventRecord(rec));
        if (!event.is_tick &&
            engine_->ShardOf(event.event.subject) != k) {
          return Status::ParseError(
              "log for shard " + std::to_string(k) +
              " contains foreign subject " +
              std::to_string(event.event.subject));
        }
        ApplyLoggedEvent(&shard_engine, event);
        return Status::OK();
      });
    });
  }
  for (std::thread& t : replayers) t.join();
  for (uint32_t k = 0; k < n; ++k) {
    if (!results[k].ok()) {
      return results[k].WithContext("replaying shard " + std::to_string(k));
    }
  }
  return Status::OK();
}

Status DurableShardedSystem::WriteEpoch(uint64_t epoch,
                                        ShardManifest* out_manifest) {
  const uint32_t n = engine_->num_shards();
  ShardManifest m;
  m.epoch = epoch;
  m.num_shards = n;
  m.base_snapshot = BaseSnapName(epoch);
  LTAM_RETURN_IF_ERROR(SaveSnapshot(base_, FilePath(m.base_snapshot)));
  LTAM_RETURN_IF_ERROR(SyncFile(FilePath(m.base_snapshot)));
  for (uint32_t k = 0; k < n; ++k) {
    ShardManifest::ShardFiles files{ShardSnapName(k, epoch),
                                    ShardWalName(k, epoch)};
    LTAM_RETURN_IF_ERROR(
        SaveMovements(engine_->shard_movements(k), FilePath(files.snapshot)));
    LTAM_RETURN_IF_ERROR(SyncFile(FilePath(files.snapshot)));
    m.shards.push_back(std::move(files));
  }
  // Fresh, empty logs for the new epoch (truncating any orphan a crashed
  // earlier attempt at this epoch left behind).
  std::vector<std::unique_ptr<WalWriter>> fresh;
  fresh.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    LTAM_ASSIGN_OR_RETURN(WalWriter wal,
                          WalWriter::Create(FilePath(m.shards[k].wal)));
    fresh.push_back(std::make_unique<WalWriter>(std::move(wal)));
  }
  // The commit point: everything above becomes the recovered state the
  // instant this rename lands.
  LTAM_RETURN_IF_ERROR(SaveManifest(m, FilePath(ManifestFileName())));
  wals_ = std::move(fresh);
  *out_manifest = std::move(m);
  return Status::OK();
}

void DurableShardedSystem::RemoveEpochFiles(uint64_t epoch) {
  const uint32_t n = engine_->num_shards();
  std::remove(FilePath(BaseSnapName(epoch)).c_str());
  for (uint32_t k = 0; k < n; ++k) {
    std::remove(FilePath(ShardSnapName(k, epoch)).c_str());
    std::remove(FilePath(ShardWalName(k, epoch)).c_str());
  }
}

void DurableShardedSystem::InstallHooks() {
  ShardHooks hooks;
  hooks.before_apply = [this](uint32_t shard, const AccessEvent& event) {
    return wals_[shard]->Append(EncodeEventRecord(event));
  };
  if (options_.sync_every_batch) {
    hooks.after_batch = [this](uint32_t shard) {
      return wals_[shard]->Sync();
    };
  }
  engine_->SetShardHooks(std::move(hooks));
}

Result<std::unique_ptr<DurableShardedSystem>> DurableShardedSystem::Open(
    const std::string& dir, SystemState initial,
    DurableShardedOptions options) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("'" + dir + "' is not a directory");
  }
  options.num_shards = std::max<uint32_t>(1, options.num_shards);
  std::unique_ptr<DurableShardedSystem> sys(
      new DurableShardedSystem(dir, options));
  sys->requested_shards_ = options.num_shards;
  const std::string manifest_path = sys->FilePath(ManifestFileName());
  if (FileExists(manifest_path)) {
    LTAM_ASSIGN_OR_RETURN(ShardManifest manifest,
                          LoadManifest(manifest_path));
    if (manifest.num_shards != options.num_shards) {
      // The on-disk partition always wins — the logged subjects were
      // routed under it — but callers asked for something else, so say
      // so explicitly instead of letting them guess from behavior.
      sys->shard_count_overridden_ = true;
      LTAM_LOG_WARNING << "durable directory '" << dir << "' pins "
                       << manifest.num_shards << " shards; requested "
                       << options.num_shards
                       << " ignored (partition is fixed at creation)";
    }
    LTAM_ASSIGN_OR_RETURN(SystemState recovered,
                          LoadSnapshot(sys->FilePath(manifest.base_snapshot)));
    if (!recovered.movements.history().empty()) {
      return Status::ParseError(
          "sharded base snapshot must not carry movement records "
          "(movements live in the per-shard segments)");
    }
    sys->base_ = std::move(recovered);
    sys->InitEngine(manifest.num_shards);
    for (uint32_t k = 0; k < manifest.num_shards; ++k) {
      LTAM_ASSIGN_OR_RETURN(
          MovementDatabase segment,
          LoadMovements(sys->FilePath(manifest.shards[k].snapshot)));
      for (const MovementEvent& ev : segment.history()) {
        if (sys->engine_->ShardOf(ev.subject) != k) {
          return Status::ParseError(
              "segment for shard " + std::to_string(k) +
              " contains foreign subject " + std::to_string(ev.subject));
        }
      }
      sys->engine_->mutable_shard_movements(k) = std::move(segment);
      sys->RebuildShardStays(k);
    }
    LTAM_RETURN_IF_ERROR(sys->ReplayShardLogs(manifest));
    for (uint32_t k = 0; k < manifest.num_shards; ++k) {
      LTAM_ASSIGN_OR_RETURN(
          WalWriter wal, WalWriter::Open(sys->FilePath(manifest.shards[k].wal)));
      sys->wals_.push_back(std::make_unique<WalWriter>(std::move(wal)));
    }
    sys->epoch_ = manifest.epoch;
  } else {
    sys->base_ = std::move(initial);
    sys->InitEngine(options.num_shards);
    LTAM_RETURN_IF_ERROR(sys->PartitionBaseMovements());
    for (uint32_t k = 0; k < sys->num_shards(); ++k) {
      sys->RebuildShardStays(k);
    }
    // Checkpoint the seed immediately: recovery never needs `initial`.
    ShardManifest manifest;
    LTAM_RETURN_IF_ERROR(sys->WriteEpoch(0, &manifest));
    sys->epoch_ = 0;
  }
  sys->InstallHooks();
  return sys;
}

std::vector<Decision> DurableShardedSystem::EvaluateBatchWithStatus(
    Span<const AccessEvent> batch, Status* durability) {
  std::vector<Decision> decisions = engine_->EvaluateBatch(batch);
  *durability = engine_->TakeBatchError();
  return decisions;
}

Result<std::vector<Decision>> DurableShardedSystem::EvaluateBatch(
    Span<const AccessEvent> batch) {
  Status durability;
  std::vector<Decision> decisions = EvaluateBatchWithStatus(batch, &durability);
  if (!durability.ok()) {
    return durability.WithContext("durable batch");
  }
  return decisions;
}

Status DurableShardedSystem::Tick(Chronon t) {
  const Record record = EncodeTickRecord(t);
  Status first_error;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Status logged = wals_[k]->Append(record);
    if (!logged.ok()) {
      // Write-ahead per shard: a shard whose tick could not be logged is
      // not ticked, so its live state never diverges from what recovery
      // would replay.
      if (first_error.ok()) first_error = std::move(logged);
      continue;
    }
    engine_->TickShard(k, t);
    if (options_.sync_every_batch) {
      Status synced = wals_[k]->Sync();
      // A failed fsync leaves the tick appended and applied (consistent);
      // only its durability is in doubt — report it.
      if (!synced.ok() && first_error.ok()) first_error = std::move(synced);
    }
  }
  return first_error;
}

Status DurableShardedSystem::Checkpoint() {
  const uint64_t old_epoch = epoch_;
  ShardManifest manifest;
  LTAM_RETURN_IF_ERROR(WriteEpoch(old_epoch + 1, &manifest));
  epoch_ = old_epoch + 1;
  RemoveEpochFiles(old_epoch);
  return Status::OK();
}

size_t DurableShardedSystem::wal_events() const {
  size_t total = 0;
  for (const std::unique_ptr<WalWriter>& wal : wals_) {
    total += wal->appended();
  }
  return total;
}

MovementDatabase DurableShardedSystem::MergedMovements() const {
  std::vector<MovementEvent> all;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const std::vector<MovementEvent>& history =
        engine_->shard_movements(k).history();
    all.insert(all.end(), history.begin(), history.end());
  }
  // Stable by time: a subject's events sit on one shard in order, so the
  // per-subject nondecreasing invariant survives the merge.
  std::stable_sort(all.begin(), all.end(),
                   [](const MovementEvent& a, const MovementEvent& b) {
                     return a.time < b.time;
                   });
  MovementDatabase merged;
  for (const MovementEvent& ev : all) {
    Status recorded = merged.RecordMovement(ev.time, ev.subject, ev.to);
    (void)recorded;  // Invariant: cannot fail; shards preserve order.
  }
  return merged;
}

}  // namespace ltam
