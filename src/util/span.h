// Copyright 2026 The LTAM Authors.
// Span<T>: a non-owning read-only view over a contiguous sequence.
//
// C++17 predates std::span; this is the minimal slice the batch APIs
// need — pointer + length, implicitly constructible from a vector or an
// array so existing call sites keep compiling while the engines stop
// requiring a concrete std::vector.

#ifndef LTAM_UTIL_SPAN_H_
#define LTAM_UTIL_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace ltam {

/// Read-only view over `size` contiguous `T`s. The viewed storage must
/// outlive the span (batch APIs only hold one for the duration of the
/// call).
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): vectors are the common
  // batch container; implicit conversion keeps call sites unchanged
  // (Span<const T> views a std::vector<T>).
  Span(const std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  template <size_t N>
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr Span(const T (&arr)[N]) : data_(arr), size_(N) {}
  /// Braced-list batches (`Apply({...})`). The backing array lives until
  /// the end of the full expression — long enough for the synchronous
  /// batch APIs, but never store such a span (which is exactly what the
  /// suppressed lifetime warning would flag).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr Span(std::initializer_list<std::remove_const_t<T>> il)
      : data_(il.begin()), size_(il.size()) {}
#pragma GCC diagnostic pop

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ltam

#endif  // LTAM_UTIL_SPAN_H_
