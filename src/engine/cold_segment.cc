// Copyright 2026 The LTAM Authors.

#include "engine/cold_segment.h"

#include <algorithm>
#include <numeric>

namespace ltam {

void ColdSegment::SubjectRange(SubjectId s, size_t* first, size_t* last) const {
  auto lo = std::lower_bound(subjects.begin(), subjects.end(), s);
  auto hi = std::upper_bound(lo, subjects.end(), s);
  *first = static_cast<size_t>(lo - subjects.begin());
  *last = static_cast<size_t>(hi - subjects.begin());
}

void ColdSegment::RecomputeBounds() {
  if (empty()) {
    min_enter = 0;
    max_exit = 0;
    return;
  }
  min_enter = enters[0];
  max_exit = exits[0];
  for (size_t i = 0; i < rows(); ++i) {
    min_enter = std::min(min_enter, enters[i]);
    max_exit = std::max(max_exit, exits[i]);
  }
}

std::shared_ptr<const ColdSegment> MergeColdSegments(
    const std::vector<std::shared_ptr<const ColdSegment>>& segments) {
  auto merged = std::make_shared<ColdSegment>();
  size_t total = 0;
  for (const auto& seg : segments) {
    total += seg->rows();
    merged->sealed_events += seg->sealed_events;
  }
  // Gather row handles (segment index, row index), then sort them by the
  // canonical key. A plain sort is correct — equal keys are genuinely
  // interchangeable rows — but use the sequence order as the final
  // tiebreak anyway so the merge is bit-reproducible.
  struct Handle {
    uint32_t seg;
    uint32_t row;
  };
  std::vector<Handle> handles;
  handles.reserve(total);
  for (uint32_t s = 0; s < segments.size(); ++s) {
    for (uint32_t r = 0; r < segments[s]->rows(); ++r) {
      handles.push_back(Handle{s, r});
    }
  }
  std::sort(handles.begin(), handles.end(),
            [&segments](const Handle& a, const Handle& b) {
              const ColdSegment& sa = *segments[a.seg];
              const ColdSegment& sb = *segments[b.seg];
              if (sa.subjects[a.row] != sb.subjects[b.row]) {
                return sa.subjects[a.row] < sb.subjects[b.row];
              }
              if (sa.enters[a.row] != sb.enters[b.row]) {
                return sa.enters[a.row] < sb.enters[b.row];
              }
              if (sa.exits[a.row] != sb.exits[b.row]) {
                return sa.exits[a.row] < sb.exits[b.row];
              }
              if (sa.locations[a.row] != sb.locations[b.row]) {
                return sa.locations[a.row] < sb.locations[b.row];
              }
              if (a.seg != b.seg) return a.seg < b.seg;
              return a.row < b.row;
            });
  merged->subjects.reserve(total);
  merged->locations.reserve(total);
  merged->enters.reserve(total);
  merged->exits.reserve(total);
  for (const Handle& h : handles) {
    const ColdSegment& seg = *segments[h.seg];
    merged->subjects.push_back(seg.subjects[h.row]);
    merged->locations.push_back(seg.locations[h.row]);
    merged->enters.push_back(seg.enters[h.row]);
    merged->exits.push_back(seg.exits[h.row]);
  }
  merged->RecomputeBounds();
  return merged;
}

}  // namespace ltam
