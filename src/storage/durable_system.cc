// Copyright 2026 The LTAM Authors.

#include "storage/durable_system.h"

#include <sys/stat.h>

#include <cstdio>
#include <utility>

#include "engine/sharded_engine.h"
#include "storage/event_log.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace ltam {

namespace {

constexpr const char kSnapshotFile[] = "state.snap";
constexpr const char kWalFile[] = "events.wal";

std::string SnapPath(const std::string& dir) {
  return dir + "/" + kSnapshotFile;
}
std::string WalPath(const std::string& dir) { return dir + "/" + kWalFile; }

}  // namespace

DurableSystem::DurableSystem(std::string dir, SystemState state,
                             EngineOptions engine_options,
                             DurabilityOptions durability,
                             bool sync_every_batch)
    : dir_(std::move(dir)),
      state_(std::move(state)),
      engine_options_(engine_options),
      durability_(std::move(durability)),
      sync_every_batch_(sync_every_batch) {}

const char* DurableSystem::SnapshotFileName() { return kSnapshotFile; }
const char* DurableSystem::WalFileName() { return kWalFile; }

Result<std::unique_ptr<DurableSystem>> DurableSystem::Open(
    const std::string& dir, SystemState initial, EngineOptions engine_options,
    DurabilityOptions durability, bool sync_every_batch) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("'" + dir + "' is not a directory");
  }
  std::unique_ptr<DurableSystem> sys;
  if (FileExists(SnapPath(dir))) {
    LTAM_ASSIGN_OR_RETURN(SystemState recovered, LoadSnapshot(SnapPath(dir)));
    sys.reset(new DurableSystem(dir, std::move(recovered), engine_options,
                                std::move(durability), sync_every_batch));
  } else {
    sys.reset(new DurableSystem(dir, std::move(initial), engine_options,
                                std::move(durability), sync_every_batch));
  }
  LTAM_RETURN_IF_ERROR(sys->InitEngine());
  sys->RebuildActiveStays();
  if (FileExists(WalPath(dir))) {
    // Drop a torn final record before replaying; otherwise the next
    // append would merge with it into one garbage line.
    LTAM_ASSIGN_OR_RETURN(size_t dropped, TruncateTornWalTail(WalPath(dir)));
    (void)dropped;
    LTAM_RETURN_IF_ERROR(sys->ReplayLogTail());
  }
  LTAM_ASSIGN_OR_RETURN(sys->log_, sys->MakeLog());
  return sys;
}

Result<std::unique_ptr<ShardLog>> DurableSystem::MakeLog() {
  LTAM_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(WalPath(dir_)));
  DurabilityOptions opts = durability_;
  // One unrotated log file: the sequential layout has no manifest to
  // commit new segment names into.
  opts.segment_max_bytes = 0;
  // One producer, one file: a failed fsync leaves no hole (every record
  // is already written, in order), so the log thread retries on its next
  // cadence instead of freezing the watermark — the discipline this
  // runtime has always had.
  opts.retry_failed_syncs = true;
  return std::make_unique<ShardLog>(std::move(wal), /*writer_bytes=*/0,
                                    /*segment_index=*/0, std::move(opts),
                                    sync_every_batch_, /*rotate=*/nullptr);
}

Status DurableSystem::InitEngine() {
  engine_ = std::make_unique<AccessControlEngine>(
      &state_.graph, &state_.auth_db, &state_.movements, &state_.profiles,
      engine_options_);
  return Status::OK();
}

void DurableSystem::RebuildActiveStays() {
  ResumeOpenStays(engine_.get(), state_.movements, state_.auth_db,
                  state_.profiles.AllSubjects());
}

Status DurableSystem::ReplayLogTail() {
  replaying_ = true;
  // The shared logged-event codec (storage/event_log.h) decodes and
  // re-applies each record; denials repeat deterministically.
  Status st = ReplayWal(WalPath(dir_), [this](const Record& rec) -> Status {
    return ApplyLoggedRecord(engine_.get(), rec);
  });
  replaying_ = false;
  return st;
}

Status DurableSystem::Log(const Record& record) {
  if (log_ == nullptr) {
    return Status::FailedPrecondition("runtime is not open");
  }
  return log_->Append(record).status();
}

Result<Decision> DurableSystem::Apply(const AccessEvent& event) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(event)));
  return ApplyAccessEvent(engine_.get(), event);
}

Result<Decision> DurableSystem::RequestEntry(Chronon t, SubjectId s,
                                             LocationId l) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(AccessEvent::Entry(t, s, l))));
  return engine_->RequestEntry(t, s, l);
}

Status DurableSystem::RequestExit(Chronon t, SubjectId s) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(AccessEvent::Exit(t, s))));
  return engine_->RequestExit(t, s);
}

Status DurableSystem::ObservePresence(Chronon t, SubjectId s, LocationId l) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(AccessEvent::Observe(t, s, l))));
  return engine_->ObservePresence(t, s, l);
}

Status DurableSystem::Tick(Chronon t) {
  LTAM_RETURN_IF_ERROR(Log(EncodeTickRecord(t)));
  engine_->Tick(t);
  return Status::OK();
}

Status DurableSystem::BatchBoundary() {
  if (log_ == nullptr) {
    return Status::FailedPrecondition("runtime is not open");
  }
  return log_->BatchBoundary().status();
}

Status DurableSystem::Sync() {
  if (log_ == nullptr) {
    return Status::FailedPrecondition("runtime is not open");
  }
  return log_->Flush();
}

Status DurableSystem::Checkpoint() {
  LTAM_RETURN_IF_ERROR(SaveSnapshot(state_, SnapPath(dir_)));
  // Retire the log generation: the snapshot supersedes it, so every
  // record it accepted counts as durable from here on.
  if (log_ != nullptr) {
    retired_records_ += log_->appended_seq();
    retired_append_failures_ += log_->append_failures();
    retired_sync_failures_ += log_->sync_failures();
    log_.reset();  // Joins the log thread before its file goes away.
  }
  if (std::remove(WalPath(dir_).c_str()) != 0 &&
      FileExists(WalPath(dir_))) {
    return Status::IOError("cannot truncate WAL");
  }
  LTAM_ASSIGN_OR_RETURN(log_, MakeLog());
  return Status::OK();
}

size_t DurableSystem::wal_events() const {
  return log_ == nullptr ? 0 : static_cast<size_t>(log_->appended_seq());
}

uint64_t DurableSystem::total_appended() const {
  return retired_records_ + (log_ == nullptr ? 0 : log_->appended_seq());
}

uint64_t DurableSystem::total_synced() const {
  return retired_records_ + (log_ == nullptr ? 0 : log_->durable_seq());
}

uint64_t DurableSystem::wal_append_failures() const {
  return retired_append_failures_ +
         (log_ == nullptr ? 0 : log_->append_failures());
}

uint64_t DurableSystem::wal_sync_failures() const {
  return retired_sync_failures_ +
         (log_ == nullptr ? 0 : log_->sync_failures());
}

}  // namespace ltam
