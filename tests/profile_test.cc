// Copyright 2026 The LTAM Authors.

#include "profile/user_profile.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

TEST(ProfileTest, AddAndFind) {
  UserProfileDatabase db;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, db.AddSubject("Alice"));
  ASSERT_OK_AND_ASSIGN(SubjectId bob, db.AddSubject("Bob"));
  EXPECT_EQ(*db.Find("Alice"), alice);
  EXPECT_EQ(*db.Find("Bob"), bob);
  EXPECT_TRUE(db.Find("Carol").status().IsNotFound());
  EXPECT_TRUE(db.AddSubject("Alice").status().IsAlreadyExists());
  EXPECT_TRUE(db.AddSubject("").status().IsInvalidArgument());
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.AllSubjects(), (std::vector<SubjectId>{alice, bob}));
}

TEST(ProfileTest, SupervisorRelation) {
  UserProfileDatabase db;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, db.AddSubject("Alice"));
  ASSERT_OK_AND_ASSIGN(SubjectId bob, db.AddSubject("Bob"));
  EXPECT_TRUE(db.SupervisorOf(alice).status().IsNotFound());
  ASSERT_OK(db.SetSupervisor(alice, bob));
  EXPECT_EQ(*db.SupervisorOf(alice), bob);
  EXPECT_EQ(db.SubordinatesOf(bob), std::vector<SubjectId>{alice});
  // Clearing.
  ASSERT_OK(db.SetSupervisor(alice, kInvalidSubject));
  EXPECT_TRUE(db.SupervisorOf(alice).status().IsNotFound());
}

TEST(ProfileTest, SupervisorCyclesRejected) {
  UserProfileDatabase db;
  ASSERT_OK_AND_ASSIGN(SubjectId a, db.AddSubject("a"));
  ASSERT_OK_AND_ASSIGN(SubjectId b, db.AddSubject("b"));
  ASSERT_OK_AND_ASSIGN(SubjectId c, db.AddSubject("c"));
  EXPECT_TRUE(db.SetSupervisor(a, a).IsInvalidArgument());
  ASSERT_OK(db.SetSupervisor(b, a));
  ASSERT_OK(db.SetSupervisor(c, b));
  // a -> c would close the loop a <- b <- c <- a.
  EXPECT_TRUE(db.SetSupervisor(a, c).IsInvalidArgument());
  EXPECT_EQ(db.ManagementChain(c), (std::vector<SubjectId>{b, a}));
}

TEST(ProfileTest, Groups) {
  UserProfileDatabase db;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, db.AddSubject("Alice"));
  ASSERT_OK_AND_ASSIGN(SubjectId bob, db.AddSubject("Bob"));
  ASSERT_OK(db.AddToGroup(alice, "staff"));
  ASSERT_OK(db.AddToGroup(bob, "staff"));
  ASSERT_OK(db.AddToGroup(alice, "admins"));
  EXPECT_TRUE(db.IsInGroup(alice, "staff"));
  EXPECT_FALSE(db.IsInGroup(bob, "admins"));
  EXPECT_EQ(db.MembersOfGroup("staff"),
            (std::vector<SubjectId>{alice, bob}));
  ASSERT_OK(db.RemoveFromGroup(alice, "staff"));
  EXPECT_EQ(db.MembersOfGroup("staff"), std::vector<SubjectId>{bob});
  EXPECT_TRUE(db.MembersOfGroup("nobody").empty());
  EXPECT_TRUE(db.AddToGroup(alice, "").IsInvalidArgument());
}

TEST(ProfileTest, Roles) {
  UserProfileDatabase db;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, db.AddSubject("Alice"));
  ASSERT_OK(db.AssignRole(alice, "guard"));
  EXPECT_TRUE(db.HasRole(alice, "guard"));
  EXPECT_EQ(db.SubjectsWithRole("guard"), std::vector<SubjectId>{alice});
  ASSERT_OK(db.RevokeRole(alice, "guard"));
  EXPECT_FALSE(db.HasRole(alice, "guard"));
  EXPECT_TRUE(db.SubjectsWithRole("guard").empty());
}

TEST(ProfileTest, Attributes) {
  UserProfileDatabase db;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, db.AddSubject("Alice"));
  ASSERT_OK(db.SetAttribute(alice, "department", "SCE"));
  EXPECT_EQ(*db.GetAttribute(alice, "department"), "SCE");
  ASSERT_OK(db.SetAttribute(alice, "department", "EEE"));
  EXPECT_EQ(*db.GetAttribute(alice, "department"), "EEE");
  EXPECT_TRUE(db.GetAttribute(alice, "office").status().IsNotFound());
  EXPECT_TRUE(db.SetAttribute(alice, "", "x").IsInvalidArgument());
}

TEST(ProfileTest, VersionBumpsOnMutation) {
  UserProfileDatabase db;
  uint64_t v0 = db.version();
  ASSERT_OK_AND_ASSIGN(SubjectId alice, db.AddSubject("Alice"));
  EXPECT_GT(db.version(), v0);
  uint64_t v1 = db.version();
  ASSERT_OK_AND_ASSIGN(SubjectId bob, db.AddSubject("Bob"));
  ASSERT_OK(db.SetSupervisor(alice, bob));
  EXPECT_GT(db.version(), v1);
  uint64_t v2 = db.version();
  ASSERT_OK(db.AddToGroup(alice, "staff"));
  EXPECT_GT(db.version(), v2);
}

TEST(ProfileTest, OperationsOnUnknownSubjects) {
  UserProfileDatabase db;
  EXPECT_TRUE(db.SetSupervisor(7, kInvalidSubject).IsNotFound());
  EXPECT_TRUE(db.AddToGroup(7, "g").IsNotFound());
  EXPECT_TRUE(db.AssignRole(7, "r").IsNotFound());
  EXPECT_TRUE(db.SetAttribute(7, "k", "v").IsNotFound());
  EXPECT_TRUE(db.SupervisorOf(7).status().IsNotFound());
  EXPECT_TRUE(db.SubordinatesOf(7).empty());
  EXPECT_TRUE(db.ManagementChain(7).empty());
}

}  // namespace
}  // namespace ltam
