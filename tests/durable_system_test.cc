// Copyright 2026 The LTAM Authors.
// Crash-recovery tests for the durable runtime.

#include "storage/durable_system.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

class DurableSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ltam_durable_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SystemState FreshState() {
    SystemState state;
    state.graph = MakeFig4Graph().ValueOrDie();
    SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
    auto grant = [&state, alice](const char* room, Chronon es, Chronon ee,
                                 Chronon xs, Chronon xe, int64_t n) {
      state.auth_db.Add(
          LocationTemporalAuthorization::Make(
              TimeInterval(es, ee), TimeInterval(xs, xe),
              LocationAuthorization{alice,
                                    state.graph.Find(room).ValueOrDie()},
              n)
              .ValueOrDie());
    };
    grant("A", 0, 30, 0, 40, 3);
    grant("B", 0, 100, 0, 200, kUnlimitedEntries);
    return state;
  }

  std::string dir_;
};

TEST_F(DurableSystemTest, FreshOpenStartsFromInitialState) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                       DurableSystem::Open(dir_, FreshState()));
  EXPECT_EQ(sys->state().auth_db.size(), 2u);
  EXPECT_EQ(sys->wal_events(), 0u);
  ASSERT_OK_AND_ASSIGN(SubjectId alice, sys->state().profiles.Find("Alice"));
  ASSERT_OK_AND_ASSIGN(LocationId a, sys->state().graph.Find("A"));
  ASSERT_OK_AND_ASSIGN(Decision d, sys->RequestEntry(10, alice, a));
  EXPECT_TRUE(d.granted);
  EXPECT_EQ(sys->wal_events(), 1u);
}

TEST_F(DurableSystemTest, RecoveryReplaysLogTail) {
  SubjectId alice = 0;
  LocationId a = kInvalidLocation;
  LocationId b = kInvalidLocation;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    a = sys->state().graph.Find("A").ValueOrDie();
    b = sys->state().graph.Find("B").ValueOrDie();
    ASSERT_OK(sys->RequestEntry(10, alice, a).status());
    ASSERT_OK(sys->RequestEntry(20, alice, b).status());
    // "Crash": no checkpoint, the object goes away.
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                       DurableSystem::Open(dir_, FreshState()));
  // The movement history and ledger were rebuilt from the log.
  EXPECT_EQ(sys->state().movements.CurrentLocation(alice), b);
  EXPECT_EQ(sys->state().auth_db.record(0).entries_used, 1);
  EXPECT_EQ(sys->state().movements.history().size(), 2u);
}

TEST_F(DurableSystemTest, CheckpointTruncatesLog) {
  SubjectId alice = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    LocationId a = sys->state().graph.Find("A").ValueOrDie();
    ASSERT_OK(sys->RequestEntry(10, alice, a).status());
    ASSERT_OK(sys->Checkpoint());
    EXPECT_EQ(sys->wal_events(), 0u);
    LocationId b = sys->state().graph.Find("B").ValueOrDie();
    ASSERT_OK(sys->RequestEntry(20, alice, b).status());
    EXPECT_EQ(sys->wal_events(), 1u);
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                       DurableSystem::Open(dir_, FreshState()));
  // Snapshot (entry@10) + log tail (entry@20) both restored.
  EXPECT_EQ(sys->state().movements.history().size(), 2u);
  EXPECT_EQ(sys->state().auth_db.record(0).entries_used, 1);
  LocationId b = sys->state().graph.Find("B").ValueOrDie();
  EXPECT_EQ(sys->state().movements.CurrentLocation(alice), b);
}

TEST_F(DurableSystemTest, OverstayDetectionSurvivesRecovery) {
  SubjectId alice = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    LocationId a = sys->state().graph.Find("A").ValueOrDie();
    // Exit window for A is [0, 40].
    ASSERT_OK(sys->RequestEntry(10, alice, a).status());
    ASSERT_OK(sys->Checkpoint());  // Stay is open at checkpoint time.
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                       DurableSystem::Open(dir_, FreshState()));
  ASSERT_OK(sys->Tick(50));  // Past the exit window.
  bool overstay = false;
  for (const Alert& alert : sys->engine().alerts()) {
    if (alert.type == AlertType::kOverstay && alert.subject == alice) {
      overstay = true;
    }
  }
  EXPECT_TRUE(overstay)
      << "resumed stay lost its exit-window tracking across recovery";
}

TEST_F(DurableSystemTest, RepeatedRecoveryIsIdempotent) {
  SubjectId alice = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    LocationId a = sys->state().graph.Find("A").ValueOrDie();
    ASSERT_OK(sys->RequestEntry(10, alice, a).status());
  }
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    // Recovery replays the same log; opening without new events must not
    // multiply history (the log is only appended by live calls).
    EXPECT_EQ(sys->state().movements.history().size(), 1u);
    EXPECT_EQ(sys->state().auth_db.record(0).entries_used, 1);
  }
}

TEST_F(DurableSystemTest, TornTailIsTruncatedBeforeNewAppends) {
  SubjectId alice = 0;
  LocationId a = kInvalidLocation;
  LocationId b = kInvalidLocation;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    a = sys->state().graph.Find("A").ValueOrDie();
    b = sys->state().graph.Find("B").ValueOrDie();
    ASSERT_OK(sys->RequestEntry(10, alice, a).status());
    ASSERT_OK(sys->RequestEntry(20, alice, b).status());
  }
  // Simulate a crash mid-append: chop the final record's tail bytes.
  const std::string wal = dir_ + "/events.wal";
  uintmax_t size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 3);
  {
    // Recovery tolerates the torn record (replays event@10 only) and
    // must truncate it so this append starts on a fresh line...
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                         DurableSystem::Open(dir_, FreshState()));
    EXPECT_EQ(sys->state().movements.history().size(), 1u);
    ASSERT_OK(sys->RequestEntry(30, alice, b).status());
  }
  // ...otherwise this second recovery would hit a merged garbage record.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableSystem> sys,
                       DurableSystem::Open(dir_, FreshState()));
  EXPECT_EQ(sys->state().movements.history().size(), 2u);
  EXPECT_EQ(sys->state().movements.CurrentLocation(alice), b);
}

TEST_F(DurableSystemTest, OpenRejectsMissingDirectory) {
  EXPECT_TRUE(DurableSystem::Open("/nonexistent/ltam", FreshState())
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace ltam
