// Copyright 2026 The LTAM Authors.

#include "service/shutdown.h"

#include <csignal>

#include <atomic>

#include "util/logging.h"

namespace ltam {

namespace {

std::atomic<bool> g_shutdown_requested{false};

void HandleShutdownSignal(int /*signum*/) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // No SA_RESTART: blocking reads must wake up.
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void RequestShutdown(bool requested) {
  g_shutdown_requested.store(requested, std::memory_order_relaxed);
}

Status CheckpointBeforeExit(AccessRuntime* runtime) {
  if (runtime == nullptr || !runtime->Stats().durable) return Status::OK();
  Status checkpointed = runtime->Checkpoint();
  if (!checkpointed.ok()) {
    LTAM_LOG_ERROR << "shutdown checkpoint failed: "
                   << checkpointed.ToString();
  }
  return checkpointed;
}

}  // namespace ltam
