// Copyright 2026 The LTAM Authors.
// Tests for MultilevelLocationGraph construction and hierarchy queries
// (Definitions 1-2).

#include "graph/multilevel_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace ltam {
namespace {

TEST(GraphTest, RootExists) {
  MultilevelLocationGraph g("NTU");
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.location(g.root()).name, "NTU");
  EXPECT_TRUE(g.location(g.root()).IsComposite());
  EXPECT_EQ(*g.Find("NTU"), g.root());
}

TEST(GraphTest, AddLocations) {
  MultilevelLocationGraph g("NTU");
  ASSERT_OK_AND_ASSIGN(LocationId sce, g.AddComposite("SCE", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId go, g.AddPrimitive("SCE.GO", sce));
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.location(go).parent, sce);
  EXPECT_EQ(g.location(sce).parent, g.root());
  EXPECT_EQ(g.location(sce).children, std::vector<LocationId>{go});
  // By-name parent overloads.
  ASSERT_OK_AND_ASSIGN(LocationId cais, g.AddPrimitive("CAIS", "SCE"));
  EXPECT_EQ(g.location(cais).parent, sce);
}

TEST(GraphTest, NamesAreGloballyUnique) {
  MultilevelLocationGraph g("NTU");
  ASSERT_OK_AND_ASSIGN(LocationId sce, g.AddComposite("SCE", g.root()));
  (void)sce;
  EXPECT_TRUE(g.AddComposite("SCE", g.root()).status().IsAlreadyExists());
  EXPECT_TRUE(g.AddPrimitive("SCE", g.root()).status().IsAlreadyExists());
  EXPECT_TRUE(g.AddPrimitive("", g.root()).status().IsInvalidArgument());
}

TEST(GraphTest, PrimitiveCannotContainChildren) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId room, g.AddPrimitive("room", g.root()));
  EXPECT_TRUE(g.AddPrimitive("inner", room).status().IsInvalidArgument());
}

TEST(GraphTest, EdgesOnlyBetweenSiblings) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId b1, g.AddComposite("B1", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId b2, g.AddComposite("B2", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId r1, g.AddPrimitive("R1", b1));
  ASSERT_OK_AND_ASSIGN(LocationId r2, g.AddPrimitive("R2", b2));
  EXPECT_TRUE(g.AddEdge(r1, r2).IsInvalidArgument());
  EXPECT_OK(g.AddEdge(b1, b2));
  EXPECT_TRUE(g.AddEdge(b1, b2).IsAlreadyExists());
  EXPECT_TRUE(g.AddEdge(b1, b1).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(b1, 999).IsNotFound());
}

TEST(GraphTest, FindUnknownName) {
  MultilevelLocationGraph g;
  EXPECT_TRUE(g.Find("nowhere").status().IsNotFound());
}

TEST(GraphTest, PrimitivesAndComposites) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId b, g.AddComposite("B", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId r1, g.AddPrimitive("R1", b));
  ASSERT_OK_AND_ASSIGN(LocationId r2, g.AddPrimitive("R2", b));
  EXPECT_EQ(g.Primitives(), (std::vector<LocationId>{r1, r2}));
  EXPECT_EQ(g.Composites(), (std::vector<LocationId>{g.root(), b}));
}

TEST(GraphTest, IsPartOfIsTransitive) {
  MultilevelLocationGraph g("NTU");
  ASSERT_OK_AND_ASSIGN(LocationId sce, g.AddComposite("SCE", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId wing, g.AddComposite("Wing", sce));
  ASSERT_OK_AND_ASSIGN(LocationId room, g.AddPrimitive("Room", wing));
  EXPECT_TRUE(g.IsPartOf(room, wing));
  EXPECT_TRUE(g.IsPartOf(room, sce));
  EXPECT_TRUE(g.IsPartOf(room, g.root()));
  EXPECT_TRUE(g.IsPartOf(wing, sce));
  EXPECT_FALSE(g.IsPartOf(sce, wing));
  EXPECT_FALSE(g.IsPartOf(room, room));
  EXPECT_EQ(g.Ancestors(room),
            (std::vector<LocationId>{wing, sce, g.root()}));
}

TEST(GraphTest, EntryDesignationAndExpansion) {
  MultilevelLocationGraph g("NTU");
  ASSERT_OK_AND_ASSIGN(LocationId sce, g.AddComposite("SCE", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId go, g.AddPrimitive("GO", sce));
  ASSERT_OK_AND_ASSIGN(LocationId lab, g.AddPrimitive("Lab", sce));
  ASSERT_OK(g.AddEdge(go, lab));
  ASSERT_OK(g.SetEntry(go));
  ASSERT_OK(g.SetEntry(sce));  // SCE is an entry of NTU's graph.
  EXPECT_EQ(g.EntryLocations(sce), std::vector<LocationId>{go});
  EXPECT_EQ(g.EntryLocations(g.root()), std::vector<LocationId>{sce});
  // Entry primitives expand recursively: the doors of NTU are SCE's doors.
  EXPECT_EQ(g.EntryPrimitives(g.root()), std::vector<LocationId>{go});
  EXPECT_EQ(g.EntryPrimitives(go), std::vector<LocationId>{go});
  // Clearing works.
  ASSERT_OK(g.SetEntry(go, false));
  EXPECT_TRUE(g.EntryLocations(sce).empty());
  // The root itself cannot be an entry.
  EXPECT_TRUE(g.SetEntry(g.root()).IsInvalidArgument());
}

TEST(GraphTest, PrimitivesWithin) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId b1, g.AddComposite("B1", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId r1, g.AddPrimitive("R1", b1));
  ASSERT_OK_AND_ASSIGN(LocationId r2, g.AddPrimitive("R2", b1));
  ASSERT_OK_AND_ASSIGN(LocationId r3, g.AddPrimitive("R3", g.root()));
  std::vector<LocationId> within_b1 = g.PrimitivesWithin(b1);
  std::sort(within_b1.begin(), within_b1.end());
  EXPECT_EQ(within_b1, (std::vector<LocationId>{r1, r2}));
  std::vector<LocationId> all = g.PrimitivesWithin(g.root());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<LocationId>{r1, r2, r3}));
  EXPECT_EQ(g.PrimitivesWithin(r3), std::vector<LocationId>{r3});
}

TEST(GraphTest, EffectiveNeighborsExpandComposites) {
  // Two buildings joined at the campus level: the doors become adjacent.
  MultilevelLocationGraph g("Campus");
  ASSERT_OK_AND_ASSIGN(LocationId b1, g.AddComposite("B1", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId b2, g.AddComposite("B2", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId d1, g.AddPrimitive("D1", b1));
  ASSERT_OK_AND_ASSIGN(LocationId r1, g.AddPrimitive("R1", b1));
  ASSERT_OK_AND_ASSIGN(LocationId d2, g.AddPrimitive("D2", b2));
  ASSERT_OK(g.AddEdge(d1, r1));
  ASSERT_OK(g.SetEntry(d1));
  ASSERT_OK(g.SetEntry(d2));
  ASSERT_OK(g.AddEdge(b1, b2));
  const std::vector<LocationId>& n1 = g.EffectiveNeighbors(d1);
  EXPECT_NE(std::find(n1.begin(), n1.end(), r1), n1.end());
  EXPECT_NE(std::find(n1.begin(), n1.end(), d2), n1.end());
  EXPECT_EQ(g.EffectiveNeighbors(d2), std::vector<LocationId>{d1});
  // Non-entry rooms do not become cross-building adjacent.
  EXPECT_EQ(g.EffectiveNeighbors(r1), std::vector<LocationId>{d1});
}

TEST(GraphTest, EffectiveNeighborsCacheInvalidation) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId a, g.AddPrimitive("a", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId b, g.AddPrimitive("b", g.root()));
  EXPECT_TRUE(g.EffectiveNeighbors(a).empty());
  ASSERT_OK(g.AddEdge(a, b));
  EXPECT_EQ(g.EffectiveNeighbors(a), std::vector<LocationId>{b});
}

TEST(GraphTest, MaxDegree) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId hub, g.AddPrimitive("hub", g.root()));
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(LocationId spoke,
                         g.AddPrimitive("s" + std::to_string(i), g.root()));
    ASSERT_OK(g.AddEdge(hub, spoke));
  }
  EXPECT_EQ(g.MaxDegree(), 5u);
}

TEST(GraphTest, BoundaryAndDescription) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId r, g.AddPrimitive("R", g.root()));
  ASSERT_OK(g.SetBoundary(r, Polygon::Rect(0, 0, 5, 5)));
  ASSERT_OK(g.SetDescription(r, "server room"));
  EXPECT_TRUE(g.location(r).boundary.has_value());
  EXPECT_EQ(g.location(r).description, "server room");
  EXPECT_TRUE(g.SetBoundary(999, Polygon::Rect(0, 0, 1, 1)).IsNotFound());
}

TEST(GraphTest, ToStringShowsTree) {
  MultilevelLocationGraph g("NTU");
  ASSERT_OK_AND_ASSIGN(LocationId sce, g.AddComposite("SCE", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId go, g.AddPrimitive("GO", sce));
  ASSERT_OK(g.SetEntry(go));
  std::string dump = g.ToString();
  EXPECT_NE(dump.find("NTU (composite)"), std::string::npos);
  EXPECT_NE(dump.find("SCE (composite)"), std::string::npos);
  EXPECT_NE(dump.find("GO (primitive, entry)"), std::string::npos);
}

}  // namespace
}  // namespace ltam
