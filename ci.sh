#!/usr/bin/env bash
# Copyright 2026 The LTAM Authors.
#
# CI entry point. Usage:
#   ./ci.sh            # tier1 + asan + tsan + examples + service + bench
#   ./ci.sh tier1      # plain build + full ctest suite (the tier-1 gate)
#   ./ci.sh asan       # AddressSanitizer + UBSan build, full ctest suite
#   ./ci.sh tsan       # ThreadSanitizer build, concurrency-relevant tests
#   ./ci.sh examples   # build + run every example binary (facade surface)
#   ./ci.sh service    # ltam_serve round-trip + concurrent smoke + shutdown
#   ./ci.sh bench      # facade vs loopback-server throughput (io-thread
#                      # matrix) -> BENCH_pr6.json,
#                      # durable sync vs pipelined vs interval -> BENCH_pr5.json
#
# Every future PR is expected to pass `./ci.sh` locally; the tier-1 gate
# is exactly the ROADMAP verify command. For a quick pre-commit signal,
# `ctest --test-dir build -L fast` skips the slow crash-matrix suites.

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

tier1() {
  echo "=== tier1: build + full test suite ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS"
}

asan() {
  echo "=== asan: address+undefined sanitizers, full test suite ==="
  cmake -B build-asan -S . -DLTAM_SANITIZE=address,undefined \
    -DLTAM_BUILD_BENCHMARKS=OFF -DLTAM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j"$JOBS"
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"
}

tsan() {
  echo "=== tsan: thread sanitizer, concurrency tests ==="
  cmake -B build-tsan -S . -DLTAM_SANITIZE=thread \
    -DLTAM_BUILD_BENCHMARKS=OFF -DLTAM_BUILD_EXAMPLES=OFF
  # The sharded pipeline, the caches it leans on, the durable runtime
  # (worker-thread WAL appends + parallel recovery replay), the facade
  # that drives them, and the TCP server around it all (I/O thread +
  # ingest coalescer + read-worker pool + client threads) are the
  # concurrent surface; engine/movement tests ride along as controls.
  local targets=(sharded_engine_test auth_cache_test auth_database_test
                 engine_test movement_db_test durable_sharded_test
                 durable_equivalence_test access_runtime_test
                 movement_view_test service_loopback_test
                 log_pipeline_test)
  cmake --build build-tsan -j"$JOBS" --target "${targets[@]}"
  for t in "${targets[@]}"; do
    "./build-tsan/tests/$t"
  done
}

examples() {
  echo "=== examples: build + run every example binary ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target \
    quickstart ltam_shell ntu_campus hospital_tracking building_security
  ./build/examples/quickstart > /dev/null
  ./build/examples/ntu_campus > /dev/null
  ./build/examples/hospital_tracking > /dev/null
  ./build/examples/building_security > /dev/null
  printf 'WHEN CAN Alice ACCESS CAIS\nquit\n' \
    | ./build/examples/ltam_shell > /dev/null
  echo "examples: all ran clean"
}

service() {
  echo "=== service: ltam_serve round-trip + concurrent smoke + shutdown ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target \
    ltam_serve ltam_shell service_loopback_test service_protocol_fuzz_test
  # Concurrent-client smoke: >=4 connections, coalesced ingest, byte-
  # identical to the direct facade (in-memory + durable), plus the
  # protocol fuzz suite.
  ./build/tests/service_protocol_fuzz_test > /dev/null
  ./build/tests/service_loopback_test > /dev/null
  # End-to-end: a real server process, a real client round-trip through
  # the shell's remote mode, and a clean SIGTERM shutdown.
  local port=$((20000 + RANDOM % 20000))
  local log
  log="$(mktemp)"
  ./build/examples/ltam_serve --port="$port" --io-threads=2 > "$log" 2>&1 &
  local server_pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening" "$log" && break
    sleep 0.1
  done
  grep -q "2 io-threads" "$log" \
    || { echo "service: banner missing the io-thread count" >&2; kill "$server_pid"; exit 1; }
  # Capture the shell output (no grep -q on the live pipe: the early
  # close would SIGPIPE the shell under pipefail) and demand the
  # remote-mode banner — a failed connect falls back to local mode,
  # whose stats would satisfy a naive check.
  local shell_out
  shell_out="$(mktemp)"
  printf 'connect 127.0.0.1:%d\nWHEN CAN Alice ACCESS CAIS\nstats\nquit\n' "$port" \
    | ./build/examples/ltam_shell > "$shell_out" 2>&1
  grep -q "connected to 127.0.0.1:$port" "$shell_out" \
    || { echo "service: shell never entered remote mode" >&2; kill "$server_pid"; exit 1; }
  grep -q 'events-applied' "$shell_out" \
    || { echo "service: remote stats round-trip failed" >&2; kill "$server_pid"; exit 1; }
  rm -f "$shell_out"
  kill -TERM "$server_pid"
  wait "$server_pid" \
    || { echo "service: server exited uncleanly" >&2; exit 1; }
  grep -q "bye" "$log" \
    || { echo "service: server skipped the shutdown path" >&2; exit 1; }
  rm -f "$log"
  echo "service: round-trip + smoke + clean shutdown passed"
}

bench() {
  echo "=== bench: loopback overhead -> BENCH_pr6.json, durability modes -> BENCH_pr5.json ==="
  cmake -B build -S .
  if ! cmake --build build -j"$JOBS" --target bench_service bench_access_engine; then
    echo "bench: google-benchmark not available; skipping" >&2
    return 0
  fi
  # BM_FacadeBatch is the direct AccessRuntime baseline on the service
  # workload; BM_ServiceLoopbackBatch drives the identical per-stream
  # batches through a loopback ltam-serve with 4 pipelined connections
  # at io_threads={1,4} — the gap is the network + coalescing overhead,
  # and frames_per_merge reports how much the coalescer amortizes. The
  # filter is deliberately unanchored: the io-thread matrix suffixes
  # benchmark names with their args ("BM_ServiceLoopbackBatch/1/4"), so
  # a '$'-anchored filter would silently drop every loopback row. On
  # 1-core CI containers the io_threads=4 rows measure scheduling
  # overhead, not parallelism — compare them only on multi-core hosts.
  ./build/bench/bench_service \
    --benchmark_filter='FacadeBatch|ServiceLoopbackBatch/' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_pr6.json --benchmark_out_format=json
  echo "bench: wrote $(pwd)/BENCH_pr6.json"
  # PR 5: the durable write path's three sync modes on the identical
  # stream (every iteration ends at the same durability barrier, so the
  # comparison is honest), plus the durable loopback server in batch vs
  # pipelined mode. Pipelined throughput must be >= sync mode.
  # Longer min time than the service benches: the durable modes differ
  # by tens of percent with ~10% run-to-run noise at 1-2 iterations.
  ./build/bench/bench_access_engine \
    --benchmark_filter='BM_DurableBatch' \
    --benchmark_min_time=0.2 \
    --benchmark_out=BENCH_pr5_durable.json --benchmark_out_format=json
  ./build/bench/bench_service \
    --benchmark_filter='ServiceLoopbackBatch(Durable|Pipelined)' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_pr5_service.json --benchmark_out_format=json
  python3 - <<'EOF'
import json
out = None
for path in ("BENCH_pr5_durable.json", "BENCH_pr5_service.json"):
    with open(path) as f:
        part = json.load(f)
    if out is None:
        out = part
    else:
        out["benchmarks"].extend(part["benchmarks"])
with open("BENCH_pr5.json", "w") as f:
    json.dump(out, f, indent=1)
EOF
  rm -f BENCH_pr5_durable.json BENCH_pr5_service.json
  echo "bench: wrote $(pwd)/BENCH_pr5.json"
}

case "${1:-all}" in
  tier1) tier1 ;;
  asan) asan ;;
  tsan) tsan ;;
  examples) examples ;;
  service) service ;;
  bench) bench ;;
  all)
    tier1
    asan
    tsan
    examples
    service
    bench
    ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|examples|service|bench|all]" >&2
    exit 2
    ;;
esac

echo "ci.sh: all requested jobs passed"
