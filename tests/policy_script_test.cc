// Copyright 2026 The LTAM Authors.
// Tests for the policy-script front end.

#include "storage/policy_script.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/rules/rule_engine.h"
#include "test_util.h"

namespace ltam {
namespace {

constexpr const char kPolicy[] = R"(
# A small campus.
SITE NTU
COMPOSITE SCE IN NTU
ROOM SCE.GO IN SCE
ROOM CAIS IN SCE
EDGE SCE.GO CAIS
ENTRY SCE.GO
ENTRY SCE
BOUNDARY SCE.GO 0 0 10 8
DESCRIBE CAIS research centre

SUBJECT Alice
SUBJECT Bob
SUPERVISOR Alice Bob
GROUP Alice cais-lab
ROLE Bob professor
ATTR Alice office N4-02c

AUTH Alice CAIS ENTER [5,20] EXIT [15,50] TIMES 2
AUTH Alice SCE.GO ENTER [0,30]
RULE FROM 7 BASE 0 SUBJECT Supervisor_Of COUNT min(n,2) LABEL r1
)";

TEST(PolicyScriptTest, ParsesFullExample) {
  ASSERT_OK_AND_ASSIGN(SystemState state, ParsePolicyScript(kPolicy));
  EXPECT_OK(state.graph.Validate());
  EXPECT_EQ(state.graph.size(), 4u);
  ASSERT_OK_AND_ASSIGN(LocationId go, state.graph.Find("SCE.GO"));
  EXPECT_TRUE(state.graph.location(go).is_entry);
  EXPECT_TRUE(state.graph.location(go).boundary.has_value());
  ASSERT_OK_AND_ASSIGN(LocationId cais, state.graph.Find("CAIS"));
  EXPECT_EQ(state.graph.location(cais).description, "research centre");

  ASSERT_OK_AND_ASSIGN(SubjectId alice, state.profiles.Find("Alice"));
  ASSERT_OK_AND_ASSIGN(SubjectId bob, state.profiles.Find("Bob"));
  EXPECT_EQ(*state.profiles.SupervisorOf(alice), bob);
  EXPECT_TRUE(state.profiles.IsInGroup(alice, "cais-lab"));
  EXPECT_TRUE(state.profiles.HasRole(bob, "professor"));
  EXPECT_EQ(*state.profiles.GetAttribute(alice, "office"), "N4-02c");

  ASSERT_EQ(state.auth_db.size(), 2u);
  const LocationTemporalAuthorization& a0 = state.auth_db.record(0).auth;
  EXPECT_EQ(a0.entry_duration(), TimeInterval(5, 20));
  EXPECT_EQ(a0.exit_duration(), TimeInterval(15, 50));
  EXPECT_EQ(a0.max_entries(), 2);
  // Default exit ([tis, inf]) and unlimited entries.
  const LocationTemporalAuthorization& a1 = state.auth_db.record(1).auth;
  EXPECT_EQ(a1.exit_duration(), TimeInterval(0, kChrononMax));
  EXPECT_EQ(a1.max_entries(), kUnlimitedEntries);

  ASSERT_EQ(state.rules.size(), 1u);
  EXPECT_EQ(state.rules[0].valid_from, 7);
  EXPECT_EQ(state.rules[0].base, 0u);
  EXPECT_EQ(state.rules[0].label, "r1");
  EXPECT_EQ(state.rules[0].op_subject->ToString(), "Supervisor_Of");
  EXPECT_EQ(state.rules[0].exp_n->text(), "min(n,2)");
}

TEST(PolicyScriptTest, ScriptedRulesDeriveEndToEnd) {
  ASSERT_OK_AND_ASSIGN(SystemState state, ParsePolicyScript(kPolicy));
  RuleEngine rules(&state.auth_db, &state.profiles, &state.graph);
  for (AuthorizationRule& rule : state.rules) {
    ASSERT_OK(rules.AddRule(rule).status());
  }
  ASSERT_OK_AND_ASSIGN(DerivationReport report, rules.DeriveAll());
  EXPECT_EQ(report.derived, 1u);
  ASSERT_OK_AND_ASSIGN(SubjectId bob, state.profiles.Find("Bob"));
  ASSERT_OK_AND_ASSIGN(LocationId cais, state.graph.Find("CAIS"));
  EXPECT_TRUE(state.auth_db.CheckAccess(10, bob, cais).granted);
}

TEST(PolicyScriptTest, OperatorSpecsWithSpacesTokenize) {
  std::string policy = R"(
SITE G
ROOM A IN G
ROOM B IN G
EDGE A B
ENTRY A
SUBJECT S
AUTH S B ENTER [5, 20] EXIT [15, 50]
RULE FROM 0 BASE 0 ENTRY INTERSECTION([10, 30]) LOCATION all_route_from(A)
)";
  ASSERT_OK_AND_ASSIGN(SystemState state, ParsePolicyScript(policy));
  ASSERT_EQ(state.rules.size(), 1u);
  EXPECT_EQ(state.rules[0].op_entry->ToString(), "INTERSECTION([10, 30])");
  EXPECT_EQ(state.rules[0].op_location->ToString(), "all_route_from(A)");
}

TEST(PolicyScriptTest, ErrorsCarryLineNumbers) {
  Status st = ParsePolicyScript("SITE G\nROOM A IN Nowhere\n").status();
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);

  st = ParsePolicyScript("ROOM A IN G\n").status();
  EXPECT_NE(st.message().find("must start with SITE"), std::string::npos);

  st = ParsePolicyScript("SITE G\nTELEPORT A B\n").status();
  EXPECT_NE(st.message().find("unknown directive"), std::string::npos);

  st = ParsePolicyScript("SITE G\nROOM A IN G\nENTRY A\nAUTH X A ENTER "
                         "[0,1]\n")
           .status();
  EXPECT_NE(st.message().find("unknown subject"), std::string::npos);

  // RULE BASE out of range.
  st = ParsePolicyScript(
           "SITE G\nROOM A IN G\nENTRY A\nSUBJECT S\nRULE FROM 0 BASE 3\n")
           .status();
  EXPECT_NE(st.message().find("BASE"), std::string::npos);
}

TEST(PolicyScriptTest, ValidationRunsAtEnd) {
  // Two rooms without an edge: structurally invalid.
  Status st = ParsePolicyScript(
                  "SITE G\nROOM A IN G\nROOM B IN G\nENTRY A\n")
                  .status();
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST(PolicyScriptTest, AuthViolatingDefinition4Rejected) {
  Status st =
      ParsePolicyScript(
          "SITE G\nROOM A IN G\nENTRY A\nSUBJECT S\n"
          "AUTH S A ENTER [10,20] EXIT [0,5]\n")
          .status();
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line 5"), std::string::npos);
}

TEST(PolicyScriptTest, LoadFromFile) {
  std::string path = ::testing::TempDir() + "/ltam_policy_test.ltam";
  {
    std::ofstream out(path);
    out << kPolicy;
  }
  ASSERT_OK_AND_ASSIGN(SystemState state, LoadPolicyScript(path));
  EXPECT_EQ(state.auth_db.size(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(LoadPolicyScript("/nonexistent/x.ltam").status().IsIOError());
}

}  // namespace
}  // namespace ltam
