// Copyright 2026 The LTAM Authors.
// Write-ahead log for the LTAM databases.
//
// Mutations (authorization added/revoked, movement recorded, ...) are
// appended as codec records before being applied; on restart the log is
// replayed to rebuild state newer than the last snapshot.

#ifndef LTAM_STORAGE_WAL_H_
#define LTAM_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "storage/codec.h"
#include "util/result.h"

namespace ltam {

/// Append-only log writer.
class WalWriter {
 public:
  /// Opens (creating or appending) the log at `path`.
  static Result<WalWriter> Open(const std::string& path);

  /// Creates (truncating any leftover) the log at `path`. Used when a
  /// checkpoint rotates to a fresh epoch: an orphaned file from a crashed
  /// earlier attempt at the same epoch must not leak stale records.
  static Result<WalWriter> Create(const std::string& path);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record (one line) and flushes to the OS.
  Status Append(const Record& record);

  /// Appends an already-encoded line (must end in '\n') and flushes to
  /// the OS. The pipelined log encodes on the worker thread and hands
  /// finished lines to its flusher, so the writer must not re-encode.
  Status AppendEncoded(const std::string& line);

  /// fsyncs the file (durability barrier).
  Status Sync();

  /// Records appended through this writer.
  size_t appended() const { return appended_; }

 private:
  explicit WalWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_ = nullptr;
  size_t appended_ = 0;
};

/// Replays a log file, invoking `apply` per record in order. Stops with
/// an error on the first malformed line (a torn final line — no trailing
/// newline — is tolerated and ignored, as an in-flight append crash would
/// leave one).
Status ReplayWal(const std::string& path,
                 const std::function<Status(const Record&)>& apply);

/// Truncates a torn final record (bytes after the last newline, left by
/// a crash mid-append) so subsequent appends start on a fresh line —
/// otherwise the next append would merge with the torn bytes into one
/// garbage record and poison the following recovery. Returns the number
/// of bytes dropped (0 when the log ends cleanly).
Result<size_t> TruncateTornWalTail(const std::string& path);

/// True iff `path` exists (stat succeeds). The one existence probe every
/// durable runtime (and the facade's directory sniffing) shares, so
/// their notions of "committed state present" can never drift apart.
bool FileExists(const std::string& path);

/// fsyncs an existing file by path (durability barrier for snapshots and
/// manifests written through buffered streams).
Status SyncFile(const std::string& path);

/// fsyncs a directory, making completed renames/creates inside it
/// durable.
Status SyncDir(const std::string& path);

}  // namespace ltam

#endif  // LTAM_STORAGE_WAL_H_
