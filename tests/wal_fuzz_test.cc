// Copyright 2026 The LTAM Authors.
// Deterministic fuzzing of the durability read paths: corrupted, torn,
// and garbage WAL / manifest / movement-segment bytes must produce
// Status errors (or benign replays), never crashes, hangs, or undefined
// behavior. This is the harness that shook out the original decode gaps
// (id wrap-around on negative fields; observations of nonexistent
// locations poisoning later adjacency checks).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/cold_segment.h"
#include "sim/graph_gen.h"
#include "storage/cold_codec.h"
#include "storage/event_log.h"
#include "storage/manifest.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.9)) {
      out += static_cast<char>(' ' + rng->Uniform(95));
    } else {
      out += static_cast<char>(rng->Uniform(32));
    }
  }
  return out;
}

std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = 1 + static_cast<int>(rng->Uniform(10));
  for (int i = 0; i < edits && !out.empty(); ++i) {
    size_t pos = rng->Uniform(out.size());
    switch (rng->Uniform(3)) {
      case 0:
        out[pos] = static_cast<char>(' ' + rng->Uniform(95));
        break;
      case 1:
        out.erase(pos, 1);
        break;
      case 2:
        out.insert(pos, 1, static_cast<char>(' ' + rng->Uniform(95)));
        break;
    }
  }
  return out;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// A small world to replay corrupted logs into.
struct ReplayWorld {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  MovementDatabase movements;
  std::unique_ptr<AccessControlEngine> engine;

  ReplayWorld() {
    graph = MakeGridGraph(3, 3).ValueOrDie();
    for (int i = 0; i < 6; ++i) {
      profiles.AddSubject("u" + std::to_string(i)).ValueOrDie();
    }
    for (SubjectId s = 0; s < 6; ++s) {
      for (LocationId l : graph.Primitives()) {
        auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(0, 500), TimeInterval(0, 800),
                        LocationAuthorization{s, l}, 5)
                        .ValueOrDie());
      }
    }
    engine = std::make_unique<AccessControlEngine>(&graph, &auth_db,
                                                   &movements, &profiles);
  }
};

/// A plausible WAL: real encoded events, including ids that are valid,
/// out-of-graph, and boundary-sized.
std::string ValidWalBytes(Rng* rng, size_t events) {
  std::string out;
  Chronon t = 0;
  for (size_t i = 0; i < events; ++i) {
    t += 1 + static_cast<Chronon>(rng->Uniform(4));
    SubjectId s = static_cast<SubjectId>(rng->Uniform(8));
    LocationId l = static_cast<LocationId>(rng->Uniform(16));
    Record rec;
    switch (rng->Uniform(4)) {
      case 0:
        rec = EncodeEventRecord(AccessEvent::Entry(t, s, l));
        break;
      case 1:
        rec = EncodeEventRecord(AccessEvent::Exit(t, s));
        break;
      case 2:
        rec = EncodeEventRecord(AccessEvent::Observe(t, s, l));
        break;
      default:
        rec = EncodeTickRecord(t);
        break;
    }
    out += EncodeRecord(rec);
    out += '\n';
  }
  return out;
}

class WalFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::string TempPath(const char* tag) {
    return ::testing::TempDir() + "/ltam_walfuzz_" + tag + "_" +
           std::to_string(GetParam());
  }
};

/// Replay of mutated / truncated / garbage WAL bytes into a live engine:
/// must return (ok or error) and never crash — even when a corrupted
/// record parses into an event naming locations the layout lacks, and
/// even when later events then run adjacency checks over that state.
TEST_P(WalFuzzTest, ReplayWalNeverCrashes) {
  Rng rng(GetParam());
  const std::string path = TempPath("wal");
  const std::string valid = ValidWalBytes(&rng, 60);

  for (int i = 0; i < 120; ++i) {
    std::string corrupted;
    switch (i % 3) {
      case 0:
        corrupted = Mutate(valid, &rng);
        break;
      case 1:  // Torn write: truncate at an arbitrary byte.
        corrupted = valid.substr(0, rng.Uniform(valid.size() + 1));
        break;
      default:
        corrupted = RandomBytes(&rng, 600);
        break;
    }
    WriteFile(path, corrupted);
    ReplayWorld world;
    Status st = ReplayWal(path, [&](const Record& rec) {
      return ApplyLoggedRecord(world.engine.get(), rec);
    });
    (void)st;  // ok or error; never a crash.
    // Whatever replayed, the engine must still be usable: every recorded
    // current location must survive an adjacency-checked request.
    for (SubjectId s = 0; s < 6; ++s) {
      Decision d = world.engine->RequestEntry(
          10000, s, world.graph.Primitives()[0]);
      (void)d;
    }
  }
  std::remove(path.c_str());
}

/// Decoder contract: malformed records are errors, not wrap-arounds.
TEST(WalFuzzDecodeTest, DecodeEventRecordRejectsMalformedRecords) {
  // Wrong field counts.
  EXPECT_FALSE(DecodeEventRecord({"ev-entry", {"1", "2"}}).ok());
  EXPECT_FALSE(DecodeEventRecord({"ev-entry", {"1", "2", "3", "4"}}).ok());
  EXPECT_FALSE(DecodeEventRecord({"ev-exit", {"1"}}).ok());
  EXPECT_FALSE(DecodeEventRecord({"ev-tick", {}}).ok());
  // Non-numeric fields.
  EXPECT_FALSE(DecodeEventRecord({"ev-entry", {"x", "2", "3"}}).ok());
  EXPECT_FALSE(DecodeEventRecord({"ev-obs", {"1", "", "3"}}).ok());
  // Ids outside uint32 range must NOT wrap into valid-looking ids.
  EXPECT_FALSE(DecodeEventRecord({"ev-entry", {"1", "-2", "3"}}).ok());
  EXPECT_FALSE(
      DecodeEventRecord({"ev-entry", {"1", "4294967296", "3"}}).ok());
  EXPECT_FALSE(DecodeEventRecord({"ev-obs", {"1", "2", "-1"}}).ok());
  // Integer overflow is an error, not UB.
  EXPECT_FALSE(
      DecodeEventRecord({"ev-tick", {"999999999999999999999999"}}).ok());
  // Unknown type tags.
  EXPECT_FALSE(DecodeEventRecord({"ev-unknown", {"1"}}).ok());
  // And the happy path still round-trips.
  ASSERT_OK_AND_ASSIGN(LoggedEvent entry,
                       DecodeEventRecord(EncodeEventRecord(
                           AccessEvent::Entry(7, 3, 9))));
  EXPECT_FALSE(entry.is_tick);
  EXPECT_EQ(entry.event.time, 7);
  EXPECT_EQ(entry.event.subject, 3u);
  EXPECT_EQ(entry.event.location, 9u);
  ASSERT_OK_AND_ASSIGN(LoggedEvent tick,
                       DecodeEventRecord(EncodeTickRecord(42)));
  EXPECT_TRUE(tick.is_tick);
  EXPECT_EQ(tick.tick_time, 42);
}

/// Manifest parsing: mutations, truncations, and garbage must error or
/// produce a structurally valid manifest — never crash, never accept a
/// cut that escapes the directory or misses segments.
TEST_P(WalFuzzTest, ManifestParserNeverCrashes) {
  const std::string path = TempPath("manifest");
  ShardManifest valid;
  valid.epoch = 3;
  valid.num_shards = 4;
  valid.base_snapshot = "base-3.snap";
  for (uint32_t k = 0; k < 4; ++k) {
    ShardManifest::ShardFiles files;
    files.snapshot = "shard-" + std::to_string(k) + "-3.snap";
    // Multi-segment lists (rotation committed extra segments) are part
    // of the fuzzed surface.
    files.wals = {"events-" + std::to_string(k) + "-3.wal",
                  "events-" + std::to_string(k) + "-3-1.wal"};
    // So are cold-tier records (sealed segment lists + dropped counts).
    if (k % 2 == 0) {
      files.cold = {"cold-" + std::to_string(k) + "-0.seg",
                    "cold-" + std::to_string(k) + "-1.seg"};
      files.dropped_events = 17 * (k + 1);
    }
    valid.shards.push_back(std::move(files));
  }
  ASSERT_OK(SaveManifest(valid, path));
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(contents.empty());

  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string corrupted;
    switch (i % 3) {
      case 0:
        corrupted = Mutate(contents, &rng);
        break;
      case 1:
        corrupted = contents.substr(0, rng.Uniform(contents.size() + 1));
        break;
      default:
        corrupted = RandomBytes(&rng, 400);
        break;
    }
    WriteFile(path, corrupted);
    Result<ShardManifest> m = LoadManifest(path);
    if (m.ok()) {
      // Structural invariants hold for anything the parser accepts.
      EXPECT_GE(m->num_shards, 1u);
      EXPECT_EQ(m->shards.size(), m->num_shards);
      EXPECT_EQ(m->base_snapshot.find('/'), std::string::npos);
      for (const ShardManifest::ShardFiles& files : m->shards) {
        EXPECT_FALSE(files.snapshot.empty());
        EXPECT_FALSE(files.wals.empty());
        EXPECT_EQ(files.snapshot.find('/'), std::string::npos);
        for (const std::string& wal : files.wals) {
          EXPECT_FALSE(wal.empty());
          EXPECT_EQ(wal.find('/'), std::string::npos);
        }
        for (const std::string& seg : files.cold) {
          EXPECT_FALSE(seg.empty());
          EXPECT_EQ(seg.find('/'), std::string::npos);
        }
      }
    }
  }
  std::remove(path.c_str());
}

/// Targeted manifest rejections: the commit record is load-bearing.
TEST(ManifestTest, RejectsTornAndMalformedManifests) {
  const std::string path = ::testing::TempDir() + "/ltam_manifest_cases";
  auto load = [&path](const std::string& text) {
    WriteFile(path, text);
    return LoadManifest(path);
  };
  // No commit record (torn write).
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\tb.snap\n"
                    "shard\t0\ts.snap\tw.wal\n")
                   .ok());
  // Commit count mismatch.
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\tb.snap\n"
                    "shard\t0\ts.snap\tw.wal\ncommit\t7\n")
                   .ok());
  // Records after commit.
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\tb.snap\n"
                    "shard\t0\ts.snap\tw.wal\ncommit\t3\n"
                    "shard\t0\ts.snap\tw.wal\n")
                   .ok());
  // Missing shard entry.
  EXPECT_FALSE(load("manifest\t1\t0\t2\nbase\tb.snap\n"
                    "shard\t0\ts.snap\tw.wal\ncommit\t3\n")
                   .ok());
  // Duplicate shard entry.
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\tb.snap\n"
                    "shard\t0\ts.snap\tw.wal\nshard\t0\ts.snap\tw.wal\n"
                    "commit\t4\n")
                   .ok());
  // Path-escaping file names.
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\t../../etc/passwd\n"
                    "shard\t0\ts.snap\tw.wal\ncommit\t3\n")
                   .ok());
  // Absurd shard counts must not drive allocation.
  EXPECT_FALSE(load("manifest\t1\t0\t999999999\nbase\tb.snap\ncommit\t2\n")
                   .ok());
  // A shard record needs at least one WAL segment.
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\tb.snap\n"
                    "shard\t0\ts.snap\ncommit\t3\n")
                   .ok());
  // Rotated segment names must obey the plain-file-name rule too.
  EXPECT_FALSE(load("manifest\t1\t0\t1\nbase\tb.snap\n"
                    "shard\t0\ts.snap\tw.wal\t../w-1.wal\ncommit\t3\n")
                   .ok());
  // The well-formed equivalent loads.
  ASSERT_OK_AND_ASSIGN(ShardManifest m,
                       load("manifest\t1\t5\t1\nbase\tb.snap\n"
                            "shard\t0\ts.snap\tw.wal\ncommit\t3\n"));
  EXPECT_EQ(m.epoch, 5u);
  EXPECT_EQ(m.num_shards, 1u);
  EXPECT_EQ(m.base_snapshot, "b.snap");
  ASSERT_EQ(m.shards[0].wals.size(), 1u);
  // Rotated-segment lists load in committed order.
  ASSERT_OK_AND_ASSIGN(
      ShardManifest rotated,
      load("manifest\t1\t5\t1\nbase\tb.snap\n"
           "shard\t0\ts.snap\tw.wal\tw-1.wal\tw-2.wal\ncommit\t3\n"));
  ASSERT_EQ(rotated.shards[0].wals.size(), 3u);
  EXPECT_EQ(rotated.shards[0].wals[0], "w.wal");
  EXPECT_EQ(rotated.shards[0].wals[2], "w-2.wal");
  // And survive a save/load round trip unchanged.
  ASSERT_OK(SaveManifest(rotated, path));
  ASSERT_OK_AND_ASSIGN(ShardManifest reloaded, LoadManifest(path));
  EXPECT_EQ(reloaded.shards[0].wals, rotated.shards[0].wals);
  std::remove(path.c_str());
}

/// Targeted cold-record rejections: the sealed-segment list is part of
/// the committed cut, so a malformed one must fail the whole manifest.
TEST(ManifestTest, RejectsMalformedColdRecords) {
  const std::string path = ::testing::TempDir() + "/ltam_manifest_cold_cases";
  auto load = [&path](const std::string& text) {
    WriteFile(path, text);
    return LoadManifest(path);
  };
  const std::string head =
      "manifest\t1\t0\t1\nbase\tb.snap\nshard\t0\ts.snap\tw.wal\n";
  // Shard index out of range.
  EXPECT_FALSE(load(head + "cold\t7\t0\tc.seg\ncommit\t4\n").ok());
  // Duplicate cold record for one shard.
  EXPECT_FALSE(
      load(head + "cold\t0\t0\tc.seg\ncold\t0\t0\td.seg\ncommit\t5\n").ok());
  // Negative dropped-event count.
  EXPECT_FALSE(load(head + "cold\t0\t-3\tc.seg\ncommit\t4\n").ok());
  // Nothing sealed AND nothing dropped: the record should not exist.
  EXPECT_FALSE(load(head + "cold\t0\t0\ncommit\t4\n").ok());
  // Too few fields.
  EXPECT_FALSE(load(head + "cold\t0\ncommit\t4\n").ok());
  // Path-escaping segment names.
  EXPECT_FALSE(load(head + "cold\t0\t0\t../c.seg\ncommit\t4\n").ok());
  // A dropped-only record (everything past the horizon, nothing sealed)
  // is legal; so is a full record, and both round-trip.
  ASSERT_OK_AND_ASSIGN(ShardManifest dropped_only,
                       load(head + "cold\t0\t12\ncommit\t4\n"));
  EXPECT_EQ(dropped_only.shards[0].dropped_events, 12u);
  EXPECT_TRUE(dropped_only.shards[0].cold.empty());
  ASSERT_OK_AND_ASSIGN(
      ShardManifest full,
      load(head + "cold\t0\t5\tc0.seg\tc1.seg\tc2.seg\ncommit\t4\n"));
  EXPECT_EQ(full.shards[0].dropped_events, 5u);
  ASSERT_EQ(full.shards[0].cold.size(), 3u);
  EXPECT_EQ(full.shards[0].cold[0], "c0.seg");
  EXPECT_EQ(full.shards[0].cold[2], "c2.seg");
  ASSERT_OK(SaveManifest(full, path));
  ASSERT_OK_AND_ASSIGN(ShardManifest reloaded, LoadManifest(path));
  EXPECT_EQ(reloaded.shards[0].cold, full.shards[0].cold);
  EXPECT_EQ(reloaded.shards[0].dropped_events, 5u);
  std::remove(path.c_str());
}

/// Corrupted columnar cold-segment images: decode must return ok or
/// error — never crash, hang, or over-allocate — and anything accepted
/// must satisfy every ColdSegment invariant.
TEST_P(WalFuzzTest, ColdSegmentDecoderNeverCrashes) {
  ColdSegment seg;
  Rng seed_rng(GetParam());
  Chronon enter = -20;
  SubjectId subject = 0;
  for (int i = 0; i < 30; ++i) {
    subject += static_cast<SubjectId>(seed_rng.Uniform(3));
    enter += 1 + static_cast<Chronon>(seed_rng.Uniform(10));
    const Chronon exit = enter + static_cast<Chronon>(seed_rng.Uniform(50));
    seg.subjects.push_back(subject);
    seg.locations.push_back(static_cast<LocationId>(seed_rng.Uniform(12)));
    seg.enters.push_back(enter);
    seg.exits.push_back(exit);
  }
  seg.sealed_events = 41;
  seg.RecomputeBounds();
  ASSERT_OK_AND_ASSIGN(std::string valid, EncodeColdSegment(seg));
  // Round trip before corrupting anything.
  ASSERT_OK(DecodeColdSegment(valid).status());

  Rng rng(GetParam() * 7919 + 1);
  for (int i = 0; i < 300; ++i) {
    std::string corrupted;
    switch (i % 3) {
      case 0:
        corrupted = Mutate(valid, &rng);
        break;
      case 1:
        corrupted = valid.substr(0, rng.Uniform(valid.size() + 1));
        break;
      default:
        corrupted = RandomBytes(&rng, 400);
        break;
    }
    Result<ColdSegment> r = DecodeColdSegment(corrupted);
    if (!r.ok()) continue;
    const ColdSegment& got = *r;
    ASSERT_EQ(got.locations.size(), got.rows());
    ASSERT_EQ(got.enters.size(), got.rows());
    ASSERT_EQ(got.exits.size(), got.rows());
    for (size_t j = 0; j < got.rows(); ++j) {
      ASSERT_LE(got.enters[j], got.exits[j]);
      ASSERT_LT(got.exits[j], kChrononMax);
      ASSERT_GE(got.enters[j], got.min_enter);
      ASSERT_LE(got.exits[j], got.max_exit);
      if (j > 0) {
        ASSERT_LE(got.subjects[j - 1], got.subjects[j]);
      }
    }
  }
}

/// Movement-segment loading under corruption (the per-shard snapshots).
TEST_P(WalFuzzTest, MovementSegmentLoaderNeverCrashes) {
  const std::string path = TempPath("segment");
  MovementDatabase movements;
  Rng rng(GetParam());
  Chronon t = 0;
  std::vector<LocationId> at(6, kInvalidLocation);
  for (int i = 0; i < 40; ++i) {
    t += 1 + static_cast<Chronon>(rng.Uniform(3));
    SubjectId s = static_cast<SubjectId>(rng.Uniform(6));
    LocationId l = rng.Bernoulli(0.2)
                       ? kInvalidLocation
                       : static_cast<LocationId>(rng.Uniform(9));
    if (l == at[s]) continue;  // Same-location moves are rejected.
    ASSERT_OK(movements.RecordMovement(t, s, l));
    at[s] = l;
  }
  ASSERT_OK(SaveMovements(movements, path));
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  // Round trip.
  ASSERT_OK_AND_ASSIGN(MovementDatabase loaded, LoadMovements(path));
  EXPECT_EQ(loaded.history().size(), movements.history().size());

  for (int i = 0; i < 150; ++i) {
    WriteFile(path, i % 2 == 0 ? Mutate(contents, &rng)
                               : RandomBytes(&rng, 300));
    Result<MovementDatabase> r = LoadMovements(path);
    (void)r;  // ok or error; never a crash.
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, WalFuzzTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace ltam
