// Copyright 2026 The LTAM Authors.
// Normalized sets of time intervals.
//
// Algorithm 1 of the paper associates with each location an *overall grant
// time* T^g and an *overall departure time* T^d, "each of them consists of
// a set of time intervals". IntervalSet is that structure: a canonical
// (sorted, disjoint, non-adjacent) sequence of closed intervals with the
// usual set algebra.

#ifndef LTAM_TIME_INTERVAL_SET_H_
#define LTAM_TIME_INTERVAL_SET_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "time/interval.h"

namespace ltam {

/// A set of chronons represented as maximal disjoint closed intervals.
///
/// Invariant: intervals_ is sorted by start, every interval is valid, and
/// no two intervals overlap or are integer-adjacent (they would have been
/// coalesced). The empty set corresponds to the paper's "null" (φ).
class IntervalSet {
 public:
  /// The empty set (the paper's φ / null duration).
  IntervalSet() = default;

  /// Singleton set {interval}.
  explicit IntervalSet(const TimeInterval& interval) { Add(interval); }

  /// Set from arbitrary (possibly overlapping, unsorted) intervals.
  IntervalSet(std::initializer_list<TimeInterval> intervals) {
    for (const TimeInterval& i : intervals) Add(i);
  }

  /// The full domain.
  static IntervalSet All() { return IntervalSet(TimeInterval::All()); }

  /// True iff the set is empty (null in the paper's notation).
  bool empty() const { return intervals_.empty(); }

  /// Number of maximal intervals.
  size_t size() const { return intervals_.size(); }

  /// The canonical intervals, sorted and disjoint.
  const std::vector<TimeInterval>& intervals() const { return intervals_; }

  /// Earliest / latest chronon in the set; must not be called when empty.
  Chronon Min() const;
  Chronon Max() const;

  /// Inserts an interval, coalescing as needed. Invalid intervals
  /// (start > end) are ignored, which lets callers add raw
  /// [max(...),min(...)] results without pre-checking emptiness.
  void Add(const TimeInterval& interval);

  /// Removes every chronon of `interval` from the set.
  void Remove(const TimeInterval& interval);

  /// True iff t is in the set.
  bool Contains(Chronon t) const;

  /// True iff every chronon of `interval` is in the set.
  bool Contains(const TimeInterval& interval) const;

  /// True iff every chronon of `other` is in this set.
  bool ContainsSet(const IntervalSet& other) const;

  /// True iff the set and `interval` share a chronon.
  bool Overlaps(const TimeInterval& interval) const;

  /// True iff the two sets share a chronon.
  bool Overlaps(const IntervalSet& other) const;

  /// Set union (the paper's ∪ on duration sets).
  IntervalSet Union(const IntervalSet& other) const;

  /// Set intersection.
  IntervalSet Intersect(const IntervalSet& other) const;
  IntervalSet Intersect(const TimeInterval& interval) const;

  /// This minus other.
  IntervalSet Difference(const IntervalSet& other) const;

  /// Complement with respect to `universe` (default: the full domain).
  IntervalSet Complement(
      const TimeInterval& universe = TimeInterval::All()) const;

  /// Total number of chronons covered; kChrononMax when unbounded.
  Chronon TotalSize() const;

  /// "{}" for empty, otherwise "{[2, 35], [40, 50]}".
  std::string ToString() const;

  /// Parses the ToString format; also accepts a bare interval "[a, b]"
  /// and the null symbols "{}", "null", "phi".
  static Result<IntervalSet> Parse(const std::string& text);

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  std::vector<TimeInterval> intervals_;
};

}  // namespace ltam

#endif  // LTAM_TIME_INTERVAL_SET_H_
