// Copyright 2026 The LTAM Authors.
// The ltam-serve loopback equivalence contract: the decision/alert
// stream observed through the server from N concurrent client
// connections is byte-identical to replaying the same per-subject
// streams directly on AccessRuntime — for in-memory and
// durable-sharded configurations — even though the server's ingest
// coalescer merges the connections' frames into shared batches.
// (Connections own disjoint subjects, the same independence property
// the subject-sharded pipeline exploits, so interleaving cannot change
// any decision.) Also under test: the pipelined client API actually
// feeding the coalescer, remote queries/stats against the live server,
// and the error paths (refused oversized batches, malformed queries).
//
// The whole suite is part of the TSan CI job: client threads, the I/O
// thread, read workers, and the coalescer exercise every lock in
// service/server.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/access_runtime.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

namespace fs = std::filesystem;

constexpr size_t kConnections = 4;

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

World MakeWorld(uint64_t seed) {
  World w;
  w.graph = MakeGridGraph(5, 5).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 24);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.6;
  opt.horizon = 400;
  opt.min_len = 20;
  opt.max_len = 120;
  opt.max_entries = 3;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

SystemState StateOf(const World& w) {
  SystemState state;
  state.graph = w.graph;
  state.profiles = w.profiles;
  state.auth_db = w.auth_db;
  return state;
}

/// Per-connection workloads over DISJOINT subject sets (connection i
/// owns subjects with index % kConnections == i).
std::vector<std::vector<std::vector<AccessEvent>>> MakeConnectionStreams(
    const World& w, uint64_t seed) {
  std::vector<std::vector<std::vector<AccessEvent>>> streams(kConnections);
  for (size_t c = 0; c < kConnections; ++c) {
    std::vector<SubjectId> mine;
    for (size_t i = c; i < w.subjects.size(); i += kConnections) {
      mine.push_back(w.subjects[i]);
    }
    Rng rng(seed + c * 1000);
    BatchWorkloadOptions opt;
    opt.batch_size = 48;
    opt.exit_fraction = 0.15;
    opt.observe_fraction = 0.15;
    streams[c] =
        GenerateEventBatches(w.graph, mine, /*total_events=*/1200, opt, &rng);
  }
  return streams;
}

/// What one connection observed, batch by batch, rendered to bytes.
struct ConnectionOutcome {
  /// decisions[k] concatenates batch k's decision strings.
  std::vector<std::string> decisions;
  /// alerts[k] concatenates batch k's alert strings.
  std::vector<std::string> alerts;
};

std::string DecisionBytes(const std::vector<Decision>& decisions) {
  std::string out;
  for (const Decision& d : decisions) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::string AlertBytes(const std::vector<Alert>& alerts) {
  std::string out;
  for (const Alert& a : alerts) {
    out += a.ToString();
    out += '\n';
  }
  return out;
}

void PushOutcome(ConnectionOutcome* out, const WireBatchResult& r) {
  out->decisions.push_back(DecisionBytes(r.decisions));
  out->alerts.push_back(AlertBytes(r.alerts));
}

/// The reference: the same per-subject streams applied directly on the
/// facade, round-robin across connections (any interleaving yields the
/// same per-subject decisions — that independence is what makes the
/// server's coalescing sound).
std::vector<ConnectionOutcome> RunDirect(
    const World& w,
    const std::vector<std::vector<std::vector<AccessEvent>>>& streams,
    RuntimeOptions options) {
  std::vector<ConnectionOutcome> outcomes(streams.size());
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(StateOf(w), options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return outcomes;
  std::unique_ptr<AccessRuntime> rt = std::move(opened).ValueOrDie();
  size_t max_batches = 0;
  for (const auto& stream : streams) {
    max_batches = std::max(max_batches, stream.size());
  }
  for (size_t k = 0; k < max_batches; ++k) {
    for (size_t c = 0; c < streams.size(); ++c) {
      if (k >= streams[c].size()) continue;
      Result<BatchResult> r = rt->ApplyBatch(streams[c][k]);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) continue;
      EXPECT_OK(r->durability);
      outcomes[c].decisions.push_back(DecisionBytes(r->decisions));
      outcomes[c].alerts.push_back(AlertBytes(r->alerts));
    }
  }
  return outcomes;
}

/// The system under test: one server, `streams.size()` concurrent
/// client threads, each synchronously streaming its batches.
std::vector<ConnectionOutcome> RunThroughServer(
    const World& w,
    const std::vector<std::vector<std::vector<AccessEvent>>>& streams,
    RuntimeOptions options, CoalescerStats* coalescing = nullptr,
    ServerOptions server_options = ServerOptions{}) {
  std::vector<ConnectionOutcome> outcomes(streams.size());
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(StateOf(w), options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return outcomes;
  std::unique_ptr<AccessRuntime> rt = std::move(opened).ValueOrDie();
  ServiceServer server(rt.get(), server_options);
  Status started = server.Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  if (!started.ok()) return outcomes;
  const uint16_t port = server.bound_port();

  std::vector<std::thread> clients;
  clients.reserve(streams.size());
  for (size_t c = 0; c < streams.size(); ++c) {
    clients.emplace_back([&, c] {
      Result<std::unique_ptr<ServiceClient>> connected =
          ServiceClient::Connect("127.0.0.1", port);
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      std::unique_ptr<ServiceClient> client =
          std::move(connected).ValueOrDie();
      for (const auto& batch : streams[c]) {
        Result<WireBatchResult> r = client->ApplyBatch(batch);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_OK(r->durability);
        outcomes[c].decisions.push_back(DecisionBytes(r->decisions));
        outcomes[c].alerts.push_back(AlertBytes(r->alerts));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (coalescing != nullptr) *coalescing = server.coalescer_stats();
  server.Stop();
  return outcomes;
}

void ExpectByteIdentical(const std::vector<ConnectionOutcome>& expected,
                         const std::vector<ConnectionOutcome>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t c = 0; c < expected.size(); ++c) {
    SCOPED_TRACE("connection " + std::to_string(c));
    ASSERT_EQ(expected[c].decisions.size(), actual[c].decisions.size());
    for (size_t k = 0; k < expected[c].decisions.size(); ++k) {
      ASSERT_EQ(expected[c].decisions[k], actual[c].decisions[k])
          << "decision stream diverged at batch " << k;
      ASSERT_EQ(expected[c].alerts[k], actual[c].alerts[k])
          << "alert stream diverged at batch " << k;
    }
  }
}

class ServiceLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/ltam_service_loopback";
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_F(ServiceLoopbackTest, ConcurrentClientsMatchDirectFacadeInMemory) {
  World w = MakeWorld(211);
  auto streams = MakeConnectionStreams(w, 223);
  RuntimeOptions options;
  options.num_shards = 3;
  std::vector<ConnectionOutcome> direct = RunDirect(w, streams, options);
  CoalescerStats coalescing;
  std::vector<ConnectionOutcome> served =
      RunThroughServer(w, streams, options, &coalescing);
  ExpectByteIdentical(direct, served);
  // Every ingest frame went through a merged runtime batch.
  size_t frames = 0;
  for (const auto& stream : streams) frames += stream.size();
  EXPECT_EQ(frames, coalescing.merged_frames);
  EXPECT_GE(frames, coalescing.merged_batches);
}

TEST_F(ServiceLoopbackTest, ConcurrentClientsMatchDirectFacadeDurable) {
  World w = MakeWorld(307);
  auto streams = MakeConnectionStreams(w, 311);
  fs::create_directories(root_ + "/direct");
  fs::create_directories(root_ + "/served");
  RuntimeOptions direct_options;
  direct_options.num_shards = 3;
  direct_options.durable_dir = root_ + "/direct";
  RuntimeOptions served_options;
  served_options.num_shards = 3;
  served_options.durable_dir = root_ + "/served";
  std::vector<ConnectionOutcome> direct =
      RunDirect(w, streams, direct_options);
  std::vector<ConnectionOutcome> served =
      RunThroughServer(w, streams, served_options);
  ExpectByteIdentical(direct, served);

  // The durable directory the server wrote must recover to the same
  // movement state the direct run reached.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<AccessRuntime> direct_rt,
      AccessRuntime::Open(SystemState(), direct_options));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<AccessRuntime> served_rt,
      AccessRuntime::Open(SystemState(), served_options));
  for (SubjectId s : w.subjects) {
    EXPECT_EQ(direct_rt->movements().CurrentLocation(s),
              served_rt->movements().CurrentLocation(s))
        << "subject " << s;
  }
}

TEST_F(ServiceLoopbackTest, PipelinedBatchesFeedTheCoalescer) {
  World w = MakeWorld(401);
  auto streams = MakeConnectionStreams(w, 409);
  RuntimeOptions options;
  options.num_shards = 2;
  std::vector<ConnectionOutcome> direct = RunDirect(w, streams, options);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  std::vector<ConnectionOutcome> served(streams.size());
  std::vector<std::thread> clients;
  for (size_t c = 0; c < streams.size(); ++c) {
    clients.emplace_back([&, c] {
      Result<std::unique_ptr<ServiceClient>> connected =
          ServiceClient::Connect("127.0.0.1", server.bound_port());
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      std::unique_ptr<ServiceClient> client =
          std::move(connected).ValueOrDie();
      // All batches in flight at once; responses come back in
      // submission order (the ingest path is FIFO per connection).
      std::vector<uint32_t> ids;
      for (const auto& batch : streams[c]) {
        Result<uint32_t> id = client->SubmitBatch(batch);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ids.push_back(*id);
      }
      ASSERT_OK(client->Flush());
      for (uint32_t id : ids) {
        Result<ServiceClient::PipelinedBatch> r =
            client->ReceiveBatchResult();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(id, r->request_id);
        PushOutcome(&served[c], r->result);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  CoalescerStats coalescing = server.coalescer_stats();
  server.Stop();
  ExpectByteIdentical(direct, served);
  // A pipelined flood must actually coalesce: fewer runtime batches
  // than ingest frames (each connection keeps ~25 frames in flight).
  EXPECT_LT(coalescing.merged_batches, coalescing.merged_frames);
  EXPECT_GE(coalescing.max_frames_per_batch, 2u);
}

TEST_F(ServiceLoopbackTest, RemoteQueriesAndStatsAnswerOverLiveRuntime) {
  World w = MakeWorld(503);
  RuntimeOptions options;
  options.num_shards = 2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));

  ASSERT_OK(client->Ping());

  // Ingest through the wire, then read back through the wire: the
  // query engine answers over the live MovementView.
  LocationId door = w.graph.EntryPrimitives(w.graph.root())[0];
  std::vector<AccessEvent> batch;
  batch.push_back(AccessEvent::Observe(50, w.subjects[0], door));
  ASSERT_OK_AND_ASSIGN(WireBatchResult applied, client->ApplyBatch(batch));
  ASSERT_EQ(1u, applied.decisions.size());

  ASSERT_OK_AND_ASSIGN(
      QueryResult where,
      client->Query("WHERE WAS u0 AT 60"));
  ASSERT_EQ(1u, where.rows.size());
  EXPECT_EQ(w.graph.location(door).name, where.rows[0][2]);

  // A malformed statement maps to a structured error, not a dropped
  // connection.
  Result<QueryResult> bad = client->Query("FROBNICATE the pod bay doors");
  EXPECT_FALSE(bad.ok());

  // Stats through the wire equal the runtime's own counters.
  ASSERT_OK_AND_ASSIGN(RuntimeStats remote, client->Stats());
  RuntimeStats local = rt->Stats();  // Safe: no batch in flight.
  EXPECT_EQ(local.num_shards, remote.num_shards);
  EXPECT_EQ(local.batches_applied, remote.batches_applied);
  EXPECT_EQ(local.events_applied, remote.events_applied);
  EXPECT_EQ(local.requests_processed, remote.requests_processed);
  EXPECT_EQ(1u, remote.events_applied);

  server.Stop();
}

TEST_F(ServiceLoopbackTest, OversizedBatchIsRefusedAndCounted) {
  World w = MakeWorld(601);
  RuntimeOptions options;
  options.max_batch_events = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));

  std::vector<AccessEvent> oversized;
  for (int i = 0; i < 8; ++i) {
    oversized.push_back(AccessEvent::Entry(i + 1, w.subjects[0], 1));
  }
  Result<WireBatchResult> refused = client->ApplyBatch(oversized);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsInvalidArgument())
      << refused.status().ToString();

  // The refusal is visible in the runtime's own counters — the same
  // numbers the shell and the /stats endpoint report.
  ASSERT_OK_AND_ASSIGN(RuntimeStats stats, client->Stats());
  EXPECT_EQ(1u, stats.batches_rejected);
  EXPECT_EQ(0u, stats.batches_applied);

  // A fitting batch still applies afterwards.
  std::vector<AccessEvent> small(oversized.begin(), oversized.begin() + 2);
  ASSERT_OK_AND_ASSIGN(WireBatchResult ok, client->ApplyBatch(small));
  EXPECT_EQ(2u, ok.decisions.size());

  server.Stop();
}

TEST_F(ServiceLoopbackTest, CoalescedOverflowFallsBackToPerFrameBatches) {
  // Individually-legal frames must not be refused just because the
  // coalescer merged them past the runtime's max_batch_events: the
  // server degrades to per-frame application. Two pipelined
  // connections flood 3-event frames at a 4-event runtime ceiling, so
  // any merge of two frames (6 events) would trip it.
  World w = MakeWorld(809);
  RuntimeOptions options;
  options.max_batch_events = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  constexpr size_t kFrames = 20;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Result<std::unique_ptr<ServiceClient>> connected =
          ServiceClient::Connect("127.0.0.1", server.bound_port());
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      std::unique_ptr<ServiceClient> client =
          std::move(connected).ValueOrDie();
      SubjectId mine = w.subjects[c];
      std::vector<uint32_t> ids;
      for (size_t k = 0; k < kFrames; ++k) {
        std::vector<AccessEvent> batch;
        for (int i = 0; i < 3; ++i) {
          batch.push_back(AccessEvent::Entry(
              static_cast<Chronon>(k * 3 + i + 1), mine, 1));
        }
        Result<uint32_t> id = client->SubmitBatch(batch);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ids.push_back(*id);
      }
      ASSERT_OK(client->Flush());
      for (uint32_t id : ids) {
        Result<ServiceClient::PipelinedBatch> r =
            client->ReceiveBatchResult();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(id, r->request_id);
        EXPECT_EQ(3u, r->result.decisions.size());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  // Every event applied; no frame inherited a neighbor's refusal.
  RuntimeStats stats = rt->Stats();
  EXPECT_EQ(2 * kFrames * 3, stats.events_applied);
}

TEST_F(ServiceLoopbackTest, PipelinedSyncModeServerMatchesDirectSyncReplay) {
  // The serving-path acceptance gate for commit pipelining: a server
  // whose durable runtime runs --sync-mode=pipelined (log threads, WAL
  // rotation) must stream decisions/alerts byte-identical to a direct
  // synchronous-group-commit replay, and its directory must recover the
  // same state.
  World w = MakeWorld(907);
  auto streams = MakeConnectionStreams(w, 911);
  fs::create_directories(root_ + "/direct-sync");
  fs::create_directories(root_ + "/served-pipelined");
  RuntimeOptions direct_options;
  direct_options.num_shards = 3;
  direct_options.durable_dir = root_ + "/direct-sync";
  RuntimeOptions served_options;
  served_options.num_shards = 3;
  served_options.durable_dir = root_ + "/served-pipelined";
  served_options.durability.mode = SyncMode::kPipelined;
  served_options.durability.segment_max_bytes = 8192;  // Exercise rotation.
  std::vector<ConnectionOutcome> direct =
      RunDirect(w, streams, direct_options);
  std::vector<ConnectionOutcome> served =
      RunThroughServer(w, streams, served_options);
  ExpectByteIdentical(direct, served);

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<AccessRuntime> direct_rt,
      AccessRuntime::Open(SystemState(), direct_options));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<AccessRuntime> served_rt,
      AccessRuntime::Open(SystemState(), served_options));
  for (SubjectId s : w.subjects) {
    EXPECT_EQ(direct_rt->movements().CurrentLocation(s),
              served_rt->movements().CurrentLocation(s))
        << "subject " << s;
  }
}

TEST_F(ServiceLoopbackTest, BatchResultsCarryTheDurabilityWatermark) {
  World w = MakeWorld(919);
  fs::create_directories(root_ + "/wm");
  RuntimeOptions options;
  options.num_shards = 2;
  options.durable_dir = root_ + "/wm";
  options.durability.mode = SyncMode::kPipelined;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));
  std::vector<AccessEvent> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(AccessEvent::Entry(i + 1, w.subjects[0], 1));
  }
  ASSERT_OK_AND_ASSIGN(WireBatchResult r, client->ApplyBatch(batch));
  EXPECT_GE(r.watermark.applied, 4u) << "acked events count as applied";
  EXPECT_LE(r.watermark.durable, r.watermark.applied);
  // The remote watermark is the runtime's own (Stats carries it too).
  ASSERT_OK_AND_ASSIGN(RuntimeStats stats, client->Stats());
  EXPECT_GE(stats.applied_offset, 4u);
  EXPECT_LE(stats.durable_offset, stats.applied_offset);
  server.Stop();
}

TEST_F(ServiceLoopbackTest, PerConnectionQuotaRefusesFloodingClient) {
  // One client pipelining hundreds of frames against a 1-unit
  // per-connection quota must see refusals long before the global
  // budget is touched — and a polite second connection must be
  // unaffected.
  World w = MakeWorld(1009);
  RuntimeOptions options;
  options.num_shards = 2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServerOptions server_options;
  server_options.max_connection_queued_events = 1;
  ServiceServer server(rt.get(), server_options);
  ASSERT_OK(server.Start());

  constexpr size_t kFrames = 200;
  size_t accepted = 0;
  size_t refused = 0;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<ServiceClient> flooder,
        ServiceClient::Connect("127.0.0.1", server.bound_port()));
    std::vector<uint32_t> ids;
    for (size_t k = 0; k < kFrames; ++k) {
      std::vector<AccessEvent> batch;
      batch.push_back(AccessEvent::Entry(static_cast<Chronon>(k + 1),
                                         w.subjects[0], 1));
      ASSERT_OK_AND_ASSIGN(uint32_t id, flooder->SubmitBatch(batch));
      ids.push_back(id);
    }
    ASSERT_OK(flooder->Flush());
    // Quota refusals are answered by the I/O thread the moment the
    // frame is dispatched, while accepted frames answer after the
    // coalescer applies them — so responses arrive out of submission
    // order here; match accepted ones back by request id.
    std::set<uint32_t> submitted(ids.begin(), ids.end());
    for (size_t k = 0; k < ids.size(); ++k) {
      Result<ServiceClient::PipelinedBatch> r =
          flooder->ReceiveBatchResult();
      if (r.ok()) {
        EXPECT_EQ(submitted.erase(r->request_id), 1u)
            << "duplicate or unknown response id " << r->request_id;
        ++accepted;
      } else {
        EXPECT_TRUE(r.status().IsFailedPrecondition())
            << r.status().ToString();
        EXPECT_NE(r.status().ToString().find("connection"),
                  std::string::npos)
            << "the refusal must name the connection quota, got: "
            << r.status().ToString();
        ++refused;
      }
    }
  }
  EXPECT_EQ(accepted + refused, kFrames);
  EXPECT_GE(accepted, 1u) << "the first frame always fits the quota";
  EXPECT_GE(refused, 1u) << "a 200-frame flood against a 1-unit quota "
                            "cannot be fully absorbed";
  EXPECT_EQ(server.coalescer_stats().connection_quota_refusals, refused);

  // The quota is per connection: a fresh client sails through.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> polite,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));
  std::vector<AccessEvent> one;
  one.push_back(AccessEvent::Entry(5000, w.subjects[1], 1));
  ASSERT_OK_AND_ASSIGN(WireBatchResult ok, polite->ApplyBatch(one));
  EXPECT_EQ(1u, ok.decisions.size());

  server.Stop();
}

TEST_F(ServiceLoopbackTest, EpollEquivalenceMatrix) {
  // The scaling gate for the per-thread epoll loops: 1 and 4 I/O
  // threads, in-memory-sharded and durable-pipelined, all byte-identical
  // (decisions AND alerts) to the direct facade replay. Round-robin
  // steering spreads the four connections across the loops, so at
  // io_threads=4 every loop owns traffic.
  World w = MakeWorld(1103);
  auto streams = MakeConnectionStreams(w, 1109);
  for (uint32_t io_threads : {1u, 4u}) {
    for (bool durable : {false, true}) {
      SCOPED_TRACE("io_threads=" + std::to_string(io_threads) +
                   (durable ? " durable-pipelined" : " in-memory"));
      RuntimeOptions direct_options;
      direct_options.num_shards = 3;
      RuntimeOptions served_options = direct_options;
      if (durable) {
        const std::string tag = std::to_string(io_threads);
        fs::create_directories(root_ + "/matrix-direct-" + tag);
        fs::create_directories(root_ + "/matrix-served-" + tag);
        direct_options.durable_dir = root_ + "/matrix-direct-" + tag;
        served_options.durable_dir = root_ + "/matrix-served-" + tag;
        served_options.durability.mode = SyncMode::kPipelined;
      }
      std::vector<ConnectionOutcome> direct =
          RunDirect(w, streams, direct_options);
      ServerOptions server_options;
      server_options.io_threads = io_threads;
      CoalescerStats coalescing;
      std::vector<ConnectionOutcome> served = RunThroughServer(
          w, streams, served_options, &coalescing, server_options);
      ExpectByteIdentical(direct, served);
      // Every loop exists in the stats; with 4 loops and 4 connections
      // the round-robin gives each loop exactly one.
      ASSERT_EQ(io_threads, coalescing.io_thread_connections.size());
      if (io_threads == kConnections) {
        for (size_t accepted : coalescing.io_thread_connections) {
          EXPECT_EQ(1u, accepted);
        }
      }
      // Frames landed in per-shard queues (3 runtime shards).
      ASSERT_EQ(3u, coalescing.shard_queue_frames.size());
      size_t queued = 0;
      for (size_t f : coalescing.shard_queue_frames) queued += f;
      size_t frames = 0;
      for (const auto& stream : streams) frames += stream.size();
      EXPECT_EQ(frames, queued);
      EXPECT_EQ(0u, coalescing.stranded_alerts_delivered)
          << "disjoint-subject streams attribute every alert exactly";
    }
  }
}

/// A tiny deterministic world for alert-delivery tests: Alice may stay
/// in room A only until t=40 (so a Tick past that raises an overstay
/// alert for her), Bob roams the same room freely on his own generous
/// authorization. A is Fig4's only entry point, so both subjects enter
/// legally from outside; the subjects stay disjoint, which is what
/// alert attribution keys on.
SystemState AlertState(SubjectId* alice, SubjectId* bob, LocationId* a,
                       LocationId* b) {
  SystemState state;
  state.graph = MakeFig4Graph().ValueOrDie();
  *alice = state.profiles.AddSubject("Alice").ValueOrDie();
  *bob = state.profiles.AddSubject("Bob").ValueOrDie();
  *a = state.graph.Find("A").ValueOrDie();
  *b = *a;
  state.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(0, 30), TimeInterval(0, 40),
                        LocationAuthorization{*alice, *a}, 3)
                        .ValueOrDie());
  state.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(0, 1000), TimeInterval(0, 2000),
                        LocationAuthorization{*bob, *b}, kUnlimitedEntries)
                        .ValueOrDie());
  return state;
}

TEST_F(ServiceLoopbackTest, StrandedAlertsAreDeliveredOnDeadline) {
  // The stranded-alert bugfix: an alert whose subject no in-flight
  // frame touches used to park in the coalescer forever. Here Alice's
  // overstay alert is raised by a pre-serve Tick, and the only client
  // only ever sends Bob's events — yet the alert must surface on that
  // client's next response after one coalescer round, not vanish.
  SubjectId alice, bob;
  LocationId a, b;
  SystemState state = AlertState(&alice, &bob, &a, &b);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(state, RuntimeOptions{}));
  std::vector<AccessEvent> enter;
  enter.push_back(AccessEvent::Entry(10, alice, a));
  ASSERT_OK(rt->ApplyBatch(enter).status());
  ASSERT_OK(rt->Tick(50));  // Past Alice's exit window: overstay buffered.

  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));

  // Batch 1 (Bob only) drains the runtime's buffer; Alice's alert has
  // no frame to ride, so the server parks it.
  std::vector<AccessEvent> first;
  first.push_back(AccessEvent::Entry(60, bob, b));
  ASSERT_OK_AND_ASSIGN(WireBatchResult r1, client->ApplyBatch(first));

  // Batch 2 (still Bob only): the parked alert has now waited a full
  // coalescer round, so the deadline fallback attaches it here.
  auto has_overstay = [&](const std::vector<Alert>& alerts) {
    for (const Alert& alert : alerts) {
      if (alert.type == AlertType::kOverstay && alert.subject == alice) {
        return true;
      }
    }
    return false;
  };
  bool overstay = has_overstay(r1.alerts);
  for (int attempt = 0; attempt < 3 && !overstay; ++attempt) {
    std::vector<AccessEvent> next;
    next.push_back(
        AccessEvent::Observe(static_cast<Chronon>(61 + attempt), bob, b));
    ASSERT_OK_AND_ASSIGN(WireBatchResult rn, client->ApplyBatch(next));
    overstay = has_overstay(rn.alerts);
  }
  EXPECT_TRUE(overstay) << "Alice's overstay alert was never delivered";
  EXPECT_GE(server.coalescer_stats().stranded_alerts_delivered, 1u);
  server.Stop();
}

TEST_F(ServiceLoopbackTest, ShutdownDrainsStrandedAlertsAsAlertPush) {
  // The tail of the delivery guarantee: an alert still parked when the
  // server stops is pushed to a live connection as a kAlertPush frame
  // instead of dying with the coalescer.
  SubjectId alice, bob;
  LocationId a, b;
  SystemState state = AlertState(&alice, &bob, &a, &b);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(state, RuntimeOptions{}));
  std::vector<AccessEvent> enter;
  enter.push_back(AccessEvent::Entry(10, alice, a));
  ASSERT_OK(rt->ApplyBatch(enter).status());
  ASSERT_OK(rt->Tick(50));

  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));

  // One Bob-only batch parks Alice's alert; then the server stops with
  // the alert still held.
  std::vector<AccessEvent> first;
  first.push_back(AccessEvent::Entry(60, bob, b));
  ASSERT_OK_AND_ASSIGN(WireBatchResult r1, client->ApplyBatch(first));
  server.Stop();

  bool overstay = false;
  for (const Alert& alert : r1.alerts) {
    if (alert.type == AlertType::kOverstay && alert.subject == alice) {
      overstay = true;  // Delivered even earlier than required: fine.
    }
  }
  if (!overstay) {
    ASSERT_OK_AND_ASSIGN(std::vector<Alert> pushed,
                         client->ReceiveAlertPush());
    for (const Alert& alert : pushed) {
      if (alert.type == AlertType::kOverstay && alert.subject == alice) {
        overstay = true;
      }
    }
  }
  EXPECT_TRUE(overstay) << "the shutdown drain lost Alice's alert";
  EXPECT_GE(server.coalescer_stats().stranded_alerts_delivered, 1u);
}

TEST_F(ServiceLoopbackTest, StatsCarryPerShardWatermarks) {
  // Protocol v3: the remote Stats answer carries one (applied, durable)
  // watermark pair per shard log, and they sum to the aggregate.
  World w = MakeWorld(1201);
  fs::create_directories(root_ + "/shard-wm");
  RuntimeOptions options;
  options.num_shards = 3;
  options.durable_dir = root_ + "/shard-wm";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));

  std::vector<AccessEvent> batch;
  for (size_t i = 0; i < 8; ++i) {
    batch.push_back(AccessEvent::Observe(static_cast<Chronon>(i + 1),
                                         w.subjects[i % w.subjects.size()],
                                         1));
  }
  ASSERT_OK(client->ApplyBatch(batch).status());

  ASSERT_OK_AND_ASSIGN(RuntimeStats remote, client->Stats());
  ASSERT_EQ(3u, remote.shard_watermarks.size());
  uint64_t applied_sum = 0;
  uint64_t durable_sum = 0;
  for (const DurabilityWatermark& wm : remote.shard_watermarks) {
    EXPECT_LE(wm.durable, wm.applied);
    applied_sum += wm.applied;
    durable_sum += wm.durable;
  }
  EXPECT_EQ(remote.applied_offset, applied_sum);
  EXPECT_EQ(remote.durable_offset, durable_sum);
  EXPECT_EQ(8u, applied_sum);

  // Checkpoint retires the logs into per-shard bases: the per-shard
  // watermarks must stay monotonic, not reset.
  ASSERT_OK(client->Checkpoint());
  ASSERT_OK_AND_ASSIGN(RuntimeStats after, client->Stats());
  ASSERT_EQ(3u, after.shard_watermarks.size());
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_GE(after.shard_watermarks[k].applied,
              remote.shard_watermarks[k].applied)
        << "shard " << k;
  }
  server.Stop();
}

TEST_F(ServiceLoopbackTest, RemoteCheckpointAdvancesTheEpoch) {
  World w = MakeWorld(701);
  fs::create_directories(root_ + "/ckpt");
  RuntimeOptions options;
  options.num_shards = 2;
  options.durable_dir = root_ + "/ckpt";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));

  ASSERT_OK_AND_ASSIGN(RuntimeStats before, client->Stats());
  ASSERT_OK(client->Checkpoint());
  ASSERT_OK_AND_ASSIGN(RuntimeStats after, client->Stats());
  EXPECT_TRUE(after.durable);
  EXPECT_GT(after.epoch, before.epoch);

  server.Stop();
}

TEST_F(ServiceLoopbackTest, MetricsReconcileWithFramesSentOverTheWire) {
  World w = MakeWorld(811);
  auto streams = MakeConnectionStreams(w, 821);
  RuntimeOptions options;
  options.num_shards = 2;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServerOptions server_options;
  server_options.metrics = &metrics;
  ServiceServer server(rt.get(), server_options);
  ASSERT_OK(server.Start());

  size_t frames_sent = 0;
  size_t events_sent = 0;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < streams.size(); ++c) {
    for (const auto& batch : streams[c]) {
      ++frames_sent;
      events_sent += batch.size();
    }
    clients.emplace_back([&, c] {
      Result<std::unique_ptr<ServiceClient>> connected =
          ServiceClient::Connect("127.0.0.1", server.bound_port());
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      std::unique_ptr<ServiceClient> client =
          std::move(connected).ValueOrDie();
      for (const auto& batch : streams[c]) {
        Result<uint32_t> id = client->SubmitBatch(batch);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
      }
      ASSERT_OK(client->Flush());
      for (size_t i = 0; i < streams[c].size(); ++i) {
        ASSERT_OK(client->ReceiveBatchResult().status());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  CoalescerStats coalescing = server.coalescer_stats();

  // Scrape over the wire while the server is still up.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> scraper,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));
  // One read through the query path (result content is irrelevant —
  // the read worker times the run either way).
  (void)scraper->Query("WHERE WAS u0 AT 60");
  ASSERT_OK_AND_ASSIGN(MetricsSnapshot snapshot, scraper->Metrics());
  ASSERT_OK_AND_ASSIGN(std::string text, scraper->MetricsText());
  server.Stop();

  auto histogram = [&](const std::string& name) -> const LatencyHistogram& {
    for (const auto& [n, h] : snapshot.histograms) {
      if (n == name) return h;
    }
    ADD_FAILURE() << "missing histogram " << name;
    static LatencyHistogram empty;
    return empty;
  };
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };

  // The reconciliation contract: every client frame was counted once at
  // dispatch, picked up once, decoded once, applied once — the same
  // basis CoalescerStats counts on — and nothing was double- or
  // under-counted anywhere in the pipeline.
  EXPECT_EQ(frames_sent, counter("ingest.frames"));
  EXPECT_EQ(events_sent, counter("ingest.events"));
  EXPECT_EQ(frames_sent, coalescing.merged_frames);
  EXPECT_EQ(frames_sent, histogram("ingest.apply").count());
  EXPECT_EQ(frames_sent, histogram("ingest.queue_wait").count());
  EXPECT_EQ(frames_sent, histogram("ingest.decode").count());
  EXPECT_EQ(frames_sent, histogram("ingest.write").count());
  EXPECT_EQ(frames_sent, histogram("ingest.e2e").count());
  // One fsync-wait span per merged batch.
  EXPECT_EQ(coalescing.merged_batches,
            histogram("ingest.fsync_wait").count());
  // The read worker timed the query.
  EXPECT_EQ(1u, histogram("query.run").count());
  // Runtime-side stages recorded into the SAME registry through
  // RuntimeOptions::metrics: one runtime.apply_batch per merged batch.
  EXPECT_EQ(coalescing.merged_batches,
            histogram("runtime.apply_batch").count());

  // Stage spans nest inside the end-to-end span: each stage's total
  // time is bounded by e2e's total time (sum-consistency; queue_wait +
  // decode + apply + write <= e2e would need per-request sums, but
  // per-stage totals must each bound below the e2e total).
  const LatencyHistogram& e2e = histogram("ingest.e2e");
  EXPECT_LE(histogram("ingest.decode").sum(), e2e.sum());
  EXPECT_LE(histogram("ingest.write").sum(), e2e.sum());
  EXPECT_LE(histogram("ingest.queue_wait").sum(), e2e.sum());

  // The text exposition parses: non-comment lines are "name value",
  // and the counters agree with the structured scrape.
  EXPECT_NE(std::string::npos, text.find("# TYPE ltam_ingest_frames counter"));
  EXPECT_NE(std::string::npos,
            text.find("ltam_ingest_frames " + std::to_string(frames_sent)));
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ASSERT_NE(std::string::npos, line.rfind(' ')) << line;
    EXPECT_EQ(0u, line.find("ltam_")) << line;
  }
}

TEST_F(ServiceLoopbackTest, MetricsRefusedWithoutARegistry) {
  World w = MakeWorld(823);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), RuntimeOptions{}));
  ServiceServer server(rt.get(), ServerOptions{});
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ServiceClient> client,
      ServiceClient::Connect("127.0.0.1", server.bound_port()));
  Result<MetricsSnapshot> refused = client->Metrics();
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition())
      << refused.status().ToString();
  // The connection survives the refusal.
  ASSERT_OK(client->Ping());
  server.Stop();
}

TEST_F(ServiceLoopbackTest, SlowRequestTracingCountsEmittedTraces) {
  World w = MakeWorld(827);
  RuntimeOptions options;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  ServerOptions server_options;
  server_options.metrics = &metrics;
  server_options.trace_threshold_us = 0;  // Disabled: no trace counters.
  {
    ServiceServer server(rt.get(), server_options);
    ASSERT_OK(server.Start());
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<ServiceClient> client,
        ServiceClient::Connect("127.0.0.1", server.bound_port()));
    std::vector<AccessEvent> batch;
    batch.push_back(AccessEvent::Observe(10, w.subjects[0], 1));
    ASSERT_OK(client->ApplyBatch(batch).status());
    server.Stop();
  }
  EXPECT_EQ(0u, metrics.GetCounter("trace.emitted")->value());

  // Threshold 0us is "disabled"; 1us traces effectively everything
  // (every loopback request takes longer than a microsecond).
  server_options.trace_threshold_us = 1;
  {
    ServiceServer server(rt.get(), server_options);
    ASSERT_OK(server.Start());
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<ServiceClient> client,
        ServiceClient::Connect("127.0.0.1", server.bound_port()));
    std::vector<AccessEvent> batch;
    batch.push_back(AccessEvent::Observe(20, w.subjects[0], 1));
    ASSERT_OK(client->ApplyBatch(batch).status());
    server.Stop();
  }
  // The single request tripped the threshold; the rate limiter admits
  // the first trace of the window.
  EXPECT_EQ(1u, metrics.GetCounter("trace.emitted")->value());
}

}  // namespace
}  // namespace ltam
