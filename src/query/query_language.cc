// Copyright 2026 The LTAM Authors.

#include "query/query_language.h"

#include <algorithm>

#include "util/string_util.h"

namespace ltam {

std::string QueryResult::ToString() const {
  // Compute column widths.
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) line += " | ";
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
    }
    return line + "\n";
  };
  std::string out = emit_row(columns);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "-+-";
    rule += std::string(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows) out += emit_row(row);
  if (rows.empty()) out += "(no rows)\n";
  return out;
}

namespace {

/// Splits a statement into tokens, gluing bracketed intervals ("[a, b]")
/// into single tokens.
Result<std::vector<std::string>> Tokenize(const std::string& statement) {
  std::vector<std::string> raw = SplitAndTrim(statement, ' ');
  std::vector<std::string> out;
  std::string pending;
  for (const std::string& tok : raw) {
    if (!pending.empty()) {
      pending += " " + tok;
      if (tok.find(']') != std::string::npos) {
        out.push_back(pending);
        pending.clear();
      }
      continue;
    }
    if (tok.front() == '[' && tok.find(']') == std::string::npos) {
      pending = tok;
      continue;
    }
    out.push_back(tok);
  }
  if (!pending.empty()) {
    return Status::ParseError("unterminated interval in query: '" + pending +
                              "'");
  }
  if (out.empty()) return Status::ParseError("empty query");
  return out;
}

/// Cursor over the token stream with keyword matching.
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool AtEnd() const { return pos_ >= tokens_.size(); }

  /// Consumes `keyword` (case-insensitive); error otherwise.
  Status Expect(const std::string& keyword) {
    if (AtEnd()) {
      return Status::ParseError("expected '" + keyword + "' at end of query");
    }
    if (!EqualsIgnoreCase(tokens_[pos_], keyword)) {
      return Status::ParseError("expected '" + keyword + "', got '" +
                                tokens_[pos_] + "'");
    }
    ++pos_;
    return Status::OK();
  }

  /// True (and consumes) iff the next token matches.
  bool TryConsume(const std::string& keyword) {
    if (AtEnd() || !EqualsIgnoreCase(tokens_[pos_], keyword)) return false;
    ++pos_;
    return true;
  }

  /// Consumes and returns the next token as a bare name.
  Result<std::string> Name(const std::string& what) {
    if (AtEnd()) {
      return Status::ParseError("expected " + what + " at end of query");
    }
    return tokens_[pos_++];
  }

  Result<Chronon> Time(const std::string& what) {
    LTAM_ASSIGN_OR_RETURN(std::string tok, Name(what));
    return ParseChronon(tok);
  }

  Result<TimeInterval> Interval(const std::string& what) {
    LTAM_ASSIGN_OR_RETURN(std::string tok, Name(what));
    return TimeInterval::Parse(tok);
  }

  Status ExpectEnd() const {
    if (!AtEnd()) {
      return Status::ParseError("unexpected trailing token '" +
                                tokens_[pos_] + "'");
    }
    return Status::OK();
  }

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

}  // namespace

QueryInterpreter::QueryInterpreter(const QueryEngine* engine,
                                   const MultilevelLocationGraph* graph,
                                   const UserProfileDatabase* profiles,
                                   const MovementView* movements,
                                   const AuthorizationDatabase* auth_db)
    : engine_(engine),
      graph_(graph),
      profiles_(profiles),
      local_view_(nullptr),
      external_view_(movements),
      auth_db_(auth_db) {}

QueryInterpreter::QueryInterpreter(const QueryEngine* engine,
                                   const MultilevelLocationGraph* graph,
                                   const UserProfileDatabase* profiles,
                                   const MovementDatabase* movement_db,
                                   const AuthorizationDatabase* auth_db)
    : engine_(engine),
      graph_(graph),
      profiles_(profiles),
      local_view_(movement_db),
      auth_db_(auth_db) {}

Result<QueryResult> QueryInterpreter::Run(const std::string& statement) const {
  LTAM_ASSIGN_OR_RETURN(std::vector<std::string> tokens, Tokenize(statement));
  Cursor cur(std::move(tokens));

  auto loc_name = [this](LocationId l) {
    return l == kInvalidLocation ? std::string("outside")
                                 : graph_->location(l).name;
  };
  auto subj_name = [this](SubjectId s) {
    return profiles_->Exists(s) ? profiles_->subject(s).name
                                : "s" + std::to_string(s);
  };

  // CAN <subject> ACCESS <location> AT <t>
  if (cur.TryConsume("CAN")) {
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.Expect("ACCESS"));
    LTAM_ASSIGN_OR_RETURN(std::string lname, cur.Name("location"));
    LTAM_RETURN_IF_ERROR(cur.Expect("AT"));
    LTAM_ASSIGN_OR_RETURN(Chronon t, cur.Time("time"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    LTAM_ASSIGN_OR_RETURN(LocationId l, graph_->Find(lname));
    Decision d = engine_->CanAccess(s, l, t);
    QueryResult out;
    out.columns = {"subject", "location", "time", "decision"};
    out.rows.push_back({sname, lname, ChrononToString(t), d.ToString()});
    return out;
  }

  // WHEN CAN <subject> ACCESS <location> [IN <composite>]
  if (cur.TryConsume("WHEN")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("CAN"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.Expect("ACCESS"));
    LTAM_ASSIGN_OR_RETURN(std::string lname, cur.Name("location"));
    std::optional<LocationId> scope;
    if (cur.TryConsume("IN")) {
      LTAM_ASSIGN_OR_RETURN(std::string cname, cur.Name("composite"));
      LTAM_ASSIGN_OR_RETURN(LocationId c, graph_->Find(cname));
      scope = c;
    }
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    LTAM_ASSIGN_OR_RETURN(LocationId l, graph_->Find(lname));
    LTAM_ASSIGN_OR_RETURN(IntervalSet windows,
                          engine_->AccessWindows(s, l, scope));
    QueryResult out;
    out.columns = {"window"};
    for (const TimeInterval& iv : windows.intervals()) {
      out.rows.push_back({iv.ToString()});
    }
    return out;
  }

  // AUTHS FOR <subject>
  if (cur.TryConsume("AUTHS")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("FOR"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    QueryResult out;
    out.columns = {"id", "authorization", "origin", "entries-used"};
    for (AuthId id : engine_->AuthorizationsOf(s)) {
      const AuthRecord& rec = auth_db_->record(id);
      out.rows.push_back(
          {std::to_string(id), rec.auth.ToString(*profiles_, *graph_),
           rec.origin == AuthOrigin::kDerived
               ? "derived(r" + std::to_string(rec.source_rule) + ")"
               : "explicit",
           std::to_string(rec.entries_used)});
    }
    return out;
  }

  // WHO CAN ACCESS <location> DURING <interval>
  if (cur.TryConsume("WHO")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("CAN"));
    LTAM_RETURN_IF_ERROR(cur.Expect("ACCESS"));
    LTAM_ASSIGN_OR_RETURN(std::string lname, cur.Name("location"));
    LTAM_RETURN_IF_ERROR(cur.Expect("DURING"));
    LTAM_ASSIGN_OR_RETURN(TimeInterval window, cur.Interval("interval"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(LocationId l, graph_->Find(lname));
    QueryResult out;
    out.columns = {"subject"};
    for (SubjectId s : engine_->WhoCanAccess(l, window)) {
      out.rows.push_back({subj_name(s)});
    }
    return out;
  }

  // ACCESSIBLE FOR <subject> [IN <composite>] /
  // INACCESSIBLE FOR <subject> [IN <composite>]
  bool accessible = false;
  if (cur.TryConsume("ACCESSIBLE")) {
    accessible = true;
  }
  if (accessible || cur.TryConsume("INACCESSIBLE")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("FOR"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    std::optional<LocationId> scope;
    if (cur.TryConsume("IN")) {
      LTAM_ASSIGN_OR_RETURN(std::string cname, cur.Name("composite"));
      LTAM_ASSIGN_OR_RETURN(LocationId c, graph_->Find(cname));
      scope = c;
    }
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    LTAM_ASSIGN_OR_RETURN(std::vector<LocationId> result,
                          accessible ? engine_->AccessibleLocations(s, scope)
                                     : engine_->InaccessibleLocations(s, scope));
    QueryResult out;
    out.columns = {"location"};
    for (LocationId l : result) out.rows.push_back({loc_name(l)});
    return out;
  }

  // ROUTE FOR <subject> FROM <loc> TO <loc> [DURING <interval>]
  if (cur.TryConsume("ROUTE")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("FOR"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.Expect("FROM"));
    LTAM_ASSIGN_OR_RETURN(std::string src_name, cur.Name("location"));
    LTAM_RETURN_IF_ERROR(cur.Expect("TO"));
    LTAM_ASSIGN_OR_RETURN(std::string dst_name, cur.Name("location"));
    TimeInterval window(0, kChrononMax);
    if (cur.TryConsume("DURING")) {
      LTAM_ASSIGN_OR_RETURN(window, cur.Interval("interval"));
    }
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    LTAM_ASSIGN_OR_RETURN(LocationId src, graph_->Find(src_name));
    LTAM_ASSIGN_OR_RETURN(LocationId dst, graph_->Find(dst_name));
    LTAM_ASSIGN_OR_RETURN(AuthorizedRoute route,
                          engine_->FindAuthorizedRoute(s, src, dst, window));
    QueryResult out;
    out.columns = {"step", "location", "grant", "departure"};
    for (size_t i = 0; i < route.route.size(); ++i) {
      out.rows.push_back(
          {std::to_string(i + 1), loc_name(route.route[i]),
           route.grants[i].ToString(),
           i < route.departures.size() ? route.departures[i].ToString()
                                       : "-"});
    }
    return out;
  }

  // WHERE WAS <subject> AT <t>
  if (cur.TryConsume("WHERE")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("WAS"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.Expect("AT"));
    LTAM_ASSIGN_OR_RETURN(Chronon t, cur.Time("time"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    QueryResult out;
    out.columns = {"subject", "time", "location"};
    out.rows.push_back(
        {sname, ChrononToString(t), loc_name(engine_->WhereWas(s, t))});
    return out;
  }

  // OCCUPANTS OF <location> AT <t>
  if (cur.TryConsume("OCCUPANTS")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("OF"));
    LTAM_ASSIGN_OR_RETURN(std::string lname, cur.Name("location"));
    LTAM_RETURN_IF_ERROR(cur.Expect("AT"));
    LTAM_ASSIGN_OR_RETURN(Chronon t, cur.Time("time"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(LocationId l, graph_->Find(lname));
    QueryResult out;
    out.columns = {"subject"};
    for (SubjectId s : engine_->Occupants(l, t)) {
      out.rows.push_back({subj_name(s)});
    }
    return out;
  }

  // CONTACTS OF <subject> DURING <interval> [MIN <k>]
  if (cur.TryConsume("CONTACTS")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("OF"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.Expect("DURING"));
    LTAM_ASSIGN_OR_RETURN(TimeInterval window, cur.Interval("interval"));
    Chronon min_overlap = 1;
    if (cur.TryConsume("MIN")) {
      LTAM_ASSIGN_OR_RETURN(min_overlap, cur.Time("minimum overlap"));
    }
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    QueryResult out;
    out.columns = {"contact", "location", "from", "to"};
    for (const MovementDatabase::Contact& c :
         engine_->Contacts(s, window, min_overlap)) {
      out.rows.push_back({subj_name(c.other), loc_name(c.location),
                          ChrononToString(c.overlap_start),
                          ChrononToString(c.overlap_end)});
    }
    return out;
  }

  // OVERSTAYING AT <t>
  if (cur.TryConsume("OVERSTAYING")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("AT"));
    LTAM_ASSIGN_OR_RETURN(Chronon t, cur.Time("time"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    QueryResult out;
    out.columns = {"subject", "location"};
    for (SubjectId s : engine_->OverstayingAt(t)) {
      out.rows.push_back({subj_name(s),
                          loc_name(movements().CurrentLocation(s))});
    }
    return out;
  }

  // HISTORY OF <subject>
  if (cur.TryConsume("HISTORY")) {
    LTAM_RETURN_IF_ERROR(cur.Expect("OF"));
    LTAM_ASSIGN_OR_RETURN(std::string sname, cur.Name("subject"));
    LTAM_RETURN_IF_ERROR(cur.ExpectEnd());
    LTAM_ASSIGN_OR_RETURN(SubjectId s, profiles_->Find(sname));
    QueryResult out;
    out.columns = {"enter", "exit", "location"};
    for (const Stay& stay : movements().StaysOf(s)) {
      out.rows.push_back({ChrononToString(stay.enter_time),
                          stay.exit_time == kChrononMax
                              ? "(inside)"
                              : ChrononToString(stay.exit_time),
                          loc_name(stay.location)});
    }
    return out;
  }

  return Status::ParseError("unrecognized query: '" + statement + "'");
}

}  // namespace ltam
