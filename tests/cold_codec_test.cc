// Copyright 2026 The LTAM Authors.
// The cold tier's building blocks in isolation: ColdSegment invariants,
// SealCompletedStays / MergeColdSegments semantics, and the columnar
// codec's hostile-input guarantees (truncation at any byte is an error,
// corrupt counts cannot drive allocation, every accepted image satisfies
// the segment invariants).

#include "storage/cold_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/cold_segment.h"
#include "engine/movement_db.h"
#include "test_util.h"

namespace ltam {
namespace {

/// Appends one row; callers keep the (subject, enter, exit, location)
/// sort order themselves.
void AddRow(ColdSegment* seg, SubjectId s, LocationId l, Chronon enter,
            Chronon exit) {
  seg->subjects.push_back(s);
  seg->locations.push_back(l);
  seg->enters.push_back(enter);
  seg->exits.push_back(exit);
}

ColdSegment MakeSegment() {
  ColdSegment seg;
  AddRow(&seg, 1, 4, 10, 20);
  AddRow(&seg, 1, 2, 25, 40);
  AddRow(&seg, 3, 4, 5, 12);
  AddRow(&seg, 7, 9, 100, 1000);
  seg.sealed_events = 7;
  seg.RecomputeBounds();
  return seg;
}

void ExpectSegmentsEqual(const ColdSegment& got, const ColdSegment& want) {
  EXPECT_EQ(got.subjects, want.subjects);
  EXPECT_EQ(got.locations, want.locations);
  EXPECT_EQ(got.enters, want.enters);
  EXPECT_EQ(got.exits, want.exits);
  EXPECT_EQ(got.sealed_events, want.sealed_events);
  EXPECT_EQ(got.min_enter, want.min_enter);
  EXPECT_EQ(got.max_exit, want.max_exit);
}

/// The codec's varint, reimplemented so tests can hand-craft images.
void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

TEST(ColdCodecTest, EmptySegmentRoundTrips) {
  ColdSegment empty;
  empty.sealed_events = 0;
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(empty));
  ASSERT_OK_AND_ASSIGN(ColdSegment decoded, DecodeColdSegment(bytes));
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(decoded.sealed_events, 0u);
  EXPECT_EQ(decoded.min_enter, 0);
  EXPECT_EQ(decoded.max_exit, 0);
}

TEST(ColdCodecTest, PopulatedSegmentRoundTrips) {
  const ColdSegment seg = MakeSegment();
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(seg));
  ASSERT_OK_AND_ASSIGN(ColdSegment decoded, DecodeColdSegment(bytes));
  ExpectSegmentsEqual(decoded, seg);
}

TEST(ColdCodecTest, ExtremeValuesRoundTrip) {
  // Large ids, negative times, zero-length stays, and big gaps all
  // survive the delta/zigzag encoding.
  ColdSegment seg;
  AddRow(&seg, 0, 0, -1000000, -1000000);
  AddRow(&seg, 5, kInvalidLocation - 1, -3, 1);
  AddRow(&seg, kInvalidSubject - 1, 1, kChrononMax - 2, kChrononMax - 1);
  seg.sealed_events = 3;
  seg.RecomputeBounds();
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(seg));
  ASSERT_OK_AND_ASSIGN(ColdSegment decoded, DecodeColdSegment(bytes));
  ExpectSegmentsEqual(decoded, seg);
}

TEST(ColdCodecTest, TruncationAtEveryByteIsAnError) {
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(MakeSegment()));
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<ColdSegment> r = DecodeColdSegment(bytes.substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncated to " << len << " of " << bytes.size()
                         << " bytes decoded as a segment";
  }
  EXPECT_OK(DecodeColdSegment(bytes).status());
}

TEST(ColdCodecTest, TrailingBytesAreAnError) {
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(MakeSegment()));
  EXPECT_FALSE(DecodeColdSegment(bytes + "x").ok());
}

TEST(ColdCodecTest, BitFlipsNeverCrashAndAcceptedImagesAreValid) {
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(MakeSegment()));
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (char mask : {'\x01', '\x80', '\xff'}) {
      std::string corrupted = bytes;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ mask);
      Result<ColdSegment> r = DecodeColdSegment(corrupted);
      if (!r.ok()) continue;
      // Whatever the decoder accepts upholds every segment invariant.
      const ColdSegment& seg = *r;
      ASSERT_EQ(seg.locations.size(), seg.rows());
      ASSERT_EQ(seg.enters.size(), seg.rows());
      ASSERT_EQ(seg.exits.size(), seg.rows());
      for (size_t i = 0; i < seg.rows(); ++i) {
        EXPECT_LE(seg.enters[i], seg.exits[i]);
        EXPECT_LT(seg.exits[i], kChrononMax);
        EXPECT_GE(seg.enters[i], seg.min_enter);
        EXPECT_LE(seg.exits[i], seg.max_exit);
        if (i > 0) {
          EXPECT_LE(seg.subjects[i - 1], seg.subjects[i]);
        }
      }
    }
  }
}

TEST(ColdCodecTest, CorruptRowCountCannotDriveAllocation) {
  // magic + an absurd row count and nothing else: the decoder must
  // reject before reserving anything close to the declared size.
  std::string bytes("LTAMCOL1", 8);
  PutVarint(&bytes, uint64_t{1} << 60);
  EXPECT_FALSE(DecodeColdSegment(bytes).ok());

  // A big count smuggled past the header check must still die at the
  // per-column length validation, not in a reserve.
  std::string padded("LTAMCOL1", 8);
  PutVarint(&padded, uint64_t{1} << 20);  // "rows"
  PutVarint(&padded, 0);                  // sealed events
  PutVarint(&padded, 0);                  // min enter
  PutVarint(&padded, 0);                  // max exit
  PutVarint(&padded, 4);                  // subjects column: 4 bytes
  padded += std::string(1 << 21, '\x01');  // enough file to pass the
                                           // header rows<=remaining test
  EXPECT_FALSE(DecodeColdSegment(padded).ok());
}

TEST(ColdCodecTest, EncoderRejectsInvalidSegments) {
  {
    ColdSegment seg = MakeSegment();
    seg.exits.pop_back();  // Columns not parallel.
    EXPECT_FALSE(EncodeColdSegment(seg).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    std::swap(seg.subjects[0], seg.subjects[3]);  // Not subject-sorted.
    EXPECT_FALSE(EncodeColdSegment(seg).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    seg.exits[1] = kChrononMax;  // Open stay.
    EXPECT_FALSE(EncodeColdSegment(seg).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    seg.exits[1] = seg.enters[1] - 1;  // Ends before it starts.
    EXPECT_FALSE(EncodeColdSegment(seg).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    seg.subjects[3] = kInvalidSubject;
    EXPECT_FALSE(EncodeColdSegment(seg).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    seg.locations[0] = kInvalidLocation;
    EXPECT_FALSE(EncodeColdSegment(seg).ok());
  }
}

TEST(ColdCodecTest, DecoderRejectsMisorderedRowsAndLyingBounds) {
  // The encoder only enforces subject order; within-subject disorder
  // and tampered bounds are the decoder's job to catch.
  {
    ColdSegment seg;
    AddRow(&seg, 1, 2, 50, 60);
    AddRow(&seg, 1, 2, 10, 20);  // Same subject, earlier enter: misordered.
    seg.sealed_events = 2;
    seg.RecomputeBounds();
    ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(seg));
    EXPECT_FALSE(DecodeColdSegment(bytes).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    seg.max_exit += 5;  // Bounds no longer exact.
    ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(seg));
    EXPECT_FALSE(DecodeColdSegment(bytes).ok());
  }
  {
    ColdSegment seg = MakeSegment();
    seg.min_enter -= 1;
    ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(seg));
    EXPECT_FALSE(DecodeColdSegment(bytes).ok());
  }
}

TEST(ColdCodecTest, SaveAndLoadRoundTripThroughAFile) {
  const std::string path = ::testing::TempDir() + "/ltam_cold_codec_file";
  const ColdSegment seg = MakeSegment();
  ASSERT_OK(SaveColdSegment(seg, path));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ColdSegment> loaded,
                       LoadColdSegment(path));
  ExpectSegmentsEqual(*loaded, seg);

  // A torn file (truncated tail) must refuse to load.
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(seg));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadColdSegment(path).ok());
  std::remove(path.c_str());
}

TEST(ColdSegmentTest, MergeConcatenatesSortsAndSumsCounts) {
  auto a = std::make_shared<ColdSegment>();
  AddRow(a.get(), 1, 2, 10, 20);
  AddRow(a.get(), 5, 3, 0, 8);
  a->sealed_events = 3;
  a->RecomputeBounds();
  auto b = std::make_shared<ColdSegment>();
  AddRow(b.get(), 1, 4, 30, 45);  // Subject 1's later stays: segment b
  AddRow(b.get(), 2, 2, 7, 9);    // is later in the sequence.
  b->sealed_events = 4;
  b->RecomputeBounds();

  std::shared_ptr<const ColdSegment> merged = MergeColdSegments({a, b});
  ASSERT_EQ(merged->rows(), 4u);
  EXPECT_EQ(merged->sealed_events, 7u);
  EXPECT_EQ(merged->subjects, (std::vector<SubjectId>{1, 1, 2, 5}));
  EXPECT_EQ(merged->enters, (std::vector<Chronon>{10, 30, 7, 0}));
  EXPECT_EQ(merged->exits, (std::vector<Chronon>{20, 45, 9, 8}));
  EXPECT_EQ(merged->min_enter, 0);
  EXPECT_EQ(merged->max_exit, 45);
  // The merge output re-encodes cleanly (it is itself a valid segment).
  ASSERT_OK_AND_ASSIGN(std::string bytes, EncodeColdSegment(*merged));
  ASSERT_OK_AND_ASSIGN(ColdSegment decoded, DecodeColdSegment(bytes));
  ExpectSegmentsEqual(decoded, *merged);
}

TEST(ColdSegmentTest, SealMovesCompletedStaysAndPreservesAnswers) {
  MovementDatabase tiered;
  MovementDatabase unbounded;
  auto record = [&](Chronon t, SubjectId s, LocationId l) {
    ASSERT_OK(tiered.RecordMovement(t, s, l));
    ASSERT_OK(unbounded.RecordMovement(t, s, l));
  };
  // Subject 0: two completed stays then leaves. Subject 1: one completed
  // stay, then an open one. Subject 2: still in its first (open) stay.
  record(10, 0, 3);
  record(20, 0, 4);
  record(30, 0, kInvalidLocation);
  record(12, 1, 5);
  record(40, 1, 6);
  record(15, 2, 7);

  const uint64_t total_before = tiered.total_events();
  const size_t hot_before = tiered.history().size();
  std::shared_ptr<const ColdSegment> seg = tiered.SealCompletedStays();
  ASSERT_NE(seg, nullptr);
  // Completed: both of subject 0's stays and subject 1's first. Open
  // stays (1 in 6, 2 in 7) stay hot as synthetic opening events.
  EXPECT_EQ(seg->rows(), 3u);
  EXPECT_EQ(tiered.history().size(), 2u);
  EXPECT_LT(tiered.history().size(), hot_before);
  EXPECT_EQ(tiered.total_events(), total_before);
  EXPECT_EQ(tiered.cold_events(), seg->sealed_events);

  // Every historical and current answer matches the unbounded twin.
  for (Chronon t = 0; t <= 50; ++t) {
    for (SubjectId s = 0; s < 3; ++s) {
      EXPECT_EQ(tiered.LocationAt(s, t), unbounded.LocationAt(s, t))
          << "subject " << s << " at t=" << t;
    }
    for (LocationId l = 3; l <= 7; ++l) {
      EXPECT_EQ(tiered.OccupantsAt(l, t), unbounded.OccupantsAt(l, t))
          << "location " << l << " at t=" << t;
    }
  }
  for (SubjectId s = 0; s < 3; ++s) {
    EXPECT_EQ(tiered.CurrentLocation(s), unbounded.CurrentLocation(s));
  }

  // Nothing new completed: a second seal is a no-op.
  EXPECT_EQ(tiered.SealCompletedStays(), nullptr);
  EXPECT_EQ(tiered.total_events(), total_before);

  // Sealing is transparent to continued writes: close subject 2's stay,
  // seal again, answers still match.
  record(60, 2, kInvalidLocation);
  std::shared_ptr<const ColdSegment> second = tiered.SealCompletedStays();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->rows(), 1u);
  for (Chronon t = 0; t <= 70; t += 5) {
    for (SubjectId s = 0; s < 3; ++s) {
      EXPECT_EQ(tiered.LocationAt(s, t), unbounded.LocationAt(s, t));
    }
  }
}

TEST(ColdSegmentTest, SealedFloorRejectsWritesOlderThanSealedHistory) {
  MovementDatabase tiered;
  MovementDatabase unbounded;
  ASSERT_OK(tiered.RecordMovement(10, 0, 3));
  ASSERT_OK(tiered.RecordMovement(20, 0, kInvalidLocation));
  ASSERT_OK(unbounded.RecordMovement(10, 0, 3));
  ASSERT_OK(unbounded.RecordMovement(20, 0, kInvalidLocation));
  ASSERT_NE(tiered.SealCompletedStays(), nullptr);
  // An event older than the sealed history is rejected exactly as the
  // unbounded database rejects out-of-order events.
  EXPECT_EQ(tiered.RecordMovement(5, 0, 4).ok(),
            unbounded.RecordMovement(5, 0, 4).ok());
  // And a properly ordered successor is accepted by both.
  EXPECT_OK(tiered.RecordMovement(25, 0, 4));
  EXPECT_OK(unbounded.RecordMovement(25, 0, 4));
}

}  // namespace
}  // namespace ltam
