// Copyright 2026 The LTAM Authors.
// Authorization and request workload generators.
//
// Produces reproducible authorization databases and access-request
// streams over a generated graph: the inputs for the scaling benchmarks
// (Na = authorizations per location) and the engine-throughput
// benchmarks.

#ifndef LTAM_SIM_WORKLOAD_H_
#define LTAM_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/auth_database.h"
#include "core/decision.h"
#include "engine/access_control_engine.h"
#include "engine/events.h"
#include "graph/multilevel_graph.h"
#include "profile/user_profile.h"
#include "storage/snapshot.h"
#include "util/random.h"

namespace ltam {

/// Parameters for GenerateAuthorizations.
struct AuthWorkloadOptions {
  /// Authorizations created per (subject, location) pair that is covered.
  uint32_t auths_per_location = 1;
  /// Probability that a given (subject, location) pair is covered at all.
  double coverage = 1.0;
  /// Entry durations are [s, s+len] with s uniform in [0, horizon) and
  /// len uniform in [min_len, max_len].
  Chronon horizon = 1000;
  Chronon min_len = 10;
  Chronon max_len = 100;
  /// Exit durations extend the entry duration by uniform [0, max_slack].
  Chronon max_slack = 50;
  /// Max entry count (n uniform in [1, max_entries]; 0 = unlimited).
  int64_t max_entries = 0;
};

/// Registers `count` subjects named "u<i>" in `profiles`.
std::vector<SubjectId> GenerateSubjects(UserProfileDatabase* profiles,
                                        uint32_t count);

/// Fills `db` with random authorizations for every subject over every
/// primitive location of `graph`, per `options`. Returns the number
/// added.
size_t GenerateAuthorizations(const MultilevelLocationGraph& graph,
                              const std::vector<SubjectId>& subjects,
                              const AuthWorkloadOptions& options, Rng* rng,
                              AuthorizationDatabase* db);

/// A generated access-request stream, time-sorted.
std::vector<AccessRequest> GenerateRequests(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t count, Chronon horizon,
    Rng* rng);

/// Parameters for GenerateEventBatches (the batch-pipeline workload).
struct BatchWorkloadOptions {
  /// Events per batch (the final batch may be smaller).
  size_t batch_size = 256;
  /// Probability that a subject's next event is an exit request (only
  /// emitted when the generator believes the subject is inside).
  double exit_fraction = 0.1;
  /// Probability that a subject's next event is a tracking observation
  /// instead of an entry request.
  double observe_fraction = 0.1;
  /// Per-subject clocks advance by uniform [1, max_step] per event, so
  /// every subject's events are strictly increasing in time — the
  /// ordering EvaluateBatch and the movement database require.
  Chronon max_step = 5;
};

/// Generates `total_events` events split into batches for the sharded
/// pipeline. Each subject's events are strictly increasing in time, both
/// within and across batches, and each batch is sorted by (time, subject)
/// so a sequential event-by-event replay sees the same per-subject order
/// as the sharded engine. Targets are random primitive locations.
std::vector<std::vector<AccessEvent>> GenerateEventBatches(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t total_events,
    const BatchWorkloadOptions& options, Rng* rng);

/// Outcome of replaying an event-batch stream through one sequential
/// AccessControlEngine — the reference the sharded and durable pipelines
/// are equivalence-tested (and benchmarked) against.
struct SequentialReplay {
  /// One decision per event, flattened in batch order (the same mapping
  /// ApplyAccessEvent uses: exits grant/deny, observations grant).
  std::vector<Decision> decisions;
  /// Alerts the reference engine raised, in raise order.
  std::vector<Alert> alerts;
  /// Total events replayed.
  size_t events = 0;
};

/// Replays `batches` event-by-event through a fresh sequential engine
/// over the given stores (a private MovementDatabase is used; `auth_db`
/// ledger state is mutated exactly as a live run would).
SequentialReplay ReplayBatchesSequential(
    const MultilevelLocationGraph& graph, AuthorizationDatabase* auth_db,
    const UserProfileDatabase& profiles,
    const std::vector<std::vector<AccessEvent>>& batches,
    const EngineOptions& options = {});

/// Like GenerateAuthorizations, but over an explicit location subset
/// (e.g. one tenant's rooms) instead of every primitive of a graph.
size_t GenerateAuthorizationsOver(const std::vector<LocationId>& locations,
                                  const std::vector<SubjectId>& subjects,
                                  const AuthWorkloadOptions& options, Rng* rng,
                                  AuthorizationDatabase* db);

// --- Scenario families (the open-loop load harness's worlds) ----------------
//
// Each family is a deterministic (family, ScenarioOptions)-seeded world
// plus event stream, built for a different production question:
//
//  - kSurge: stadium/airport ingress — almost all events hit a handful
//    of hot entry locations, and arrivals come in on/off bursts (the
//    schedule shape is carried in burst_duty/burst_period_ms for the
//    load generator to honor).
//  - kContactSweep: contact-tracing under load — subjects concentrate
//    in shared rooms so contact graphs are dense, and a pool of
//    cross-shard CONTACTS OF queries is meant to run concurrently with
//    ingest (query_fraction of scheduled arrivals).
//  - kPolicyChurn: Mutate under load — authorizations start sparse and
//    a mutation schedule grants more between frames, exercising the
//    facade's between-batches mutation window while traffic flows.
//  - kMultiTenant: many disjoint subject universes in one runtime —
//    subjects, authorizations, and movement stay inside their tenant's
//    building; nothing crosses tenants.
//  - kReplication: read-heavy serving against a replica fleet — ingest
//    flows to the primary while a dense point-in-time query pool is
//    meant to be answered by read replicas (ltam_load --query-host).
//    No mutation schedule: only WAL-logged events replicate, so a
//    mutating family would diverge primary and replica by design.
//  - kSoak: sustained steady-state ingest for retention runs — exits
//    dominate the mix so stays complete (and seal into cold segments)
//    instead of accumulating open, arrivals are steady (no bursts),
//    and a light point-in-time read mix keeps queries answering over
//    the hot+cold tiers while the server checkpoints and compacts.
//    The signal is a plateau: resident bytes and checkpoint latency
//    must stop growing once retention starts dropping history.
//
// The same world must be constructible on both sides of a TCP
// connection (ltam_serve boots the world, ltam_load generates the
// traffic), so construction is deterministic given (family, options):
// subject and location ids agree by construction.

enum class ScenarioFamily : uint8_t {
  kSurge = 0,
  kContactSweep = 1,
  kPolicyChurn = 2,
  kMultiTenant = 3,
  kReplication = 4,
  kSoak = 5,
};

const char* ScenarioFamilyToString(ScenarioFamily family);
Result<ScenarioFamily> ParseScenarioFamily(const std::string& name);

/// Knobs shared by every family (family-specific ones are documented on
/// their field). The defaults make a small world suitable for tests;
/// the load driver scales total_events to rate * duration.
struct ScenarioOptions {
  uint32_t subjects = 96;
  /// Disjoint event substreams (one per load-generator connection).
  /// Subjects are partitioned round-robin across streams, so frames of
  /// different streams can be coalesced into one runtime batch without
  /// violating per-subject time order.
  uint32_t streams = 1;
  /// Total events across all streams.
  size_t total_events = 4096;
  /// Events per frame (one frame = one scheduled ApplyBatch arrival).
  size_t events_per_frame = 32;
  uint64_t seed = 2026;
  /// kMultiTenant: number of tenant buildings (subject universes).
  uint32_t tenants = 4;
  /// kSurge: hot entry locations and the fraction of events they draw.
  uint32_t hot_locations = 2;
  double hot_fraction = 0.85;
  /// kContactSweep: fraction of scheduled arrivals that are queries.
  /// kReplication doubles this (capped at 0.9) — it is the read-heavy
  /// family by construction.
  double query_fraction = 0.25;
  /// kPolicyChurn: one mutation before every N-th frame (0 disables).
  size_t mutate_every_frames = 8;
};

/// One policy mutation of a kPolicyChurn run: before global frame round
/// `before_frame` (see FlattenScenarioFrames), grant `subject` a fresh
/// authorization at `location` valid over [entry_start, entry_end] /
/// exit [entry_start, exit_end].
struct ScenarioMutation {
  size_t before_frame = 0;
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;
  Chronon entry_start = 0;
  Chronon entry_end = 0;
  Chronon exit_end = 0;
};

/// A generated scenario: the world (to boot a runtime or a server), the
/// per-stream event frames (to drive it), and the family's read/control
/// mix. Note sim/movement_sim.h has an unrelated `Scenario` (ground
/// truth for detection-rate experiments) — this one is the load
/// harness's unit.
struct LoadScenario {
  ScenarioFamily family = ScenarioFamily::kSurge;
  /// graph + profiles + auth_db (movements empty, rules empty).
  SystemState initial;
  /// Engine knobs the world is built for: adjacency enforcement off
  /// (the streams are random room visits, not adjacency-aware walks,
  /// so kNotAdjacent would drown the coverage-driven admit/deny mix)
  /// and per-denial alerting off (denial-heavy families would measure
  /// the alert path, not the decision path). Boot the runtime with
  /// these for the mix the family documents.
  EngineOptions engine;
  std::vector<SubjectId> subjects;
  /// streams[c][f] is stream c's f-th frame. Subjects are disjoint
  /// across streams; within a stream every subject's events are
  /// strictly increasing in time across frames.
  std::vector<std::vector<std::vector<AccessEvent>>> streams;
  /// Query-language statements to interleave with ingest (empty unless
  /// the family has a read mix); query_fraction of scheduled arrivals
  /// should draw from this pool round-robin.
  std::vector<std::string> queries;
  double query_fraction = 0.0;
  /// kPolicyChurn: mutations in ascending before_frame order.
  std::vector<ScenarioMutation> mutations;
  /// Arrival-schedule shape: burst_period_ms == 0 means steady arrivals;
  /// otherwise arrivals are confined to the first burst_duty of every
  /// burst_period_ms window at burst-compensated rate (same mean rate).
  double burst_duty = 1.0;
  uint64_t burst_period_ms = 0;

  /// Events across all streams.
  size_t total_events = 0;
};

/// Builds the family's world and event streams. Deterministic given
/// (family, options) — including across processes, so a server booting
/// the world and a load generator booting the traffic agree on every
/// subject/location id. InvalidArgument for degenerate options (zero
/// subjects/streams, more streams than subjects, ...).
Result<LoadScenario> GenerateLoadScenario(ScenarioFamily family,
                                          const ScenarioOptions& options);

/// The scenario's frames in the canonical global round order: round r
/// is streams[0][r], streams[1][r], ... (streams exhausted earlier are
/// skipped). ScenarioMutation::before_frame indexes this sequence. This
/// is the order a local replay applies — and the equivalence class the
/// server's coalescer must land in.
std::vector<std::vector<AccessEvent>> FlattenScenarioFrames(
    const LoadScenario& scenario);

class AccessRuntime;

/// Applies one churn mutation through the runtime's Mutate window:
/// registers the authorization grant described by `m`. Every backend
/// applying the same mutations at the same frame boundaries stays
/// byte-identical in its decision stream.
Status ApplyScenarioMutation(AccessRuntime* runtime,
                             const ScenarioMutation& m);

}  // namespace ltam

#endif  // LTAM_SIM_WORKLOAD_H_
