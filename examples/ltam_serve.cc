// Copyright 2026 The LTAM Authors.
//
// ltam_serve: the LTAM enforcement runtime as a network service. Loads
// a policy script (or the built-in demo policy) into an AccessRuntime,
// derives the scripted rules, and serves the wire protocol on TCP:
// remote clients stream access events (coalesced across connections
// into shared batches) and movement queries, and get back the same
// decisions, alerts, and answers a local caller would see.
//
// Run: ./build/examples/ltam_serve [flags]
//   --port=N          TCP port (default 7447; 0 picks one and prints it)
//   --host=ADDR       listen address (default 127.0.0.1)
//   --shards=N        worker shards for the batch pipeline (default 1)
//   --io-threads=N    epoll I/O loops; connections are spread across
//                     them round-robin (default 1)
//   --durable=DIR     crash-safe runtime rooted at DIR (must exist)
//   --policy=FILE     policy script (default: built-in demo policy)
//   --scenario=NAME   boot a load-scenario world instead of a policy
//                     (surge|contact|churn|tenant|replication);
//                     ltam_load pointed
//                     at this server with the same scenario flags
//                     generates traffic for exactly this world
//   --scenario-seed=N      scenario world seed (default 2026)
//   --scenario-subjects=N  scenario subject count (default 96)
//   --scenario-events=N    scenario total events (default 4096; sizes
//                          the authorization horizon, so it must match
//                          the load driver)
//   --scenario-tenants=N   tenant count for --scenario=tenant
//   --max-batch=N     per-ApplyBatch event ceiling (default 65536)
//   --sync-mode=M     durable write path: batch (fsync per batch, the
//                     default), pipelined (per-shard log threads batch
//                     fsyncs across merged batches), interval (timed
//                     fsyncs)
//   --pipeline-depth=N   pipelined: batches per fsync (default 4)
//   --sync-interval-ms=N interval: fsync cadence (default 5)
//   --wal-segment-mb=N   rotate WAL segments at N MiB (default 64)
//   --retention-horizon-s=N  drop sealed history whose stays ended
//                          more than N chronons (~seconds of stream
//                          time) before the newest event, judged at
//                          each checkpoint. Requires --durable with
//                          --shards >= 2; implies
//                          --retention-hot-events=4096 unless set
//   --retention-hot-events=N seal a shard's history into a columnar
//                          cold segment once it exceeds N hot events
//                          (0 = never seal, the default)
//   --metrics-dump-s=N     dump a metrics summary to stdout every N
//                          seconds (0 = never, the default); the same
//                          numbers are always scrapable over the wire
//                          via `ltam_shell metrics`
//   --trace-threshold-us=N log a per-stage span timeline for any ingest
//                          frame slower than N microseconds end-to-end
//                          (rate-limited; 0 disables, the default)
//   --log-level=L     debug|info|warning|error (default info)
//   --replica-of=H:P  serve as a read-only replica following the
//                     primary at H:P: writes are refused with a
//                     redirect, reads answer from the replicated state.
//                     Requires --durable and the primary's --shards
//                     value, and BOTH sides must boot the same
//                     --policy/--scenario flags (the stream carries
//                     only WAL deltas, not the initial world). A
//                     `promote` through ltam_shell turns this server
//                     into a primary (epoch-fenced against its old
//                     upstream); `repoint` re-targets the upstream.
//
// Shutdown discipline (shared with ltam_shell): SIGINT/SIGTERM stop the
// server, then a durable runtime checkpoints before the process exits,
// so the next open recovers the serving state instead of replaying the
// whole WAL tail.

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "replication/replica_link.h"
#include "runtime/access_runtime.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/shutdown.h"
#include "sim/workload.h"
#include "storage/policy_script.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace {

/// Splits "host:port"; false on malformed input.
bool ParseEndpoint(const std::string& arg, std::string* host,
                   uint16_t* port) {
  size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size()) {
    return false;
  }
  *host = arg.substr(0, colon);
  int parsed = std::atoi(arg.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) return false;
  *port = static_cast<uint16_t>(parsed);
  return true;
}

/// What the failover hooks act on: the upstream link (promote retires
/// it, repoint re-targets it) and the runtime behind the server's lock.
struct ReplicaControl {
  std::mutex mu;
  std::unique_ptr<ltam::ReplicaLink> link;
  ltam::AccessRuntime* runtime = nullptr;
  std::shared_mutex* runtime_mu = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ltam;  // NOLINT: example brevity.

  InstallShutdownSignalHandlers();

  std::string policy_path;
  std::string upstream_host;
  uint16_t upstream_port = 0;
  bool replica = false;
  std::string scenario_name;
  ScenarioOptions scenario_options;
  uint32_t metrics_dump_s = 0;
  // One registry for the whole process: the server's ingest stages, the
  // runtime's apply/checkpoint, the WAL fsyncs, and replica lag all land
  // here, so one scrape shows the full request path.
  MetricsRegistry metrics;
  RuntimeOptions runtime_options;
  runtime_options.max_batch_events = kMaxWireBatchEvents;
  runtime_options.metrics = &metrics;
  ServerOptions server_options;
  server_options.port = 7447;
  server_options.metrics = &metrics;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](size_t prefix) { return arg.substr(prefix); };
    if (arg.rfind("--port=", 0) == 0) {
      server_options.port =
          static_cast<uint16_t>(std::atoi(value(7).c_str()));
    } else if (arg.rfind("--host=", 0) == 0) {
      server_options.host = value(7);
    } else if (arg.rfind("--shards=", 0) == 0) {
      runtime_options.num_shards = static_cast<uint32_t>(
          std::max(1, std::atoi(value(9).c_str())));
    } else if (arg.rfind("--io-threads=", 0) == 0) {
      server_options.io_threads = static_cast<uint32_t>(
          std::max(1, std::atoi(value(13).c_str())));
    } else if (arg.rfind("--durable=", 0) == 0) {
      runtime_options.durable_dir = value(10);
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy_path = value(9);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario_name = value(11);
    } else if (arg.rfind("--scenario-seed=", 0) == 0) {
      scenario_options.seed =
          static_cast<uint64_t>(std::atoll(value(16).c_str()));
    } else if (arg.rfind("--scenario-subjects=", 0) == 0) {
      scenario_options.subjects = static_cast<uint32_t>(
          std::max(1, std::atoi(value(20).c_str())));
    } else if (arg.rfind("--scenario-events=", 0) == 0) {
      scenario_options.total_events =
          static_cast<size_t>(std::atoll(value(18).c_str()));
    } else if (arg.rfind("--scenario-tenants=", 0) == 0) {
      scenario_options.tenants = static_cast<uint32_t>(
          std::max(1, std::atoi(value(19).c_str())));
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      runtime_options.max_batch_events =
          static_cast<size_t>(std::atoll(value(12).c_str()));
    } else if (arg.rfind("--retention-horizon-s=", 0) == 0) {
      runtime_options.retention.horizon =
          static_cast<Chronon>(std::max(0LL, std::atoll(value(22).c_str())));
    } else if (arg.rfind("--retention-hot-events=", 0) == 0) {
      runtime_options.retention.max_hot_events =
          static_cast<size_t>(std::max(0LL, std::atoll(value(23).c_str())));
    } else if (arg.rfind("--sync-mode=", 0) == 0) {
      Result<SyncMode> mode = ParseSyncMode(value(12));
      if (!mode.ok()) {
        std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 2;
      }
      runtime_options.durability.mode = *mode;
    } else if (arg.rfind("--pipeline-depth=", 0) == 0) {
      runtime_options.durability.pipeline_depth =
          static_cast<size_t>(std::max(1, std::atoi(value(17).c_str())));
    } else if (arg.rfind("--sync-interval-ms=", 0) == 0) {
      runtime_options.durability.sync_interval_ms = static_cast<uint32_t>(
          std::max(1, std::atoi(value(19).c_str())));
    } else if (arg.rfind("--wal-segment-mb=", 0) == 0) {
      runtime_options.durability.segment_max_bytes =
          static_cast<size_t>(std::max(1, std::atoi(value(17).c_str())))
          << 20;
    } else if (arg.rfind("--metrics-dump-s=", 0) == 0) {
      metrics_dump_s = static_cast<uint32_t>(
          std::max(0, std::atoi(value(17).c_str())));
    } else if (arg.rfind("--trace-threshold-us=", 0) == 0) {
      server_options.trace_threshold_us =
          static_cast<uint64_t>(std::max(0, std::atoi(value(21).c_str())));
    } else if (arg.rfind("--log-level=", 0) == 0) {
      Result<LogLevel> level = ParseLogLevel(value(12));
      if (!level.ok()) {
        std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
        return 2;
      }
      SetLogLevel(*level);
    } else if (arg.rfind("--replica-of=", 0) == 0) {
      if (!ParseEndpoint(value(13), &upstream_host, &upstream_port)) {
        std::fprintf(stderr, "--replica-of wants HOST:PORT\n");
        return 2;
      }
      replica = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: ltam_serve [--port=N] "
                   "[--host=ADDR] [--shards=N] [--io-threads=N] "
                   "[--durable=DIR] "
                   "[--policy=FILE] [--scenario=NAME] [--scenario-seed=N] "
                   "[--scenario-subjects=N] [--scenario-events=N] "
                   "[--scenario-tenants=N] "
                   "[--max-batch=N] [--sync-mode=M] "
                   "[--pipeline-depth=N] [--sync-interval-ms=N] "
                   "[--wal-segment-mb=N] [--retention-horizon-s=N] "
                   "[--retention-hot-events=N] [--metrics-dump-s=N] "
                   "[--trace-threshold-us=N] [--log-level=L] "
                   "[--replica-of=HOST:PORT]\n",
                   arg.c_str());
      return 2;
    }
  }

  // A horizon with no seal threshold would be inert (retention drops
  // only sealed segments); default the threshold rather than reject.
  if (runtime_options.retention.horizon > 0 &&
      runtime_options.retention.max_hot_events == 0) {
    runtime_options.retention.max_hot_events = 4096;
  }

  SystemState initial;
  if (!scenario_name.empty()) {
    if (!policy_path.empty()) {
      std::fprintf(stderr, "--policy and --scenario are exclusive\n");
      return 2;
    }
    Result<ScenarioFamily> family = ParseScenarioFamily(scenario_name);
    if (!family.ok()) {
      std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
      return 2;
    }
    Result<LoadScenario> scenario =
        GenerateLoadScenario(*family, scenario_options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario error: %s\n",
                   scenario.status().ToString().c_str());
      return 2;
    }
    initial = std::move(scenario->initial);
    runtime_options.engine = scenario->engine;
  } else {
    Result<SystemState> state_or =
        policy_path.empty() ? ParsePolicyScript(DemoPolicyScript())
                            : LoadPolicyScript(policy_path);
    if (!state_or.ok()) {
      std::fprintf(stderr, "policy error: %s\n",
                   state_or.status().ToString().c_str());
      return 1;
    }
    initial = std::move(state_or).ValueOrDie();
  }
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(initial), runtime_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "runtime error: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<AccessRuntime> runtime = std::move(opened).ValueOrDie();
  Status rules = RegisterAndDeriveScriptedRules(runtime.get());
  if (!rules.ok()) {
    std::fprintf(stderr, "rule error: %s\n", rules.ToString().c_str());
    return 1;
  }

  ReplicaControl control;
  if (replica) {
    Status demoted = runtime->DemoteToReplica();
    if (!demoted.ok()) {
      std::fprintf(stderr, "replica error: %s\n", demoted.ToString().c_str());
      return 1;
    }
    // Advertise the upstream in write refusals so clients re-dial the
    // primary instead of failing; the hooks below keep it current
    // across repoints and clear it on promotion.
    runtime->SetPrimaryRedirect(upstream_host + ":" +
                                std::to_string(upstream_port));
    server_options.promote_hook = [&control]() -> Result<uint64_t> {
      // Retire the upstream link FIRST (outside the runtime lock — the
      // link thread needs it to finish an in-flight apply), then bump
      // and persist the epoch: from that instant every frame the old
      // primary ships is provably stale.
      std::unique_ptr<ReplicaLink> link;
      {
        std::lock_guard<std::mutex> lock(control.mu);
        link = std::move(control.link);
      }
      if (link != nullptr) link->Stop();
      std::unique_lock<std::shared_mutex> wlock(*control.runtime_mu);
      Result<uint64_t> epoch = control.runtime->Promote();
      // This node IS the primary now — refusals (none should fire, but
      // a demote-reopen could) must stop pointing clients elsewhere.
      if (epoch.ok()) control.runtime->SetPrimaryRedirect("");
      return epoch;
    };
    server_options.repoint_hook = [&control](const std::string& host,
                                             uint16_t port) -> Status {
      std::lock_guard<std::mutex> lock(control.mu);
      if (control.link == nullptr) {
        return Status::FailedPrecondition(
            "not following an upstream (already promoted?)");
      }
      control.link->Repoint(host, port);
      // Refusal redirects must chase the link: after a failover the
      // survivor's clients should be handed the NEW primary.
      std::unique_lock<std::shared_mutex> wlock(*control.runtime_mu);
      control.runtime->SetPrimaryRedirect(host + ":" +
                                          std::to_string(port));
      return Status::OK();
    };
  }

  ServiceServer server(runtime.get(), server_options);
  control.runtime = runtime.get();
  control.runtime_mu = &server.runtime_mutex();
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server error: %s\n", started.ToString().c_str());
    return 1;
  }
  if (replica) {
    auto link = std::make_unique<ReplicaLink>(
        runtime.get(), &server.runtime_mutex(), upstream_host, upstream_port);
    link->Start();
    std::lock_guard<std::mutex> lock(control.mu);
    control.link = std::move(link);
  }
  RuntimeStats stats = runtime->Stats();
  std::printf(
      "ltam_serve: listening on %s:%u (%u shard%s, %u io-thread%s, %s, "
      "%s sync)\n",
      server_options.host.c_str(), server.bound_port(), stats.num_shards,
      stats.num_shards == 1 ? "" : "s", server_options.io_threads,
      server_options.io_threads == 1 ? "" : "s",
      stats.durable ? "durable" : "in-memory",
      SyncModeToString(runtime_options.durability.mode));
  if (replica) {
    std::printf("ltam_serve: replica of %s:%u (epoch %llu, read-only)\n",
                upstream_host.c_str(), upstream_port,
                static_cast<unsigned long long>(stats.replication_epoch));
  }
  if (!scenario_name.empty()) {
    std::printf("ltam_serve: scenario %s (seed=%llu subjects=%u events=%zu)\n",
                scenario_name.c_str(),
                static_cast<unsigned long long>(scenario_options.seed),
                scenario_options.subjects, scenario_options.total_events);
  }
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM; the handler latches the flag and this
  // loop notices within a beat. The same loop drives the optional
  // periodic metrics dump (naps are 50ms, so the cadence is honest to
  // within one beat).
  uint64_t naps = 0;
  const uint64_t naps_per_dump =
      metrics_dump_s > 0 ? metrics_dump_s * 20ull : 0;
  while (!ShutdownRequested()) {
    struct timespec nap = {0, 50 * 1000 * 1000};  // 50ms.
    nanosleep(&nap, nullptr);
    if (naps_per_dump != 0 && ++naps % naps_per_dump == 0) {
      std::fputs(MetricsSummaryText(metrics.Snapshot()).c_str(), stdout);
      std::fflush(stdout);
    }
  }

  std::printf("ltam_serve: shutting down\n");
  {
    std::unique_ptr<ReplicaLink> link;
    {
      std::lock_guard<std::mutex> lock(control.mu);
      link = std::move(control.link);
    }
    if (link != nullptr) link->Stop();
  }
  server.Stop();
  if (!CheckpointBeforeExit(runtime.get()).ok()) return 1;
  std::printf("ltam_serve: bye\n");
  return 0;
}
