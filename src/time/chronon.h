// Copyright 2026 The LTAM Authors.
// The LTAM time domain.
//
// Following Section 3.1 of the paper (which follows Bertino et al.'s TAM),
// time is discrete: a *chronon* is the smallest indivisible unit of time and
// a *time unit* is a fixed number of chronons. LTAM represents instants as
// 64-bit chronon counts from an application-defined epoch.

#ifndef LTAM_TIME_CHRONON_H_
#define LTAM_TIME_CHRONON_H_

#include <cstdint>
#include <limits>

namespace ltam {

/// A time instant, measured in chronons since the epoch.
using Chronon = int64_t;

/// Sentinel for "+infinity" — used for open-ended intervals such as the
/// default exit duration [tis, +inf] (Definition 4).
inline constexpr Chronon kChrononMax =
    std::numeric_limits<Chronon>::max();

/// The earliest representable instant. The paper's access-request duration
/// for reachability analysis is [0, +inf) (Definition 8), so 0 is the
/// conventional origin; negative chronons are still legal instants.
inline constexpr Chronon kChrononMin =
    std::numeric_limits<Chronon>::min();

/// Saturating addition on chronons: adding to +/-infinity keeps it there
/// and overflow clamps, so interval arithmetic involving open ends is safe.
inline Chronon ChrononAdd(Chronon a, Chronon b) {
  if (a > 0 && b > kChrononMax - a) return kChrononMax;
  if (a < 0 && b < kChrononMin - a) return kChrononMin;
  return a + b;
}

/// Saturating subtraction (a - b).
inline Chronon ChrononSub(Chronon a, Chronon b) {
  if (b == kChrononMin) return kChrononMax;  // a - (-inf) saturates high.
  return ChrononAdd(a, -b);
}

}  // namespace ltam

#endif  // LTAM_TIME_CHRONON_H_
