// Copyright 2026 The LTAM Authors.
// ltam-serve wire protocol: length-prefixed, versioned binary frames.
//
// Every message on the wire is one frame:
//
//   magic      u32le  0x4D41544C ("LTAM")
//   version    u8     kWireVersion
//   type       u8     MessageType
//   reserved   u16le  must be zero
//   request_id u32le  echoed verbatim in the response (pipelining demux)
//   length     u32le  payload byte count, <= kMaxFramePayload
//   payload    <length> bytes, encoding per MessageType
//
// Requests cover the whole AccessRuntime event/read surface — ApplyBatch,
// Apply, ApplyFix, Query (a query-language string answered over the
// MovementView), Checkpoint, Stats, Ping — and responses carry decisions,
// drained alerts, the batch durability outcome, query tables, runtime
// stats, or a structured error mapped from Status. One frame — AlertPush —
// travels server-to-client outside any request: the shutdown drain of
// alerts no response could carry.
//
// Decoding follows the storage/event_log.h discipline: every integer is
// bounds-checked, every enum value validated, every string length checked
// against the remaining payload before it is read, and a payload must be
// consumed exactly — a truncated, oversized, or corrupt frame surfaces as
// a ParseError, never as a crash, an over-read, or an id wrapped into
// nonsense (tests/service_protocol_fuzz_test.cc hammers this contract).

#ifndef LTAM_SERVICE_PROTOCOL_H_
#define LTAM_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/events.h"
#include "query/query_language.h"
#include "runtime/access_runtime.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace ltam {

/// Protocol version this build speaks. Frames with any other version are
/// rejected — that rejection is the ONLY compatibility mechanism, so any
/// payload-shape change must bump this. v1 was the PR-4 protocol; v2
/// added the durability watermark to batch results and the
/// watermark/WAL-failure fields to stats results; v3 added the per-shard
/// watermark list to stats results and the alert-push frame; v4 added
/// the replication frames (replica-hello/welcome, segment-chunk,
/// watermark-advance, promote, repoint); v5 added the metrics frames
/// (telemetry-registry scrape, structured or Prometheus text); v6 added
/// the tiered-storage fields (cold segments/bytes, dropped events,
/// compaction runs, checkpoint dirty segments) to stats results and the
/// structured primary endpoint in replica write refusals.
inline constexpr uint8_t kWireVersion = 6;

/// "LTAM" as a little-endian u32 ('L' is the first byte on the wire).
inline constexpr uint32_t kWireMagic = 0x4D41544Cu;

/// Hard ceiling on one frame's payload. Large enough for a 64k-event
/// batch or a wide query table; small enough that a corrupt length field
/// can never drive allocation.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

/// Protocol-level ceiling on events per ApplyBatch frame (a server may
/// enforce a tighter one via RuntimeOptions::max_batch_events).
inline constexpr uint32_t kMaxWireBatchEvents = 1u << 16;

/// Frame header size on the wire.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Every message type of the protocol. Requests and responses share the
/// numbering space; responses start at 32.
enum class MessageType : uint8_t {
  // Requests.
  kPing = 1,
  kApply = 2,
  kApplyBatch = 3,
  kApplyFix = 4,
  kQuery = 5,
  kCheckpoint = 6,
  kStats = 7,
  /// A replica subscribing to the primary's log stream: carries the
  /// replica's replication epoch and per-shard resume positions.
  kReplicaHello = 8,
  /// Promote a replica server to primary (bumps + persists its
  /// replication epoch, stops its upstream link, accepts writes).
  kPromote = 9,
  /// Re-target a replica server's upstream (host:port payload) — the
  /// survivor-reconnect step of a failover.
  kRepoint = 10,
  /// Scrape the server's telemetry registry. Payload = one format
  /// byte (kMetricsFormat*). Refused with kFailedPrecondition when
  /// the server runs without a registry.
  kMetrics = 11,
  // Responses.
  kPong = 32,
  kApplyResult = 33,
  kBatchResult = 34,
  kFixResult = 35,
  kQueryResult = 36,
  kCheckpointResult = 37,
  kStatsResult = 38,
  kError = 39,
  /// Server-initiated (request_id 0): alerts the server could not attach
  /// to any response before shutting down. Payload = EncodeAlertPush.
  kAlertPush = 40,
  /// The primary's answer to kReplicaHello: its epoch + shard count.
  kReplicaWelcome = 41,
  /// Server-initiated on a subscribed connection (request_id 0): one
  /// run of committed log records for one shard.
  kSegmentChunk = 42,
  /// Server-initiated on a subscribed connection (request_id 0): the
  /// primary's per-shard durable positions (replica lag accounting).
  kWatermarkAdvance = 43,
  /// kPromote's answer: the new replication epoch.
  kPromoteResult = 44,
  kRepointResult = 45,
  /// kMetrics' answer: the snapshot, in the requested format.
  kMetricsResult = 46,
};

/// kMetrics request payload: which representation the response carries.
inline constexpr uint8_t kMetricsFormatStructured = 0;
inline constexpr uint8_t kMetricsFormatText = 1;

/// True for the request half of the numbering space.
bool IsRequestType(MessageType type);

/// Stable lower-case name ("apply-batch", "stats-result", ...).
const char* MessageTypeToString(MessageType type);

/// One decoded frame header.
struct FrameHeader {
  uint8_t version = kWireVersion;
  MessageType type = MessageType::kPing;
  uint32_t request_id = 0;
  uint32_t payload_length = 0;
};

/// One complete frame, payload owned.
struct Frame {
  FrameHeader header;
  std::string payload;
};

/// One complete frame viewed in place: `payload` points into a read
/// chunk still owned by the FrameAssembler, and `pin` keeps that chunk
/// alive (and immutable) for as long as the view exists. This is the
/// zero-copy ingest path — a server can hold the view across queueing
/// and decode the events exactly once, straight into the coalescer's
/// merge buffer.
struct FrameView {
  FrameHeader header;
  std::string_view payload;
  std::shared_ptr<const std::string> pin;
};

/// Encodes a complete frame (header + payload).
std::string EncodeFrame(MessageType type, uint32_t request_id,
                        const std::string& payload);

/// Decodes the 16 header bytes. ParseError on bad magic, unknown
/// version, unknown type, nonzero reserved bits, or a length above
/// kMaxFramePayload. Requires `size >= kFrameHeaderBytes`.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

/// Incremental frame extraction for a byte stream (the read side of a
/// socket). Append raw stream bytes as they arrive (or recv straight
/// into the buffer via BeginFill/CommitFill); Next()/NextView() yield
/// complete frames in order. A malformed header is a sticky error — the
/// stream can no longer be framed and the connection must be dropped.
///
/// Storage is a chain of reference-counted chunks. NextView() hands out
/// frames as views pinning their chunk; a pinned chunk is never mutated
/// or reallocated, so the view stays valid however long the caller keeps
/// it — at the cost of holding the whole chunk (up to ~64 KiB) until the
/// last view into it dies. Frames that straddle a chunk boundary are
/// coalesced into a dedicated exact-size chunk (the one copy on that
/// path).
class FrameAssembler {
 public:
  /// Appends raw stream bytes (copying them into the current chunk).
  void Append(const char* data, size_t size);

  /// Zero-copy fill: returns a writable region of at least `min_bytes`
  /// (capacity reported via *capacity) to recv into, then CommitFill()
  /// publishes how many bytes actually landed. The pair must be used
  /// back-to-back — no Next()/Append() between them.
  char* BeginFill(size_t min_bytes, size_t* capacity);
  void CommitFill(size_t filled);

  /// Returns the next complete frame (payload copied out), nullopt when
  /// more bytes are needed, or ParseError once the stream is unframeable.
  Result<std::optional<Frame>> Next();

  /// Like Next(), but the payload is a view pinning its chunk — no copy
  /// unless the frame straddled a chunk boundary.
  Result<std::optional<FrameView>> NextView();

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buffered_; }

 private:
  /// A chunk may be appended to only while the assembler is its sole
  /// owner (no outstanding FrameView pins it).
  static bool Appendable(const std::shared_ptr<std::string>& chunk) {
    return chunk.use_count() == 1;
  }

  /// Copies up to `n` unconsumed bytes into dst without consuming them;
  /// returns the count actually copied.
  size_t PeekBytes(char* dst, size_t n) const;

  /// Consumes `n` buffered bytes (requires n <= buffered_).
  void Consume(size_t n);

  static constexpr size_t kChunkBytes = 64 * 1024;

  std::deque<std::shared_ptr<std::string>> chunks_;
  size_t front_consumed_ = 0;  // consumed prefix of chunks_.front()
  size_t buffered_ = 0;        // unconsumed bytes across all chunks
  size_t fill_base_ = 0;       // tail size at BeginFill, for CommitFill
  Status error_;
};

// --- Request payloads --------------------------------------------------------

/// Ping / Checkpoint / Stats requests and the Pong / CheckpointResult
/// responses carry no payload; encode with EncodeFrame(type, id, "").

std::string EncodeApplyRequest(const AccessEvent& event);
Result<AccessEvent> DecodeApplyRequest(std::string_view payload);

std::string EncodeApplyBatchRequest(Span<const AccessEvent> events);
Result<std::vector<AccessEvent>> DecodeApplyBatchRequest(
    std::string_view payload);

/// O(1) shape check of an apply/apply-batch payload: validates the event
/// count against the payload size and the wire ceiling without touching
/// the events themselves, and returns that count. This is what an I/O
/// thread runs per frame — full event validation is deferred to
/// DecodeApplyEventsInto at merge time.
Result<uint32_t> PeekApplyEventCount(MessageType type,
                                     std::string_view payload);

/// The routing key: the subject of the payload's first event, read in
/// place. Requires PeekApplyEventCount to have accepted the payload;
/// nullopt for an empty batch.
std::optional<SubjectId> PeekFirstSubject(MessageType type,
                                          std::string_view payload);

/// Single-pass decode of an apply/apply-batch payload, appending the
/// events to *out (no intermediate vector — the zero-copy server decodes
/// straight into its merge buffer). Strict like the owning decoders:
/// exact consumption, every event kind validated.
Status DecodeApplyEventsInto(MessageType type, std::string_view payload,
                             std::vector<AccessEvent>* out);

std::string EncodeApplyFixRequest(const PositionFix& fix);
Result<PositionFix> DecodeApplyFixRequest(std::string_view payload);

std::string EncodeQueryRequest(const std::string& statement);
Result<std::string> DecodeQueryRequest(std::string_view payload);

// --- Response payloads -------------------------------------------------------

/// What one Apply/ApplyBatch produced, as seen through the wire: the
/// per-event decisions, the alerts the server attributed to this frame
/// (routed by subject out of the coalesced batch), the durability
/// outcome of the underlying AccessRuntime::ApplyBatch, and the
/// runtime's durability watermark at that moment (under a pipelined
/// server the ack arrives before the fsync — durable < applied tells
/// the client exactly how far the crash-proof prefix reaches).
struct WireBatchResult {
  std::vector<Decision> decisions;
  std::vector<Alert> alerts;
  Status durability;
  DurabilityWatermark watermark;
};

/// kApplyResult and kBatchResult share this payload encoding (an Apply
/// is a one-event batch server-side).
std::string EncodeBatchResult(const WireBatchResult& result);
Result<WireBatchResult> DecodeBatchResult(std::string_view payload);

/// kFixResult: the ApplyFix status plus the alerts the fix raised.
struct WireFixResult {
  Status status;
  std::vector<Alert> alerts;
};

std::string EncodeFixResult(const WireFixResult& result);
Result<WireFixResult> DecodeFixResult(std::string_view payload);

/// kQueryResult reuses the interpreter's tabular QueryResult.
std::string EncodeQueryResult(const QueryResult& result);
Result<QueryResult> DecodeQueryResult(std::string_view payload);

/// kStatsResult carries the runtime's own counters verbatim — the remote
/// Stats() answer is the same struct a local caller sees (since v3
/// including the per-shard watermarks).
std::string EncodeStatsResult(const RuntimeStats& stats);
Result<RuntimeStats> DecodeStatsResult(std::string_view payload);

/// kAlertPush: alerts delivered outside any request/response pair (the
/// server's shutdown drain of otherwise-stranded alerts).
std::string EncodeAlertPush(Span<const Alert> alerts);
Result<std::vector<Alert>> DecodeAlertPush(std::string_view payload);

/// kError: a Status by value (code + message). OK is not a valid error
/// payload — encoding it is a programming error, decoding it a
/// ParseError. The returned status is the decode outcome; the carried
/// error lands in *error (untouched on decode failure).
std::string EncodeErrorResult(const Status& status);
Status DecodeErrorResult(std::string_view payload, Status* error);

// --- Replication payloads (v4) -----------------------------------------------

/// Ceiling on log records per kSegmentChunk frame — bounds both the
/// shipper's batching and a corrupt count field's allocation.
inline constexpr uint32_t kMaxReplicationRecords = 1u << 14;

/// kReplicaHello: a replica announcing itself to a primary. `positions`
/// has one entry per shard — the count of log records the replica
/// already holds durably (records retired by its checkpoints included),
/// i.e. where shipping must resume.
struct ReplicaHello {
  uint64_t epoch = 0;
  uint32_t num_shards = 0;
  std::vector<uint64_t> positions;
};

std::string EncodeReplicaHello(const ReplicaHello& hello);
Result<ReplicaHello> DecodeReplicaHello(std::string_view payload);

/// kReplicaWelcome: the primary accepting a subscription.
struct ReplicaWelcome {
  uint64_t epoch = 0;
  uint32_t num_shards = 0;
};

std::string EncodeReplicaWelcome(const ReplicaWelcome& welcome);
Result<ReplicaWelcome> DecodeReplicaWelcome(std::string_view payload);

/// kSegmentChunk: `records.size()` consecutive committed log records of
/// one shard, starting at per-shard position `start` (each record is one
/// WAL line, newline stripped — exactly what recovery replay decodes).
/// `epoch` is the sender's replication epoch; a receiver on a higher
/// epoch rejects the chunk (the fencing rule).
struct SegmentChunk {
  uint64_t epoch = 0;
  uint32_t shard = 0;
  uint64_t start = 0;
  std::vector<std::string> records;
};

std::string EncodeSegmentChunk(const SegmentChunk& chunk);
Result<SegmentChunk> DecodeSegmentChunk(std::string_view payload);

/// kWatermarkAdvance: the primary's per-shard durable record counts.
struct WatermarkAdvance {
  uint64_t epoch = 0;
  std::vector<uint64_t> durable;
};

std::string EncodeWatermarkAdvance(const WatermarkAdvance& advance);
Result<WatermarkAdvance> DecodeWatermarkAdvance(std::string_view payload);

/// kRepoint: the new upstream endpoint for a replica server.
struct RepointRequest {
  std::string host;
  uint16_t port = 0;
};

std::string EncodeRepointRequest(const RepointRequest& repoint);
Result<RepointRequest> DecodeRepointRequest(std::string_view payload);

/// kPromote carries no request payload; kPromoteResult carries the new
/// replication epoch. kRepointResult carries no payload.
std::string EncodePromoteResult(uint64_t epoch);
Result<uint64_t> DecodePromoteResult(std::string_view payload);

// --- Metrics payloads (v5) ---------------------------------------------------

/// Ceilings on a kMetricsResult frame's element counts — a corrupt
/// count field must never drive allocation (kMaxFramePayload bounds
/// total bytes, these bound vector reserves before the bytes arrive).
inline constexpr uint32_t kMaxWireMetrics = 1u << 12;
inline constexpr uint32_t kMaxWireHistogramBuckets = 1u << 14;

/// kMetrics: the requested representation (kMetricsFormatStructured or
/// kMetricsFormatText).
std::string EncodeMetricsRequest(uint8_t format);
Result<uint8_t> DecodeMetricsRequest(std::string_view payload);

/// kMetricsResult, structured format: the registry snapshot — counters
/// and gauges as (name, value), histograms as exact parts plus sparse
/// nonzero buckets (LatencyHistogram::FromParts validates on decode,
/// so a decoded histogram is internally consistent or the frame is a
/// ParseError). Text format instead carries the Prometheus exposition
/// as the raw payload; it needs no codec beyond the frame layer.
std::string EncodeMetricsResult(const MetricsSnapshot& snapshot);
Result<MetricsSnapshot> DecodeMetricsResult(std::string_view payload);

}  // namespace ltam

#endif  // LTAM_SERVICE_PROTOCOL_H_
