// Copyright 2026 The LTAM Authors.
// Durable sharded LTAM runtime: the batch decision pipeline of
// engine/sharded_engine.h made crash-safe.
//
// Layout of one durable directory (all names recorded in `MANIFEST`):
//
//   MANIFEST                    the committed checkpoint cut (see
//                               storage/manifest.h; atomically renamed)
//   base-<epoch>.snap           shared state: graph, profiles,
//                               authorization ledger, rules
//   shard-<k>-<epoch>.snap      shard k's movement history at the cut
//   events-<k>-<epoch>.wal      shard k's log tail since the cut
//   events-<k>-<epoch>-<s>.wal  rotated log segments (s >= 1), created
//                               once the previous segment crossed
//                               DurabilityOptions::segment_max_bytes;
//                               each rotation republishes the MANIFEST
//                               with the extended segment list
//
// Durability discipline: each shard's worker thread appends every event
// of its batch slice to its own log *before* applying it (write-ahead,
// via ShardHooks::before_apply), then marks the group-commit boundary
// (ShardHooks::after_batch). What the boundary costs depends on
// DurabilityOptions::mode:
//
//   kBatch      one fsync per shard per batch, on the batch's critical
//               path — the original PR-2 discipline, byte-identical
//               to it (and the strongest per-batch guarantee).
//   kPipelined  appends go to an in-memory commit queue; a dedicated
//               log thread per shard writes them and batches fsyncs
//               across multiple engine batches (commit pipelining,
//               bounded by pipeline_depth / max_unsynced_bytes). The
//               batch returns before its fsync lands; WaitDurable()
//               and the (applied, durable) watermark close the gap.
//   kInterval   like kPipelined, but the log thread fsyncs on a timer
//               (sync_interval_ms).
//
// Decision streams are byte-identical across all three modes (pipelined
// failures surface through the watermark and failure counters, never by
// rewriting decisions) — the property the equivalence matrix enforces.
//
// Checkpoint() flushes every log (restoring durable == applied, even
// for a sticky-failed pipelined log, whose lost tail the snapshot
// supersedes), writes the dirty segments of the next epoch, publishes
// them by atomically renaming a fresh MANIFEST, then deletes the files
// the new cut no longer references. A crash at any instant leaves a
// committed cut. Checkpoints are INCREMENTAL: a shard whose log
// accepted no records since the previous cut (and whose cold tier did
// not change) re-references its previous snapshot file in the new
// manifest instead of rewriting it, so checkpoint latency scales with
// the events since the last checkpoint, not with total history.
//
// With RetentionOptions::max_hot_events set, Checkpoint() also runs the
// per-shard tier maintenance pass first: shards whose hot history
// outgrew the bound seal their completed stays into immutable columnar
// cold segments (cold-<k>-<n>.seg, storage/cold_codec.h; `n` increases
// monotonically per shard and never recycles within a committed
// lineage), retention drops sealed segments whose every stay ended
// before the horizon, and compaction merges segment runs of
// compaction_fanin into one. New/merged segments are written + fsynced
// before the manifest rename commits them; files dropped by retention
// or superseded by compaction are swept with the old epoch's files.
//
// Open() recovers by loading the manifest's base snapshot and shard
// segments, rebuilding each shard's open-stay attribution exactly as the
// sequential DurableSystem does (first in-window authorization wins),
// then replaying every shard's log segments — in committed order within
// a shard, and across shards *in parallel* — safe because the partition
// confines each subject's events to one shard. Only the final segment
// of a shard may carry a torn tail (rotation fsyncs a segment before
// its successor exists); a short tail on an earlier segment is data
// loss and recovery refuses it. Recovered state is identical to a
// sequential replay of the surviving log prefix (the property
// tests/durable_sharded_test.cc enforces under crash injection, now
// across rotated segments and pipelined commits).

#ifndef LTAM_STORAGE_DURABLE_SHARDED_SYSTEM_H_
#define LTAM_STORAGE_DURABLE_SHARDED_SYSTEM_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/cold_segment.h"
#include "engine/movement_db.h"
#include "engine/sharded_engine.h"
#include "storage/log_pipeline.h"
#include "storage/manifest.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace ltam {

class Counter;
class Gauge;

/// Tuning knobs for the durable sharded runtime.
struct DurableShardedOptions {
  /// Shard count for a *fresh* directory. Recovery always reuses the
  /// manifest's count — the on-disk partition is fixed at creation. When
  /// a recovered manifest pins a different count the mismatch is logged
  /// and surfaced through shard_count_overridden(), never guessed away.
  uint32_t num_shards = 4;
  /// Per-shard engine options.
  EngineOptions engine;
  /// kBatch mode only: fsync each shard's log once per batch (and per
  /// tick). Disable only for throughput experiments where the OS page
  /// cache is an acceptable durability boundary. Pipelined modes ignore
  /// it (their cadence comes from `durability`).
  bool sync_every_batch = true;
  /// The write path's sync mode, pipelining bounds, segment rotation
  /// threshold, and (tests only) fault injection.
  DurabilityOptions durability;
  /// Tiering + retention (engine/movement_db.h). max_hot_events == 0
  /// disables sealing entirely — the pre-tiering behavior.
  RetentionOptions retention;
};

/// A crash-safe, subject-sharded batch runtime rooted at one directory.
///
/// Lifecycle mirrors ShardedDecisionEngine: Open (recovers or
/// initializes), EvaluateBatch/Tick/Checkpoint from one control thread,
/// destroy (joins workers, then log threads). Database mutations on
/// base() are only legal between batches and are NOT logged — persist
/// them via Checkpoint().
class DurableShardedSystem {
 public:
  /// Opens (or creates) the runtime in `dir`. A fresh directory is
  /// seeded from `initial` (its movement history is partitioned across
  /// the shards) and immediately checkpointed as epoch 0, so recovery
  /// never needs `initial` again; when a MANIFEST exists, `initial` is
  /// ignored and state is recovered from the committed cut.
  static Result<std::unique_ptr<DurableShardedSystem>> Open(
      const std::string& dir, SystemState initial,
      DurableShardedOptions options = {});

  ~DurableShardedSystem();
  DurableShardedSystem(const DurableShardedSystem&) = delete;
  DurableShardedSystem& operator=(const DurableShardedSystem&) = delete;

  // --- Logged entry points -------------------------------------------------

  /// Logs and applies a batch: each shard's worker appends its slice to
  /// its log before applying, then marks the group-commit boundary.
  /// Returns one decision per event in input order; *durability receives
  /// the batch's durability outcome (composed by ComposeDurabilityError:
  /// refused events are visible as Deny(kWalError) decisions and safe to
  /// resubmit, while a boundary/fsync failure — which outranks refusals
  /// in the status — means applied events' durability is in doubt and
  /// they must NOT be resubmitted; in pipelined modes a sticky log
  /// failure keeps reporting here until a Checkpoint repairs it). The
  /// decisions always survive, so a partial failure never hides which
  /// events applied.
  std::vector<Decision> EvaluateBatchWithStatus(Span<const AccessEvent> batch,
                                                Status* durability);

  /// Legacy convenience over EvaluateBatchWithStatus: folds any
  /// durability trouble into an error Result, DISCARDING the decisions.
  /// Callers that must know which events applied (anything that might
  /// resubmit) should use EvaluateBatchWithStatus instead.
  Result<std::vector<Decision>> EvaluateBatch(Span<const AccessEvent> batch);

  /// Logs and applies a patrol tick on every shard.
  Status Tick(Chronon t);

  // --- Durability ----------------------------------------------------------

  /// Persists the full state as a new epoch and truncates every shard's
  /// log (all rotated segments swept with it). Subsequent recovery
  /// starts from here. Restores durable == applied: the snapshot
  /// supersedes any tail a sticky-failed pipelined log lost.
  Status Checkpoint();

  /// Durability barrier: blocks until every accepted log record is
  /// fsynced (forcing the flush), or returns the first log's sticky
  /// error. A no-op in kBatch + sync_every_batch mode, where every
  /// batch already synced.
  Status WaitDurable();

  /// The runtime's durability position: log records accepted (their
  /// events applied) vs fsynced, monotonic across checkpoints.
  DurabilityWatermark Watermark() const;

  /// One shard log's durability position, monotonic across checkpoints
  /// (retired generations are accumulated per shard). The aggregate
  /// Watermark() is the sum over shards.
  DurabilityWatermark ShardWatermark(uint32_t shard) const;

  /// Physical log failures observed since Open (appends that refused or
  /// lost records, fsyncs that failed), monotonic across checkpoints.
  uint64_t wal_append_failures() const;
  uint64_t wal_sync_failures() const;

  /// Events appended across all shard logs through this instance (reset
  /// by Checkpoint; a recovered tail replayed at Open is not counted).
  size_t wal_events() const;

  /// Current committed checkpoint epoch.
  uint64_t epoch() const { return epoch_; }

  // --- Tiering & retention -------------------------------------------------

  /// Sealed cold segments currently live across every shard.
  uint64_t cold_segment_count() const;
  /// Approximate in-memory bytes held by the cold columns, all shards.
  uint64_t cold_bytes() const;
  /// Events dropped past the retention horizon, all shards, cumulative.
  uint64_t dropped_events() const;
  /// Shard snapshots rewritten by the most recent WriteEpoch — the
  /// incremental-checkpoint pin: clean shards re-reference their old
  /// file and do not count.
  uint64_t last_checkpoint_dirty_segments() const {
    return last_checkpoint_dirty_segments_;
  }
  /// Same, accumulated across every checkpoint since Open.
  uint64_t checkpoint_dirty_segments() const {
    return checkpoint_dirty_segments_;
  }
  /// Compaction merges performed since Open.
  uint64_t compaction_runs() const { return compaction_runs_; }
  /// Sealed segments dropped past the horizon since Open.
  uint64_t retention_dropped_segments() const {
    return retention_dropped_segments_;
  }

  // --- Replication ---------------------------------------------------------
  //
  // The replication position of shard k is the monotonic per-shard
  // record count ShardWatermark() reports: retired generations plus the
  // live log's sequence. Shipping reads committed records back out of
  // the segment chain; applying appends them to the replica's own chain
  // (write-ahead, so replica restart and onward promotion replay the
  // identical stream) and then applies them through the recovery codec.

  /// One shippable slice of a shard's stream: encoded WAL lines
  /// (newline-stripped), starting at position `from`.
  struct ReplicationSlice {
    std::vector<std::string> records;
    uint64_t next = 0;     ///< Position after the last returned record.
    uint64_t durable = 0;  ///< The shard's durable position at read time.
  };

  /// Reads up to `max_records` records of shard `shard` starting at
  /// position `from`. Only durable records ship (a replica must never
  /// hold a record its primary could still lose); `from` at or beyond
  /// the durable position returns an empty slice — poll again. `from`
  /// below the retired floor is FailedPrecondition "resync required":
  /// a checkpoint folded those records into a snapshot and swept them.
  /// Callable from a shipper thread concurrent with the write path.
  Result<ReplicationSlice> ReadShardRecords(uint32_t shard, uint64_t from,
                                            size_t max_records);

  /// The outcome of applying one shipped chunk on a replica.
  struct ReplicationApply {
    /// One decision per access event actually applied (reconnect
    /// overlap and ticks produce none) — the replica's decision stream.
    std::vector<Decision> decisions;
    /// Alerts the applied events raised (drained so replica-side
    /// buffers cannot grow without a batch pipeline to empty them).
    std::vector<Alert> alerts;
    uint64_t position = 0;  ///< Applied position after the chunk.
  };

  /// Appends and applies one shipped chunk: records before the shard's
  /// current position are skipped (a reconnect re-ships the durable
  /// suffix, which may overlap what this replica already applied), a
  /// chunk starting beyond it is a gap error. Each surviving record is
  /// validated (codec + shard ownership), appended to this directory's
  /// own log, then applied. NOT concurrency-safe with the batch write
  /// path — a replica has no batch traffic, and the caller serializes
  /// against reads with the runtime lock.
  Result<ReplicationApply> ApplyReplicatedRecords(
      uint32_t shard, uint64_t start, const std::vector<std::string>& records);

  /// Manifest republish accounting: rotations that would rewrite the
  /// MANIFEST byte-identically (e.g. a retried rotation whose segment
  /// was already committed) skip the write + three fsyncs.
  uint64_t manifest_publishes() const;
  uint64_t manifest_publish_skips() const;

  // --- Introspection -------------------------------------------------------

  /// Shared state (graph/profiles/auth ledger/rules). Movement state
  /// lives in the per-shard views, not here.
  const SystemState& base() const { return base_; }
  SystemState& mutable_base() { return base_; }

  const ShardedDecisionEngine& engine() const { return *engine_; }
  ShardedDecisionEngine& engine() { return *engine_; }

  uint32_t num_shards() const { return engine_->num_shards(); }
  uint32_t ShardOf(SubjectId s) const { return engine_->ShardOf(s); }

  /// True when Open() recovered a MANIFEST whose shard count differs
  /// from the one the caller requested — the manifest always wins (the
  /// on-disk partition is fixed at creation), and callers that care can
  /// detect the override here instead of comparing counts by hand.
  bool shard_count_overridden() const { return shard_count_overridden_; }

  /// The shard count the caller asked Open() for (num_shards() is the
  /// count actually in effect).
  uint32_t requested_shards() const { return requested_shards_; }
  const MovementDatabase& shard_movements(uint32_t shard) const {
    return engine_->shard_movements(shard);
  }

  /// One shard's log (watermark/segment introspection for tests).
  const ShardLog& shard_log(uint32_t shard) const { return *logs_[shard]; }

  /// Merged alerts from every shard (deterministically ordered),
  /// clearing the per-shard buffers.
  std::vector<Alert> DrainAlerts() { return engine_->DrainAlerts(); }

  /// Rebuilds one unified movement database from every shard's view
  /// (history merged in time order; per-subject order is preserved since
  /// each subject lives on exactly one shard). For cross-shard queries
  /// and tests; cost is linear in total history. HOT tier only: sealed
  /// cold segments are not folded in — use the sharded MovementView for
  /// tier-transparent cross-shard queries.
  MovementDatabase MergedMovements() const;

 private:
  DurableShardedSystem(std::string dir, DurableShardedOptions options);

  std::string FilePath(const std::string& name) const;
  std::string BaseSnapName(uint64_t epoch) const;
  std::string ShardSnapName(uint32_t shard, uint64_t epoch) const;
  /// Cold segment files are named per shard with a monotonically
  /// increasing index (NOT the epoch: the same file is referenced by
  /// every subsequent manifest until retention or compaction retires
  /// it).
  std::string ColdSegName(uint32_t shard, uint64_t index) const;
  /// Segment 0 keeps the legacy name events-<k>-<epoch>.wal; rotated
  /// segments are events-<k>-<epoch>-<seg>.wal.
  std::string ShardWalName(uint32_t shard, uint64_t epoch,
                           uint32_t segment = 0) const;

  /// Constructs the engine over base_ with `num_shards` shards.
  void InitEngine(uint32_t num_shards);

  /// Moves base_.movements into the per-shard views (partitioned by
  /// subject, history order preserved), leaving base_.movements empty.
  Status PartitionBaseMovements();

  /// Re-registers open stays on shard `k`'s engine from its movement
  /// view — the same first-in-window-authorization-wins choice the
  /// sequential DurableSystem makes.
  void RebuildShardStays(uint32_t k);

  /// Wraps an open segment writer in this shard's ShardLog (wiring the
  /// rotation callback and durability options).
  std::unique_ptr<ShardLog> MakeShardLog(uint32_t shard, WalWriter writer,
                                         uint64_t writer_bytes,
                                         uint32_t segment_index);

  /// Rotation callback body: creates the next numbered segment, commits
  /// the extended segment list to the manifest, returns the new writer.
  /// Runs on shard `shard`'s log thread.
  Result<WalWriter> RotateShardSegment(uint32_t shard, uint32_t next_segment);

  /// Replays every shard's committed WAL segments (parallel across
  /// shards, ordered within one) and installs the tail writers;
  /// `manifest` names the files.
  Status ReplayShardLogs(const ShardManifest& manifest);

  /// Writes the dirty segments of `epoch` + its manifest and swaps in
  /// fresh logs; clean shards re-reference their previous snapshot
  /// file. On success the committed cut is in manifest_.
  Status WriteEpoch(uint64_t epoch);

  /// Checkpoint's tier maintenance pass: seals oversized hot shards,
  /// drops sealed segments past the retention horizon, merges segment
  /// runs of compaction_fanin. Marks shards whose hot snapshot must be
  /// rewritten in maintenance_dirty_. No-op unless
  /// options_.retention.max_hot_events > 0.
  void MaintainColdTiers();

  /// Writes + fsyncs every not-yet-persisted cold segment file (then
  /// the directory, so the names survive crash before the manifest
  /// rename references them).
  Status PersistColdFiles();

  /// Pushes the cold-tier gauges (storage.cold_segments/.cold_bytes)
  /// to the registry, if one is wired.
  void UpdateColdGauges();

  /// Best-effort unlink of cold-*.seg files in dir_ that the committed
  /// manifest does not reference (a crash between segment write and
  /// manifest publish leaves such orphans).
  void SweepOrphanColdFiles();

  /// Installs the write-ahead hooks on the engine.
  void InstallHooks();

  /// Best-effort removal of a superseded epoch's files (as named by its
  /// manifest, so rotated segments are swept too).
  void RemoveEpochFiles(const ShardManifest& old_manifest);

  std::string dir_;
  DurableShardedOptions options_;
  /// Shared stores the engine borrows; movements stays empty (movement
  /// state lives in the shard views).
  SystemState base_;
  std::unique_ptr<ShardedDecisionEngine> engine_;
  /// One log per shard; appended by that shard's worker during a batch,
  /// by the control thread for ticks between batches, and flushed by
  /// its own log thread in pipelined modes.
  std::vector<std::unique_ptr<ShardLog>> logs_;
  /// The committed cut (segment lists grow under rotation). Guarded by
  /// manifest_mu_: rotation runs on log threads while the control
  /// thread may be reading; Checkpoint republishes it wholesale.
  /// Shipper threads also snapshot {segment list, retired floor, log
  /// pointers} under it, so manifest_mu_ additionally guards
  /// retired_records_per_shard_ and the logs_ vector itself (never a
  /// ShardLog's destruction: joining a log thread that may be blocked
  /// on manifest_mu_ inside a rotation must happen outside the lock).
  ShardManifest manifest_;
  mutable std::mutex manifest_mu_;
  /// The exact bytes of the last published MANIFEST plus publish/skip
  /// counters (guarded by manifest_mu_): rotation republishes only when
  /// the serialized cut actually changed.
  std::string published_manifest_bytes_;
  uint64_t manifest_publishes_ = 0;
  uint64_t manifest_publish_skips_ = 0;
  uint64_t epoch_ = 0;
  /// Watermark/counter accumulators for log generations retired by
  /// Checkpoint (their records are all durable via the snapshot).
  uint64_t retired_records_ = 0;
  uint64_t retired_append_failures_ = 0;
  uint64_t retired_sync_failures_ = 0;
  /// Per-shard slice of retired_records_, so ShardWatermark stays
  /// monotonic across checkpoints too.
  std::vector<uint64_t> retired_records_per_shard_;
  /// Shard count requested at Open (clamped); differs from num_shards()
  /// iff a recovered manifest pinned another count.
  uint32_t requested_shards_ = 0;
  bool shard_count_overridden_ = false;
  /// One shard's on-disk cold tier entry. The in-memory segment list of
  /// shard k's MovementDatabase and cold_files_[k] stay index-aligned.
  struct ColdFile {
    std::string name;
    std::shared_ptr<const ColdSegment> segment;
    /// False for segments sealed/merged since the last checkpoint; the
    /// file is written + fsynced before the next manifest publish.
    bool persisted = false;
  };
  /// Per-shard cold tier, oldest segment first. Only the control
  /// thread (Open/Checkpoint) touches it.
  std::vector<std::vector<ColdFile>> cold_files_;
  /// Per-shard naming counter for the next sealed/merged segment file.
  std::vector<uint64_t> next_cold_index_;
  /// Shards whose hot snapshot the tier maintenance pass invalidated
  /// (a seal rewrote the hot history); consumed by WriteEpoch.
  std::vector<bool> maintenance_dirty_;
  uint64_t last_checkpoint_dirty_segments_ = 0;
  uint64_t checkpoint_dirty_segments_ = 0;
  uint64_t compaction_runs_ = 0;
  uint64_t retention_dropped_segments_ = 0;
  /// Resolved once from options_.durability.metrics (null = off).
  Counter* dirty_segments_counter_ = nullptr;
  Counter* compaction_runs_counter_ = nullptr;
  Counter* retention_dropped_counter_ = nullptr;
  Gauge* cold_segments_gauge_ = nullptr;
  Gauge* cold_bytes_gauge_ = nullptr;
  Gauge* resident_bytes_gauge_ = nullptr;
};

}  // namespace ltam

#endif  // LTAM_STORAGE_DURABLE_SHARDED_SYSTEM_H_
