// Copyright 2026 The LTAM Authors.
// Resolves raw position fixes to primitive locations via the boundary
// polygons attached to the location graph. This is the glue between the
// (simulated) positioning infrastructure and the semantic location model.

#ifndef LTAM_ENGINE_LOCATION_RESOLVER_H_
#define LTAM_ENGINE_LOCATION_RESOLVER_H_

#include <optional>
#include <vector>

#include "graph/multilevel_graph.h"
#include "spatial/grid_index.h"
#include "util/result.h"

namespace ltam {

/// Maps plan-coordinate points to the primitive location whose boundary
/// contains them.
class LocationResolver {
 public:
  /// Builds the spatial index from every primitive location of `graph`
  /// that carries a boundary polygon. Fails when none does.
  static Result<LocationResolver> Build(const MultilevelLocationGraph& graph,
                                        double cell_size = 8.0);

  /// The primitive location containing `p` (smallest boundary wins when
  /// boundaries overlap), or nullopt when outside all boundaries.
  std::optional<LocationId> Resolve(const Point& p) const;

  /// Number of indexed boundaries.
  size_t size() const { return boundary_location_.size(); }

 private:
  LocationResolver(GridIndex index, std::vector<LocationId> mapping)
      : index_(std::move(index)), boundary_location_(std::move(mapping)) {}

  GridIndex index_;
  std::vector<LocationId> boundary_location_;
};

}  // namespace ltam

#endif  // LTAM_ENGINE_LOCATION_RESOLVER_H_
