#!/usr/bin/env bash
# Copyright 2026 The LTAM Authors.
#
# CI entry point. Usage:
#   ./ci.sh            # tier1 + asan + tsan + examples + bench
#   ./ci.sh tier1      # plain build + full ctest suite (the tier-1 gate)
#   ./ci.sh asan       # AddressSanitizer + UBSan build, full ctest suite
#   ./ci.sh tsan       # ThreadSanitizer build, concurrency-relevant tests
#   ./ci.sh examples   # build + run every example binary (facade surface)
#   ./ci.sh bench      # batch/durable/facade throughput -> BENCH_pr3.json
#
# Every future PR is expected to pass `./ci.sh` locally; the tier-1 gate
# is exactly the ROADMAP verify command. For a quick pre-commit signal,
# `ctest --test-dir build -L fast` skips the slow crash-matrix suites.

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

tier1() {
  echo "=== tier1: build + full test suite ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS"
}

asan() {
  echo "=== asan: address+undefined sanitizers, full test suite ==="
  cmake -B build-asan -S . -DLTAM_SANITIZE=address,undefined \
    -DLTAM_BUILD_BENCHMARKS=OFF -DLTAM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j"$JOBS"
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"
}

tsan() {
  echo "=== tsan: thread sanitizer, concurrency tests ==="
  cmake -B build-tsan -S . -DLTAM_SANITIZE=thread \
    -DLTAM_BUILD_BENCHMARKS=OFF -DLTAM_BUILD_EXAMPLES=OFF
  # The sharded pipeline, the caches it leans on, the durable runtime
  # (worker-thread WAL appends + parallel recovery replay), and the
  # facade that drives them are the concurrent surface; engine/movement
  # tests ride along as controls.
  local targets=(sharded_engine_test auth_cache_test auth_database_test
                 engine_test movement_db_test durable_sharded_test
                 durable_equivalence_test access_runtime_test
                 movement_view_test)
  cmake --build build-tsan -j"$JOBS" --target "${targets[@]}"
  for t in "${targets[@]}"; do
    "./build-tsan/tests/$t"
  done
}

examples() {
  echo "=== examples: build + run every example binary ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target \
    quickstart ltam_shell ntu_campus hospital_tracking building_security
  ./build/examples/quickstart > /dev/null
  ./build/examples/ntu_campus > /dev/null
  ./build/examples/hospital_tracking > /dev/null
  ./build/examples/building_security > /dev/null
  printf 'WHEN CAN Alice ACCESS CAIS\nquit\n' \
    | ./build/examples/ltam_shell > /dev/null
  echo "examples: all ran clean"
}

bench() {
  echo "=== bench: batch/durable/facade throughput -> BENCH_pr3.json ==="
  cmake -B build -S .
  if ! cmake --build build -j"$JOBS" --target bench_access_engine; then
    echo "bench: google-benchmark not available; skipping" >&2
    return 0
  fi
  # BatchDecision* are the direct-engine baselines; FacadeBatch* the same
  # stream through AccessRuntime (facade overhead); DurableBatch* the
  # crash-safe runtimes via the facade; MovementViewFanout vs
  # MergedMovementsCopy the cross-shard query path with and without the
  # full-history copy.
  ./build/bench/bench_access_engine \
    --benchmark_filter='BatchDecision|DurableBatch|FacadeBatch|MovementViewFanout|MergedMovementsCopy' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_pr3.json --benchmark_out_format=json
  echo "bench: wrote $(pwd)/BENCH_pr3.json"
}

case "${1:-all}" in
  tier1) tier1 ;;
  asan) asan ;;
  tsan) tsan ;;
  examples) examples ;;
  bench) bench ;;
  all)
    tier1
    asan
    tsan
    examples
    bench
    ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|examples|bench|all]" >&2
    exit 2
    ;;
esac

echo "ci.sh: all requested jobs passed"
