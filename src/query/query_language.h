// Copyright 2026 The LTAM Authors.
// A textual query language over the LTAM databases.
//
// Section 5/7: "The design of a query language for our proposed
// authorization model will be part of our future work." This module is
// that front-end: a small keyword language whose statements map onto
// QueryEngine calls and render tabular results.
//
// Grammar (keywords case-insensitive, names case-sensitive, intervals
// written "[a, b]" with "inf" allowed):
//
//   CAN <subject> ACCESS <location> AT <t>
//   WHEN CAN <subject> ACCESS <location> [IN <composite>]
//   AUTHS FOR <subject>
//   WHO CAN ACCESS <location> DURING <interval>
//   ACCESSIBLE FOR <subject> [IN <composite>]
//   INACCESSIBLE FOR <subject> [IN <composite>]
//   ROUTE FOR <subject> FROM <location> TO <location> [DURING <interval>]
//   WHERE WAS <subject> AT <t>
//   OCCUPANTS OF <location> AT <t>
//   CONTACTS OF <subject> DURING <interval> [MIN <k>]
//   OVERSTAYING AT <t>
//   HISTORY OF <subject>

#ifndef LTAM_QUERY_QUERY_LANGUAGE_H_
#define LTAM_QUERY_QUERY_LANGUAGE_H_

#include <string>
#include <vector>

#include "query/query_engine.h"

namespace ltam {

/// A tabular query result.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Fixed-width table rendering.
  std::string ToString() const;
};

/// Parses and evaluates query-language statements.
class QueryInterpreter {
 public:
  /// Borrows the engine and the name-resolution stores; movement facts
  /// come through a backend-agnostic MovementView.
  QueryInterpreter(const QueryEngine* engine,
                   const MultilevelLocationGraph* graph,
                   const UserProfileDatabase* profiles,
                   const MovementView* movements,
                   const AuthorizationDatabase* auth_db);

  /// Convenience: over one concrete movement database (wrapped in an
  /// internally owned sequential view).
  QueryInterpreter(const QueryEngine* engine,
                   const MultilevelLocationGraph* graph,
                   const UserProfileDatabase* profiles,
                   const MovementDatabase* movement_db,
                   const AuthorizationDatabase* auth_db);

  /// Parses and evaluates one statement.
  Result<QueryResult> Run(const std::string& statement) const;

 private:
  const MovementView& movements() const {
    return external_view_ != nullptr ? *external_view_ : local_view_;
  }

  const QueryEngine* engine_;
  const MultilevelLocationGraph* graph_;
  const UserProfileDatabase* profiles_;
  MovementDatabaseView local_view_;
  const MovementView* external_view_ = nullptr;
  const AuthorizationDatabase* auth_db_;
};

}  // namespace ltam

#endif  // LTAM_QUERY_QUERY_LANGUAGE_H_
