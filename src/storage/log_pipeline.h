// Copyright 2026 The LTAM Authors.
// Pipelined write-ahead logging: per-shard log threads, commit
// pipelining, and WAL segment rotation.
//
// The original durability discipline (PR 2) has every shard worker
// append its slice to the shard's WAL and then pay one group-commit
// fsync per shard per batch. That fsync sits on the batch's critical
// path: the engine cannot return until the slowest shard's barrier
// lands. ShardLog decouples the two, the way journaling filesystems and
// replicated-log daemons do:
//
//  - append fast: workers push encoded records onto an in-memory commit
//    queue and return immediately, receiving a CommitTicket (the
//    record's per-log sequence number);
//  - sync in a dedicated flusher: one log thread per shard owns the
//    file, drains the queue, and batches appends across *multiple*
//    engine batches into one fsync (commit pipelining), bounded by
//    DurabilityOptions{pipeline_depth, max_unsynced_bytes,
//    sync_interval_ms};
//  - bound segment size: once the current segment crosses
//    segment_max_bytes the log thread rotates to a fresh numbered
//    segment via the owner-supplied callback (which commits the new
//    name to the manifest), so a long epoch tail replays incrementally
//    instead of as one monolith.
//
// The durability position is the watermark pair (applied, durable):
// `applied` counts records accepted onto the queue (their events are
// applied to live state), `durable` counts records whose bytes an fsync
// has made crash-proof. WaitDurable/Flush are the barriers that close
// the gap on demand.
//
// Error semantics by mode:
//  - kBatch reproduces the PR-2 discipline byte for byte: Append writes
//    synchronously on the caller's thread and a failure REFUSES the
//    event (the engine turns that into Deny(kWalError) and never
//    applies it); BatchBoundary fsyncs (when sync_each_batch) and its
//    failure means applied events' durability is in doubt.
//  - kPipelined/kInterval never refuse an append: the event was already
//    accepted when the worker enqueued it, so a later write/fsync
//    failure must not rewrite history. The log goes STICKY-FAILED
//    instead: the watermark freezes at the last durable record,
//    subsequent queued records are dropped (a log with holes would
//    replay a stream that never happened), failure counters tick, and
//    the sticky error surfaces through BatchBoundary / WaitDurable /
//    Flush. Decisions are never affected — that is the contract the
//    fault-injection tests pin down.

#ifndef LTAM_STORAGE_LOG_PIPELINE_H_
#define LTAM_STORAGE_LOG_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/codec.h"
#include "storage/wal.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace ltam {

/// When the durable runtimes fsync their logs.
enum class SyncMode {
  /// One group-commit fsync per shard per batch, on the batch's
  /// critical path (the PR-2 discipline; byte-identical to it).
  kBatch,
  /// A dedicated log thread per shard batches appends across engine
  /// batches into one fsync; syncs when pipeline_depth batch
  /// boundaries or max_unsynced_bytes accumulate, and whenever the
  /// queue drains with a completed batch pending (so an idle system
  /// converges to durable == applied without waiting on a timer).
  kPipelined,
  /// Like kPipelined, but the flusher syncs on a timer
  /// (sync_interval_ms) instead of per accumulated work — the loosest
  /// latency bound, the fewest fsyncs.
  kInterval,
};

const char* SyncModeToString(SyncMode mode);

/// Parses "batch" / "pipelined" / "interval".
Result<SyncMode> ParseSyncMode(const std::string& name);

/// Tuning knobs for the durable write path, threaded from RuntimeOptions
/// down to each shard's log.
struct DurabilityOptions {
  SyncMode mode = SyncMode::kBatch;
  /// kPipelined: fsync after this many batch boundaries accumulate
  /// unsynced (clamped to >= 1).
  size_t pipeline_depth = 4;
  /// kPipelined: fsync once this many appended-but-unsynced bytes
  /// accumulate, whatever the boundary count (0 = no byte bound).
  size_t max_unsynced_bytes = 1u << 20;
  /// kInterval: fsync cadence in milliseconds (clamped to >= 1).
  uint32_t sync_interval_ms = 5;
  /// Rotate to a fresh numbered WAL segment once the current one
  /// crosses this many bytes (0 disables rotation).
  size_t segment_max_bytes = 64u << 20;
  /// kPipelined/kInterval: a failed fsync normally sticky-fails the log
  /// (the sharded contract — the watermark freezes until a checkpoint
  /// rebuilds the chain). The sequential runtime sets this instead: a
  /// failed fsync leaves NO hole — every record is already written, in
  /// order, by the single log thread; only the barrier failed — so the
  /// log counts the failure, keeps the error out of the sticky slot,
  /// and retries on its next cadence. Barriers that explicitly demanded
  /// the failed fsync (Flush/WaitDurable) still report it. Append
  /// failures stay sticky regardless: a lost record is a hole.
  bool retry_failed_syncs = false;
  /// Test-only fault injection, called before every physical append and
  /// fsync with op "append"/"sync" and the 1-based attempt count on
  /// this log; a non-OK return simulates that failure. Null in
  /// production.
  std::function<Status(const char* op, uint64_t count)> fault_injector;
  /// Telemetry (may be null; borrowed, must outlive the runtime). When
  /// set, every physical WAL fsync records its wall duration in the
  /// "wal.sync" histogram — one series across shards; the per-shard
  /// split has never been the interesting axis, the fsync cost is.
  MetricsRegistry* metrics = nullptr;
};

/// A claim check for the durability of logged work: the per-log
/// sequence number of the last record covered. A log's WaitDurable(seq)
/// returns once an fsync has covered that record. seq 0 = nothing.
struct CommitTicket {
  uint64_t seq = 0;
};

/// The durability position of a runtime: how many log records have been
/// accepted (their events applied to live state) vs made crash-proof.
/// durable == applied means nothing would be lost by a crash right now.
struct DurabilityWatermark {
  uint64_t applied = 0;
  uint64_t durable = 0;
};

/// One shard's write-ahead log under a chosen SyncMode. Construction
/// wraps an open WalWriter positioned at the current segment's tail;
/// kPipelined/kInterval spawn the log thread, kBatch stays synchronous
/// on the caller's thread (and is byte-identical to driving the
/// WalWriter directly, which the equivalence matrix relies on).
///
/// Thread contract: Append/BatchBoundary are called by the owning
/// shard's worker (one at a time); Flush/WaitDurable/watermark/counters
/// may be called from the control thread concurrently with the log
/// thread. The destructor drains the queue, makes a best-effort final
/// sync, and joins the thread.
class ShardLog {
 public:
  /// Called on the log thread when the current segment crosses
  /// segment_max_bytes (after it has been fully fsynced): must create
  /// the next numbered segment, commit its name (manifest), and return
  /// its writer. A failure leaves the current segment in place (growth
  /// retries on the next sync).
  using RotateFn = std::function<Result<WalWriter>(uint32_t next_segment)>;

  /// `writer` is the open current segment, `writer_bytes` its existing
  /// size (rotation accounting), `segment_index` its number within the
  /// epoch. `sync_each_batch` only matters in kBatch mode (false = the
  /// legacy page-cache-boundary configuration: no automatic fsync).
  ShardLog(WalWriter writer, uint64_t writer_bytes, uint32_t segment_index,
           DurabilityOptions options, bool sync_each_batch, RotateFn rotate);
  ~ShardLog();
  ShardLog(const ShardLog&) = delete;
  ShardLog& operator=(const ShardLog&) = delete;

  /// Appends one record. kBatch: synchronous write-through; a non-OK
  /// status means the record was NOT written (refuse the event).
  /// kPipelined/kInterval: enqueues and returns the record's ticket —
  /// never an error (failures surface asynchronously; see file
  /// comment).
  Result<CommitTicket> Append(const Record& record);

  /// Marks a batch boundary (the group-commit point). kBatch: fsync now
  /// when sync_each_batch. kPipelined/kInterval: counts one pipeline
  /// group and returns immediately. The returned ticket covers every
  /// record appended so far; a non-OK status reports a sync failure (or
  /// the sticky pipelined error) — applied events' durability is in
  /// doubt but they were applied.
  Result<CommitTicket> BatchBoundary();

  /// Durability barrier: blocks until every accepted record is durable
  /// (forcing an fsync), or returns the sticky error.
  Status Flush();

  /// Blocks until `seq` is durable or the log is sticky-failed.
  Status WaitDurable(uint64_t seq);

  /// Sequence of the last accepted record / last durable record.
  uint64_t appended_seq() const;
  uint64_t durable_seq() const;

  /// Records accepted through this log (== appended_seq; the name kept
  /// for parity with WalWriter::appended()).
  uint64_t appended() const { return appended_seq(); }

  /// Physical failures observed (sticky in pipelined modes; per-event
  /// refusals in batch mode).
  uint64_t append_failures() const;
  uint64_t sync_failures() const;

  /// Current segment number within the epoch (grows with rotation).
  uint32_t segment_index() const;

 private:
  struct Entry {
    uint64_t seq = 0;     // 0 for pure boundary markers.
    std::string line;     // Encoded record + '\n'; empty for boundaries.
    bool boundary = false;
  };

  /// Publishes pending_ (producer-buffered records) onto the shared
  /// queue and wakes the log thread. Producer thread only.
  void PublishPending();

  void ThreadLoop();
  /// Writes one line through the fault injector; updates counters.
  Status WriteLine(const std::string& line);
  /// fsyncs through the fault injector; on success advances durable_.
  Status SyncNow(uint64_t covered_seq);
  /// Rotates if the threshold tripped (call only with everything
  /// synced).
  void MaybeRotate();
  /// Batch-mode synchronous body of Append.
  Result<CommitTicket> AppendSynchronous(const std::string& line);

  const DurabilityOptions options_;
  const bool sync_each_batch_;
  const RotateFn rotate_;
  Histogram* sync_histogram_ = nullptr;  // Resolved once in the ctor.

  // Log-thread-owned (batch mode: caller-thread-owned; no concurrency).
  WalWriter writer_;
  uint64_t segment_bytes_ = 0;
  uint32_t segment_index_ = 0;
  uint64_t written_seq_ = 0;     // Last seq physically written.
  uint64_t unsynced_bytes_ = 0;
  size_t unsynced_groups_ = 0;
  uint64_t append_attempts_ = 0;
  uint64_t sync_attempts_ = 0;

  /// Producer-side buffer (the shard worker's thread): pipelined
  /// Append is a plain vector push — no lock, no wakeup — and
  /// BatchBoundary publishes the whole slice onto queue_ in one lock
  /// acquisition. This keeps the per-event hot path free of futex
  /// traffic; the trade is that the log thread sees a batch's records
  /// at its boundary, which still overlaps their write+fsync with the
  /// NEXT batch's evaluation (the pipelining that matters).
  std::vector<Entry> pending_;
  /// Last accepted seq. Atomic (not mu_-guarded): bumped by the single
  /// producer, read by watermark/stats threads.
  std::atomic<uint64_t> appended_{0};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // Log thread waits here.
  std::condition_variable durable_cv_;  // Barriers wait here.
  std::deque<Entry> queue_;
  uint64_t durable_ = 0;        // Last fsynced seq.
  Status sticky_error_;         // First pipelined write/sync failure.
  /// retry_failed_syncs only: the failure of an explicitly demanded
  /// fsync (flush/stop), parked here so the barrier waiter can report
  /// it without the log going sticky. Consumed by WaitDurable.
  Status flush_error_;
  uint64_t append_failures_ = 0;
  uint64_t sync_failures_ = 0;
  uint32_t shared_segment_index_ = 0;  // Mirror for segment_index().
  bool flush_requested_ = false;
  bool stop_ = false;

  std::thread thread_;  // Joinable only in kPipelined/kInterval.
};

}  // namespace ltam

#endif  // LTAM_STORAGE_LOG_PIPELINE_H_
