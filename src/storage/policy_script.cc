// Copyright 2026 The LTAM Authors.

#include "storage/policy_script.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ltam {

namespace {

/// Splits one directive line into tokens, gluing "[a, b]" intervals and
/// "op(arg with spaces)" operator specs into single tokens.
Result<std::vector<std::string>> TokenizeLine(const std::string& line) {
  std::vector<std::string> raw = SplitAndTrim(line, ' ');
  std::vector<std::string> out;
  std::string pending;
  int depth = 0;
  for (const std::string& tok : raw) {
    if (!pending.empty()) {
      pending += " " + tok;
    } else {
      pending = tok;
    }
    for (char c : tok) {
      if (c == '[' || c == '(') ++depth;
      if (c == ']' || c == ')') --depth;
    }
    if (depth <= 0) {
      out.push_back(pending);
      pending.clear();
      depth = 0;
    }
  }
  if (!pending.empty()) {
    return Status::ParseError("unbalanced brackets in '" + line + "'");
  }
  return out;
}

Status Err(size_t line_no, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            message);
}

}  // namespace

Result<SystemState> ParsePolicyScript(
    const std::string& script, const SubjectOperatorRegistry& subject_ops,
    const LocationOperatorRegistry& location_ops) {
  SystemState state;
  bool site_defined = false;
  std::istringstream in(script);
  std::string line;
  size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    Result<std::vector<std::string>> tokens_or = TokenizeLine(line);
    if (!tokens_or.ok()) {
      return tokens_or.status().WithContext("line " +
                                            std::to_string(line_no));
    }
    const std::vector<std::string>& t = *tokens_or;
    const std::string directive = ToUpper(t[0]);
    auto need = [&](size_t n) -> Status {
      if (t.size() < n + 1) {
        return Err(line_no, directive + " needs " + std::to_string(n) +
                                " argument(s)");
      }
      return Status::OK();
    };

    if (directive == "SITE") {
      LTAM_RETURN_IF_ERROR(need(1));
      if (site_defined) return Err(line_no, "duplicate SITE");
      state.graph = MultilevelLocationGraph(t[1]);
      site_defined = true;
      continue;
    }
    if (!site_defined) {
      return Err(line_no, "the script must start with SITE <name>");
    }

    if (directive == "COMPOSITE" || directive == "ROOM") {
      LTAM_RETURN_IF_ERROR(need(3));
      if (ToUpper(t[2]) != "IN") {
        return Err(line_no, directive + " <name> IN <parent>");
      }
      Result<LocationId> parent = state.graph.Find(t[3]);
      if (!parent.ok()) {
        return Err(line_no, "unknown parent '" + t[3] + "'");
      }
      Result<LocationId> added =
          directive == "COMPOSITE"
              ? state.graph.AddComposite(t[1], *parent)
              : state.graph.AddPrimitive(t[1], *parent);
      if (!added.ok()) return Err(line_no, added.status().message());
      continue;
    }
    if (directive == "EDGE") {
      LTAM_RETURN_IF_ERROR(need(2));
      Status st = state.graph.AddEdge(t[1], t[2]);
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "ENTRY") {
      LTAM_RETURN_IF_ERROR(need(1));
      Status st = state.graph.SetEntry(t[1], true);
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "BOUNDARY") {
      LTAM_RETURN_IF_ERROR(need(5));
      Result<LocationId> loc = state.graph.Find(t[1]);
      if (!loc.ok()) return Err(line_no, "unknown location '" + t[1] + "'");
      double coords[4];
      for (int i = 0; i < 4; ++i) {
        Result<double> v = ParseDouble(t[static_cast<size_t>(i) + 2]);
        if (!v.ok()) return Err(line_no, "bad coordinate '" + t[i + 2] + "'");
        coords[i] = *v;
      }
      Status st = state.graph.SetBoundary(
          *loc, Polygon::Rect(coords[0], coords[1], coords[2], coords[3]));
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "DESCRIBE") {
      LTAM_RETURN_IF_ERROR(need(2));
      Result<LocationId> loc = state.graph.Find(t[1]);
      if (!loc.ok()) return Err(line_no, "unknown location '" + t[1] + "'");
      std::vector<std::string> words(t.begin() + 2, t.end());
      Status st = state.graph.SetDescription(*loc, Join(words, " "));
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "SUBJECT") {
      LTAM_RETURN_IF_ERROR(need(1));
      Result<SubjectId> added = state.profiles.AddSubject(t[1]);
      if (!added.ok()) return Err(line_no, added.status().message());
      continue;
    }
    if (directive == "SUPERVISOR") {
      LTAM_RETURN_IF_ERROR(need(2));
      Result<SubjectId> s = state.profiles.Find(t[1]);
      Result<SubjectId> sup = state.profiles.Find(t[2]);
      if (!s.ok() || !sup.ok()) return Err(line_no, "unknown subject");
      Status st = state.profiles.SetSupervisor(*s, *sup);
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "GROUP" || directive == "ROLE") {
      LTAM_RETURN_IF_ERROR(need(2));
      Result<SubjectId> s = state.profiles.Find(t[1]);
      if (!s.ok()) return Err(line_no, "unknown subject '" + t[1] + "'");
      Status st = directive == "GROUP"
                      ? state.profiles.AddToGroup(*s, t[2])
                      : state.profiles.AssignRole(*s, t[2]);
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "ATTR") {
      LTAM_RETURN_IF_ERROR(need(3));
      Result<SubjectId> s = state.profiles.Find(t[1]);
      if (!s.ok()) return Err(line_no, "unknown subject '" + t[1] + "'");
      Status st = state.profiles.SetAttribute(*s, t[2], t[3]);
      if (!st.ok()) return Err(line_no, st.message());
      continue;
    }
    if (directive == "AUTH") {
      // AUTH <subject> <location> ENTER [a,b] [EXIT [c,d]] [TIMES n].
      LTAM_RETURN_IF_ERROR(need(4));
      Result<SubjectId> s = state.profiles.Find(t[1]);
      if (!s.ok()) return Err(line_no, "unknown subject '" + t[1] + "'");
      Result<LocationId> l = state.graph.Find(t[2]);
      if (!l.ok()) return Err(line_no, "unknown location '" + t[2] + "'");
      if (ToUpper(t[3]) != "ENTER") {
        return Err(line_no, "AUTH needs ENTER [a,b]");
      }
      Result<TimeInterval> entry = TimeInterval::Parse(t[4]);
      if (!entry.ok()) return Err(line_no, entry.status().message());
      std::optional<TimeInterval> exit;
      int64_t times = kUnlimitedEntries;
      size_t i = 5;
      while (i < t.size()) {
        std::string kw = ToUpper(t[i]);
        if (kw == "EXIT" && i + 1 < t.size()) {
          Result<TimeInterval> e = TimeInterval::Parse(t[i + 1]);
          if (!e.ok()) return Err(line_no, e.status().message());
          exit = *e;
          i += 2;
        } else if (kw == "TIMES" && i + 1 < t.size()) {
          Result<int64_t> n = ParseInt64(t[i + 1]);
          if (!n.ok()) return Err(line_no, n.status().message());
          times = *n;
          i += 2;
        } else {
          return Err(line_no, "unexpected AUTH clause '" + t[i] + "'");
        }
      }
      Result<LocationTemporalAuthorization> auth =
          exit.has_value()
              ? LocationTemporalAuthorization::Make(
                    *entry, *exit, LocationAuthorization{*s, *l}, times)
              : LocationTemporalAuthorization::MakeDefaultExit(
                    *entry, LocationAuthorization{*s, *l}, times);
      if (!auth.ok()) return Err(line_no, auth.status().message());
      state.auth_db.Add(*auth);
      continue;
    }
    if (directive == "RULE") {
      // RULE FROM <tr> BASE <idx> [ENTRY <op>] [EXITOP <op>]
      //      [SUBJECT <op>] [LOCATION <op>] [COUNT <expr>] [LABEL <w>].
      AuthorizationRule rule;
      size_t i = 1;
      bool have_base = false;
      while (i < t.size()) {
        std::string kw = ToUpper(t[i]);
        if (i + 1 >= t.size()) {
          return Err(line_no, "RULE clause '" + t[i] + "' needs a value");
        }
        const std::string& value = t[i + 1];
        if (kw == "FROM") {
          Result<Chronon> tr = ParseChronon(value);
          if (!tr.ok()) return Err(line_no, tr.status().message());
          rule.valid_from = *tr;
        } else if (kw == "BASE") {
          Result<int64_t> idx = ParseInt64(value);
          if (!idx.ok() || *idx < 0 ||
              static_cast<size_t>(*idx) >= state.auth_db.size()) {
            return Err(line_no, "BASE must index a preceding AUTH");
          }
          rule.base = static_cast<AuthId>(*idx);
          have_base = true;
        } else if (kw == "ENTRY") {
          Result<TemporalOperatorPtr> op = ParseTemporalOperator(value);
          if (!op.ok()) return Err(line_no, op.status().message());
          rule.op_entry = *op;
        } else if (kw == "EXITOP") {
          Result<TemporalOperatorPtr> op = ParseTemporalOperator(value);
          if (!op.ok()) return Err(line_no, op.status().message());
          rule.op_exit = *op;
        } else if (kw == "SUBJECT") {
          Result<SubjectOperatorPtr> op = subject_ops.Parse(value);
          if (!op.ok()) return Err(line_no, op.status().message());
          rule.op_subject = *op;
        } else if (kw == "LOCATION") {
          Result<LocationOperatorPtr> op = location_ops.Parse(value);
          if (!op.ok()) return Err(line_no, op.status().message());
          rule.op_location = *op;
        } else if (kw == "COUNT") {
          Result<CountExpr> expr = CountExpr::Parse(value);
          if (!expr.ok()) return Err(line_no, expr.status().message());
          rule.exp_n = *expr;
        } else if (kw == "LABEL") {
          rule.label = value;
        } else {
          return Err(line_no, "unknown RULE clause '" + t[i] + "'");
        }
        i += 2;
      }
      if (!have_base) return Err(line_no, "RULE needs BASE <index>");
      rule.id = static_cast<RuleId>(state.rules.size());
      state.rules.push_back(std::move(rule));
      continue;
    }
    return Err(line_no, "unknown directive '" + t[0] + "'");
  }

  if (!site_defined) {
    return Status::ParseError("empty policy script (no SITE)");
  }
  LTAM_RETURN_IF_ERROR(
      state.graph.Validate().WithContext("policy script validation"));
  return state;
}

Result<SystemState> ParsePolicyScript(const std::string& script) {
  return ParsePolicyScript(script, SubjectOperatorRegistry::Default(),
                           LocationOperatorRegistry::Default());
}

Result<SystemState> LoadPolicyScript(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open policy script '" + path + "'");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return ParsePolicyScript(contents);
}

const char* DemoPolicyScript() {
  return R"(
# Demo policy: a slice of the paper's NTU campus.
SITE NTU
COMPOSITE SCE IN NTU
ROOM SCE.GO IN SCE
ROOM SCE.SectionA IN SCE
ROOM SCE.SectionB IN SCE
ROOM CAIS IN SCE
EDGE SCE.GO SCE.SectionA
EDGE SCE.SectionA SCE.SectionB
EDGE SCE.SectionB CAIS
ENTRY SCE.GO
ENTRY SCE

SUBJECT Alice
SUBJECT Bob
SUPERVISOR Alice Bob

AUTH Alice CAIS ENTER [5,20] EXIT [15,50] TIMES 2
AUTH Alice SCE.GO ENTER [0,30] EXIT [0,60]
AUTH Alice SCE.SectionA ENTER [0,30] EXIT [0,60]
AUTH Alice SCE.SectionB ENTER [0,40] EXIT [0,60]

# Bob inherits Alice's CAIS rights (Example 1).
RULE FROM 7 BASE 0 SUBJECT Supervisor_Of LABEL r1
)";
}

}  // namespace ltam
