// Copyright 2026 The LTAM Authors.

#include "core/auth_database.h"

#include "util/logging.h"

namespace ltam {

void AuthorizationDatabase::ClearCache() const {
  for (CacheBucket& bucket : cache_) {
    std::lock_guard<std::mutex> lock(bucket.mu);
    bucket.entries.clear();
  }
}

AuthorizationDatabase::AuthorizationDatabase(
    AuthorizationDatabase&& other) noexcept
    : records_(std::move(other.records_)),
      by_subject_location_(std::move(other.by_subject_location_)),
      by_subject_(std::move(other.by_subject_)),
      by_location_(std::move(other.by_location_)),
      by_rule_(std::move(other.by_rule_)),
      active_count_(other.active_count_),
      version_(other.version_.load(std::memory_order_acquire)),
      subject_version_(std::move(other.subject_version_)) {
  other.active_count_ = 0;
  // The moved-from database keeps its (untouched) cache buckets but has
  // lost its records; drop the buckets so a later read rescans the now-
  // empty indexes instead of serving dangling AuthIds.
  other.ClearCache();
}

AuthorizationDatabase& AuthorizationDatabase::operator=(
    AuthorizationDatabase&& other) noexcept {
  if (this == &other) return *this;
  records_ = std::move(other.records_);
  by_subject_location_ = std::move(other.by_subject_location_);
  by_subject_ = std::move(other.by_subject_);
  by_location_ = std::move(other.by_location_);
  by_rule_ = std::move(other.by_rule_);
  active_count_ = other.active_count_;
  subject_version_ = std::move(other.subject_version_);
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
  other.active_count_ = 0;
  // Our old cache entries could collide with the incoming per-subject
  // versions; both sides start cold.
  ClearCache();
  other.ClearCache();
  return *this;
}

AuthorizationDatabase::AuthorizationDatabase(
    const AuthorizationDatabase& other)
    : records_(other.records_),
      by_subject_location_(other.by_subject_location_),
      by_subject_(other.by_subject_),
      by_location_(other.by_location_),
      by_rule_(other.by_rule_),
      active_count_(other.active_count_),
      version_(other.version_.load(std::memory_order_acquire)),
      subject_version_(other.subject_version_) {}

AuthorizationDatabase& AuthorizationDatabase::operator=(
    const AuthorizationDatabase& other) {
  if (this == &other) return *this;
  records_ = other.records_;
  by_subject_location_ = other.by_subject_location_;
  by_subject_ = other.by_subject_;
  by_location_ = other.by_location_;
  by_rule_ = other.by_rule_;
  active_count_ = other.active_count_;
  subject_version_ = other.subject_version_;
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
  // Our old entries could collide with the incoming per-subject versions.
  ClearCache();
  return *this;
}

void AuthorizationDatabase::TouchSubject(SubjectId s) {
  ++subject_version_[s];
  version_.fetch_add(1, std::memory_order_acq_rel);
}

uint64_t AuthorizationDatabase::SubjectVersion(SubjectId s) const {
  auto it = subject_version_.find(s);
  return it == subject_version_.end() ? 0 : it->second;
}

AuthId AuthorizationDatabase::Add(const LocationTemporalAuthorization& auth) {
  AuthId id = static_cast<AuthId>(records_.size());
  records_.push_back(AuthRecord{id, auth, AuthOrigin::kExplicit,
                                kInvalidRule, false, 0});
  by_subject_location_[Key(auth.subject(), auth.location())].push_back(id);
  by_subject_[auth.subject()].push_back(id);
  by_location_[auth.location()].push_back(id);
  ++active_count_;
  TouchSubject(auth.subject());
  return id;
}

AuthId AuthorizationDatabase::AddDerived(
    const LocationTemporalAuthorization& auth, RuleId rule) {
  AuthId id = Add(auth);
  records_[id].origin = AuthOrigin::kDerived;
  records_[id].source_rule = rule;
  by_rule_[rule].push_back(id);
  return id;
}

Status AuthorizationDatabase::Revoke(AuthId id) {
  if (!Exists(id)) return Status::NotFound("no such authorization");
  if (!records_[id].revoked) {
    records_[id].revoked = true;
    --active_count_;
    TouchSubject(records_[id].auth.subject());
  }
  return Status::OK();
}

size_t AuthorizationDatabase::RevokeDerivedBy(RuleId rule) {
  auto it = by_rule_.find(rule);
  if (it == by_rule_.end()) return 0;
  size_t revoked = 0;
  for (AuthId id : it->second) {
    if (!records_[id].revoked) {
      records_[id].revoked = true;
      --active_count_;
      ++revoked;
      TouchSubject(records_[id].auth.subject());
    }
  }
  return revoked;
}

Status AuthorizationDatabase::RecordEntry(AuthId id) {
  if (!Exists(id)) return Status::NotFound("no such authorization");
  AuthRecord& rec = records_[id];
  if (rec.revoked) {
    return Status::FailedPrecondition("authorization is revoked");
  }
  if (rec.auth.max_entries() != kUnlimitedEntries &&
      rec.entries_used >= rec.auth.max_entries()) {
    return Status::FailedPrecondition("authorization entries exhausted");
  }
  ++rec.entries_used;
  return Status::OK();
}

const AuthRecord& AuthorizationDatabase::record(AuthId id) const {
  LTAM_CHECK(Exists(id)) << "authorization id " << id << " out of range";
  return records_[id];
}

namespace {
std::vector<AuthId> FilterActive(
    const std::vector<AuthRecord>& records,
    const std::vector<AuthId>* ids) {
  std::vector<AuthId> out;
  if (ids == nullptr) return out;
  out.reserve(ids->size());
  for (AuthId id : *ids) {
    if (!records[id].revoked) out.push_back(id);
  }
  return out;
}
}  // namespace

std::vector<AuthId> AuthorizationDatabase::ScanSubjectLocation(
    SubjectId s, LocationId l) const {
  auto it = by_subject_location_.find(Key(s, l));
  return FilterActive(records_,
                      it == by_subject_location_.end() ? nullptr : &it->second);
}

const std::vector<AuthId>& AuthorizationDatabase::CachedActive(
    CacheBucket& bucket, SubjectId s, LocationId l) const {
  // Entries are tagged with the *subject's* version: a mutation touching
  // one subject invalidates only that subject's cached lists. (A subject
  // that was never mutated has version 0 and no authorizations, which a
  // default-constructed entry — version 0, empty list — already answers
  // correctly.)
  uint64_t ver = SubjectVersion(s);
  CacheEntry& entry = bucket.entries[Key(s, l)];
  if (entry.version != ver) {
    entry.version = ver;
    entry.active = ScanSubjectLocation(s, l);
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry.active;
}

std::vector<AuthId> AuthorizationDatabase::ForSubjectLocation(
    SubjectId s, LocationId l) const {
  // Deliberately uncached: bulk analytic sweeps (Algorithm 1 seeding,
  // conflict scans, interval aggregates) would otherwise insert one
  // never-evicted cache entry per (subject, location) pair they touch.
  // Only the request hot path (CheckAccess) populates the cache.
  return ScanSubjectLocation(s, l);
}

std::vector<AuthId> AuthorizationDatabase::ForSubject(SubjectId s) const {
  auto it = by_subject_.find(s);
  return FilterActive(records_, it == by_subject_.end() ? nullptr : &it->second);
}

std::vector<AuthId> AuthorizationDatabase::ForLocation(LocationId l) const {
  auto it = by_location_.find(l);
  return FilterActive(records_,
                      it == by_location_.end() ? nullptr : &it->second);
}

std::vector<AuthId> AuthorizationDatabase::Active() const {
  std::vector<AuthId> out;
  out.reserve(active_count_);
  for (const AuthRecord& rec : records_) {
    if (!rec.revoked) out.push_back(rec.id);
  }
  return out;
}

Decision AuthorizationDatabase::CheckAccess(Chronon t, SubjectId s,
                                            LocationId l) const {
  // Hot path: candidate ids come from the derived-authorization cache
  // (no allocation on a hit); ledger state is read live from records_.
  CacheBucket& bucket = cache_[s % kCacheBuckets];
  std::lock_guard<std::mutex> lock(bucket.mu);
  const std::vector<AuthId>& candidates = CachedActive(bucket, s, l);
  if (candidates.empty()) {
    return Decision::Deny(DenyReason::kNoAuthorization);
  }
  bool any_in_window = false;
  for (AuthId id : candidates) {
    const AuthRecord& rec = records_[id];
    if (!rec.auth.entry_duration().Contains(t)) continue;
    any_in_window = true;
    // Definition 7: "s has entered l during [tis, tie] for less than n
    // times."
    if (rec.auth.max_entries() == kUnlimitedEntries ||
        rec.entries_used < rec.auth.max_entries()) {
      return Decision::Grant(id);
    }
  }
  return Decision::Deny(any_in_window ? DenyReason::kEntriesExhausted
                                      : DenyReason::kOutsideEntryDuration);
}

Decision AuthorizationDatabase::CheckAndRecordAccess(Chronon t, SubjectId s,
                                                     LocationId l) {
  Decision d = CheckAccess(t, s, l);
  if (d.granted) {
    Status st = RecordEntry(d.auth);
    LTAM_CHECK(st.ok()) << "ledger update failed after grant: "
                        << st.ToString();
  }
  return d;
}

IntervalSet AuthorizationDatabase::EntryDurations(SubjectId s,
                                                  LocationId l) const {
  IntervalSet out;
  for (AuthId id : ForSubjectLocation(s, l)) {
    out.Add(records_[id].auth.entry_duration());
  }
  return out;
}

IntervalSet AuthorizationDatabase::ExitDurations(SubjectId s,
                                                 LocationId l) const {
  IntervalSet out;
  for (AuthId id : ForSubjectLocation(s, l)) {
    out.Add(records_[id].auth.exit_duration());
  }
  return out;
}

IntervalSet AuthorizationDatabase::GrantDurations(
    SubjectId s, LocationId l, const TimeInterval& window) const {
  IntervalSet out;
  for (AuthId id : ForSubjectLocation(s, l)) {
    std::optional<TimeInterval> g = records_[id].auth.GrantDuration(window);
    if (g.has_value()) out.Add(*g);
  }
  return out;
}

}  // namespace ltam
