// Copyright 2026 The LTAM Authors.

#include "core/rules/location_op.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace ltam {

Result<std::vector<LocationId>> IdentityLocationOp::Apply(
    LocationId base, const MultilevelLocationGraph& graph) const {
  if (!graph.Exists(base)) {
    return Status::NotFound("base location does not exist");
  }
  return std::vector<LocationId>{base};
}

Result<std::vector<LocationId>> AllRouteFromOp::Apply(
    LocationId base, const MultilevelLocationGraph& graph) const {
  LTAM_ASSIGN_OR_RETURN(LocationId src, graph.Find(source_));
  if (!graph.Exists(base) || !graph.location(base).IsPrimitive()) {
    return Status::InvalidArgument(
        "all_route_from needs a primitive base location");
  }
  // Example 3's result covers exactly the routes inside the source and
  // destination's own location graph (SCE), not detours through sibling
  // schools — scope the enumeration to their lowest common composite.
  LTAM_ASSIGN_OR_RETURN(LocationId scope,
                        graph.LowestCommonComposite(src, base));
  std::vector<std::vector<LocationId>> routes =
      graph.EnumerateRoutesWithin(scope, src, base, max_routes_, max_length_);
  if (routes.empty()) {
    return Status::NotFound("no route from '" + source_ + "' to '" +
                            graph.location(base).name + "'");
  }
  std::set<LocationId> seen;
  for (const std::vector<LocationId>& route : routes) {
    for (LocationId l : route) seen.insert(l);
  }
  seen.erase(base);  // The base authorization already covers the base.
  return std::vector<LocationId>(seen.begin(), seen.end());
}

Result<std::vector<LocationId>> ShortestRouteFromOp::Apply(
    LocationId base, const MultilevelLocationGraph& graph) const {
  LTAM_ASSIGN_OR_RETURN(LocationId src, graph.Find(source_));
  LTAM_ASSIGN_OR_RETURN(std::vector<LocationId> route,
                        graph.FindRoute(src, base));
  std::vector<LocationId> out;
  for (LocationId l : route) {
    if (l != base) out.push_back(l);
  }
  return out;
}

Result<std::vector<LocationId>> NeighborsOp::Apply(
    LocationId base, const MultilevelLocationGraph& graph) const {
  if (!graph.Exists(base) || !graph.location(base).IsPrimitive()) {
    return Status::InvalidArgument("neighbors needs a primitive base");
  }
  return graph.EffectiveNeighbors(base);
}

Result<std::vector<LocationId>> WithinCompositeOp::Apply(
    LocationId /*base*/, const MultilevelLocationGraph& graph) const {
  LTAM_ASSIGN_OR_RETURN(LocationId c, graph.Find(composite_));
  if (!graph.location(c).IsComposite()) {
    return Status::InvalidArgument("'" + composite_ + "' is not composite");
  }
  return graph.PrimitivesWithin(c);
}

Result<std::vector<LocationId>> EntriesOfOp::Apply(
    LocationId /*base*/, const MultilevelLocationGraph& graph) const {
  LTAM_ASSIGN_OR_RETURN(LocationId c, graph.Find(composite_));
  std::vector<LocationId> entries = graph.EntryPrimitives(c);
  if (entries.empty()) {
    return Status::FailedPrecondition("'" + composite_ +
                                      "' has no entry primitives");
  }
  return entries;
}

LocationOperatorRegistry LocationOperatorRegistry::Default() {
  LocationOperatorRegistry reg;
  reg.Register("identity",
               [](const std::string&) -> Result<LocationOperatorPtr> {
                 return LocationOperatorPtr(new IdentityLocationOp());
               });
  reg.Register("all_route_from",
               [](const std::string& arg) -> Result<LocationOperatorPtr> {
                 if (arg.empty()) {
                   return Status::ParseError("all_route_from needs a source");
                 }
                 return LocationOperatorPtr(new AllRouteFromOp(arg));
               });
  reg.Register("shortest_route_from",
               [](const std::string& arg) -> Result<LocationOperatorPtr> {
                 if (arg.empty()) {
                   return Status::ParseError(
                       "shortest_route_from needs a source");
                 }
                 return LocationOperatorPtr(new ShortestRouteFromOp(arg));
               });
  reg.Register("neighbors",
               [](const std::string&) -> Result<LocationOperatorPtr> {
                 return LocationOperatorPtr(new NeighborsOp());
               });
  reg.Register("within",
               [](const std::string& arg) -> Result<LocationOperatorPtr> {
                 if (arg.empty()) {
                   return Status::ParseError("within needs a composite");
                 }
                 return LocationOperatorPtr(new WithinCompositeOp(arg));
               });
  reg.Register("entries_of",
               [](const std::string& arg) -> Result<LocationOperatorPtr> {
                 if (arg.empty()) {
                   return Status::ParseError("entries_of needs a composite");
                 }
                 return LocationOperatorPtr(new EntriesOfOp(arg));
               });
  return reg;
}

void LocationOperatorRegistry::Register(const std::string& name,
                                        Factory factory) {
  factories_[ToLower(name)] = std::move(factory);
}

Result<LocationOperatorPtr> LocationOperatorRegistry::Parse(
    const std::string& spec) const {
  std::string t = Trim(spec);
  std::string name = t;
  std::string arg;
  size_t open = t.find('(');
  if (open != std::string::npos) {
    if (t.back() != ')') {
      return Status::ParseError("unbalanced parentheses in '" + t + "'");
    }
    name = Trim(t.substr(0, open));
    arg = Trim(t.substr(open + 1, t.size() - open - 2));
  }
  auto it = factories_.find(ToLower(name));
  if (it == factories_.end()) {
    return Status::NotFound("unknown location operator '" + name + "'");
  }
  return it->second(arg);
}

}  // namespace ltam
