// Copyright 2026 The LTAM Authors.
// A human-writable policy script format.
//
// Security officers author the whole system — layout, subjects,
// authorizations, rules — as a line-oriented script instead of API
// calls. One directive per line, '#' comments, names are bare words
// (no whitespace), intervals in the usual "[a, b]" syntax (written
// without internal spaces or quoted by the tokenizer's bracket rule):
//
//   SITE NTU
//   COMPOSITE SCE IN NTU
//   ROOM SCE.GO IN SCE
//   ROOM CAIS IN SCE
//   EDGE SCE.GO CAIS
//   ENTRY SCE.GO
//   ENTRY SCE                      # SCE is an entry of NTU
//   BOUNDARY SCE.GO 0 0 10 8      # axis-aligned rectangle
//   SUBJECT Alice
//   SUBJECT Bob
//   SUPERVISOR Alice Bob
//   GROUP Alice cais-lab
//   ROLE Bob professor
//   ATTR Alice office N4-02c
//   AUTH Alice CAIS ENTER [5,20] EXIT [15,50] TIMES 2
//   RULE FROM 7 BASE 0 SUBJECT Supervisor_Of COUNT min(n,2) LABEL r1
//   RULE FROM 7 BASE 0 ENTRY INTERSECTION([10,30]) LABEL r2
//   RULE FROM 7 BASE 0 LOCATION all_route_from(SCE.GO) LABEL r3
//
// AUTH's EXIT clause is optional (Definition 4's default [tis, inf])
// and TIMES defaults to unlimited. RULE's BASE refers to the 0-based
// index of a preceding AUTH directive.

#ifndef LTAM_STORAGE_POLICY_SCRIPT_H_
#define LTAM_STORAGE_POLICY_SCRIPT_H_

#include <string>

#include "storage/snapshot.h"

namespace ltam {

/// Parses a policy script into a fresh SystemState. Errors carry the
/// 1-based line number. Custom rule operators resolve through the given
/// registries.
Result<SystemState> ParsePolicyScript(
    const std::string& script,
    const SubjectOperatorRegistry& subject_ops,
    const LocationOperatorRegistry& location_ops);

/// Same, with the default operator registries.
Result<SystemState> ParsePolicyScript(const std::string& script);

/// Reads and parses a policy script file.
Result<SystemState> LoadPolicyScript(const std::string& path);

/// The built-in demo policy (a slice of the paper's NTU campus with
/// Alice, Bob, and Example 1's supervisor rule) that interactive hosts
/// (ltam_shell, ltam_serve) fall back to when no script is given.
const char* DemoPolicyScript();

}  // namespace ltam

#endif  // LTAM_STORAGE_POLICY_SCRIPT_H_
