// Copyright 2026 The LTAM Authors.

#include "engine/access_control_engine.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

AccessControlEngine::AccessControlEngine(
    const MultilevelLocationGraph* graph, AuthorizationDatabase* auth_db,
    MovementDatabase* movement_db, const UserProfileDatabase* profiles,
    EngineOptions options)
    : graph_(graph),
      auth_db_(auth_db),
      movement_db_(movement_db),
      profiles_(profiles),
      options_(options) {
  LTAM_CHECK(graph != nullptr);
  LTAM_CHECK(auth_db != nullptr);
  LTAM_CHECK(movement_db != nullptr);
  LTAM_CHECK(profiles != nullptr);
}

void AccessControlEngine::RaiseAlert(Chronon t, SubjectId s, LocationId l,
                                     AlertType type, std::string detail) {
  alerts_.push_back(Alert{t, s, l, type, std::move(detail)});
}

bool AccessControlEngine::AdjacencyOk(SubjectId s, LocationId l) const {
  LocationId cur = movement_db_->CurrentLocation(s);
  if (cur == kInvalidLocation) {
    // From outside the site, only the site's entry doors are reachable.
    std::vector<LocationId> doors = graph_->EntryPrimitives(graph_->root());
    return std::find(doors.begin(), doors.end(), l) != doors.end();
  }
  if (!graph_->Exists(cur) || !graph_->location(cur).IsPrimitive()) {
    // The movement database names a location the layout does not (a
    // corrupted log replay, or a layout edit that removed the room).
    // There is no legal step from nowhere.
    return false;
  }
  const std::vector<LocationId>& adj = graph_->EffectiveNeighbors(cur);
  return std::find(adj.begin(), adj.end(), l) != adj.end();
}

void AccessControlEngine::CheckExitWindow(Chronon t, SubjectId s,
                                          const ActiveStay& stay) {
  if (stay.auth == kInvalidAuth) return;  // Unauthorized stay; no window.
  const TimeInterval& exit_window =
      auth_db_->record(stay.auth).auth.exit_duration();
  if (t < exit_window.start()) {
    RaiseAlert(t, s, stay.location, AlertType::kEarlyExit,
               "left before exit duration " + exit_window.ToString());
  } else if (t > exit_window.end() && !stay.overstay_alerted) {
    RaiseAlert(t, s, stay.location, AlertType::kOverstay,
               "left after exit duration " + exit_window.ToString());
  }
}

Decision AccessControlEngine::RequestEntry(Chronon t, SubjectId s,
                                           LocationId l) {
  ++requests_processed_;
  Decision decision;
  if (!profiles_->Exists(s)) {
    decision = Decision::Deny(DenyReason::kUnknownSubject);
  } else if (!graph_->Exists(l) || !graph_->location(l).IsPrimitive()) {
    decision = Decision::Deny(DenyReason::kUnknownLocation);
  } else if (options_.enforce_adjacency && !AdjacencyOk(s, l)) {
    decision = Decision::Deny(DenyReason::kNotAdjacent);
  } else {
    decision = auth_db_->CheckAccess(t, s, l);
  }

  if (!decision.granted) {
    if (options_.alert_on_denial) {
      RaiseAlert(t, s, l, AlertType::kAccessDenied,
                 std::string("reason: ") + DenyReasonToString(decision.reason));
    }
    return decision;
  }

  // Close the previous stay (checking its exit window) and open the new
  // one.
  auto it = active_.find(s);
  if (it != active_.end()) {
    CheckExitWindow(t, s, it->second);
  }
  Status st = movement_db_->RecordMovement(t, s, l);
  if (!st.ok()) {
    // Out-of-order event: refuse the grant rather than corrupt history.
    return Decision::Deny(DenyReason::kNotAdjacent);
  }
  Status ledger = auth_db_->RecordEntry(decision.auth);
  LTAM_CHECK(ledger.ok()) << "ledger update failed after grant: "
                          << ledger.ToString();
  active_[s] = ActiveStay{l, decision.auth, t, false};
  ++requests_granted_;
  return decision;
}

Status AccessControlEngine::RequestExit(Chronon t, SubjectId s) {
  auto it = active_.find(s);
  LocationId cur = movement_db_->CurrentLocation(s);
  if (cur == kInvalidLocation) {
    return Status::FailedPrecondition("subject is not inside the site");
  }
  if (it != active_.end()) {
    CheckExitWindow(t, s, it->second);
    active_.erase(it);
  }
  return movement_db_->RecordMovement(t, s, kInvalidLocation);
}

Status AccessControlEngine::ObservePresence(Chronon t, SubjectId s,
                                            LocationId l) {
  LocationId cur = movement_db_->CurrentLocation(s);
  if (cur == l) return Status::OK();  // Observation agrees with the database.
  if (!graph_->Exists(l) || !graph_->location(l).IsPrimitive()) {
    // The tracking substrate named a location the layout does not have
    // (sensor glitch or corrupted log). Never record it: a phantom
    // current location would poison every later adjacency check.
    RaiseAlert(t, s, l, AlertType::kImpossibleMovement,
               "observation names an unknown location");
    return Status::InvalidArgument(
        "observation names an unknown or composite location");
  }

  // The subject is somewhere the database does not expect: they moved
  // without a granted request.
  bool adjacent =
      !options_.enforce_adjacency || AdjacencyOk(s, l);
  if (!adjacent) {
    RaiseAlert(t, s, l, AlertType::kImpossibleMovement,
               StrFormat("observed jump from l%u", cur));
  }
  // Would a request at t have been granted? If not, this is an
  // unauthorized presence (tailgating or barrier bypass).
  Decision hypothetical = auth_db_->CheckAccess(t, s, l);
  if (!hypothetical.granted) {
    RaiseAlert(t, s, l, AlertType::kUnauthorizedPresence,
               std::string("no usable authorization: ") +
                   DenyReasonToString(hypothetical.reason));
  }
  if (options_.record_unauthorized_movement) {
    auto it = active_.find(s);
    if (it != active_.end()) {
      CheckExitWindow(t, s, it->second);
    }
    Status st = movement_db_->RecordMovement(t, s, l);
    if (!st.ok()) {
      // Out-of-order observation: refused, nothing recorded.
      return st;
    }
    if (hypothetical.granted) {
      Status ledger = auth_db_->RecordEntry(hypothetical.auth);
      LTAM_CHECK(ledger.ok())
          << "ledger update failed: " << ledger.ToString();
      active_[s] = ActiveStay{l, hypothetical.auth, t, false};
    } else {
      active_[s] = ActiveStay{l, kInvalidAuth, t, false};
    }
  }
  return Status::OK();
}

Status AccessControlEngine::HandlePositionFix(const PositionFix& fix) {
  if (!resolver_.has_value()) {
    RaiseAlert(fix.time, fix.subject, kInvalidLocation,
               AlertType::kImpossibleMovement,
               "position fix received but no resolver attached");
    return Status::FailedPrecondition(
        "position fix received but no resolver attached");
  }
  std::optional<LocationId> l = resolver_->Resolve(fix.position);
  if (!l.has_value()) {
    // Outside every boundary: if the database thinks the subject is
    // inside, they left without an exit request.
    LocationId cur = movement_db_->CurrentLocation(fix.subject);
    if (cur != kInvalidLocation) {
      auto it = active_.find(fix.subject);
      if (it != active_.end()) {
        CheckExitWindow(fix.time, fix.subject, it->second);
        active_.erase(it);
      }
      return movement_db_->RecordMovement(fix.time, fix.subject,
                                          kInvalidLocation);
    }
    return Status::OK();
  }
  return ObservePresence(fix.time, fix.subject, *l);
}

void AccessControlEngine::AttachResolver(LocationResolver resolver) {
  resolver_ = std::move(resolver);
}

void AccessControlEngine::ResumeStay(SubjectId s, LocationId l, AuthId auth,
                                     Chronon since) {
  active_[s] = ActiveStay{l, auth, since, false};
}

void AccessControlEngine::Tick(Chronon t) {
  for (auto& [s, stay] : active_) {
    if (stay.auth == kInvalidAuth || stay.overstay_alerted) continue;
    const TimeInterval& exit_window =
        auth_db_->record(stay.auth).auth.exit_duration();
    if (t > exit_window.end()) {
      RaiseAlert(t, s, stay.location, AlertType::kOverstay,
                 "still inside after exit duration " +
                     exit_window.ToString());
      stay.overstay_alerted = true;
    }
  }
}

void ResumeOpenStays(AccessControlEngine* engine,
                     const MovementDatabase& movements,
                     const AuthorizationDatabase& auth_db,
                     const std::vector<SubjectId>& subjects) {
  for (SubjectId s : subjects) {
    LocationId cur = movements.CurrentLocation(s);
    if (cur == kInvalidLocation) continue;
    Result<Chronon> since = movements.CurrentStaySince(s);
    if (!since.ok()) continue;
    AuthId chosen = kInvalidAuth;
    for (AuthId id : auth_db.ForSubjectLocation(s, cur)) {
      if (auth_db.record(id).auth.entry_duration().Contains(*since)) {
        chosen = id;
        break;
      }
    }
    engine->ResumeStay(s, cur, chosen, *since);
  }
}

}  // namespace ltam
