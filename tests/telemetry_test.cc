// Copyright 2026 The LTAM Authors.
// The metrics registry's contracts: striped counters aggregate exactly,
// handles stay valid and shared, kind collisions degrade instead of
// aborting, snapshots are safe while writers run (the TSan job hammers
// this file), and the two text renderings are well-formed.

#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

namespace ltam {
namespace {

TEST(MetricsRegistryTest, CounterAggregatesExactlyAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ingest.events");
  ASSERT_NE(nullptr, counter);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  // Striped cells may tear mid-run, but a quiescent read is exact.
  EXPECT_EQ(kThreads * kPerThread, counter->value());

  counter->Increment(42);
  EXPECT_EQ(kThreads * kPerThread + 42, counter->value());
}

TEST(MetricsRegistryTest, LookupsShareHandlesAndCollisionsDegrade) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("a.counter");
  Gauge* gauge = registry.GetGauge("a.gauge");
  Histogram* histogram = registry.GetHistogram("a.histogram");
  ASSERT_NE(nullptr, counter);
  ASSERT_NE(nullptr, gauge);
  ASSERT_NE(nullptr, histogram);
  // Same name + same kind = the same object; call sites can resolve
  // independently and still share one series.
  EXPECT_EQ(counter, registry.GetCounter("a.counter"));
  EXPECT_EQ(gauge, registry.GetGauge("a.gauge"));
  EXPECT_EQ(histogram, registry.GetHistogram("a.histogram"));
  // A kind collision returns nullptr (caller degrades to
  // uninstrumented) and never disturbs the existing metric.
  EXPECT_EQ(nullptr, registry.GetHistogram("a.counter"));
  EXPECT_EQ(nullptr, registry.GetCounter("a.gauge"));
  EXPECT_EQ(nullptr, registry.GetGauge("a.histogram"));
  counter->Increment();
  EXPECT_EQ(1u, registry.GetCounter("a.counter")->value());

  // Find-only never creates.
  EXPECT_EQ(nullptr, registry.FindCounter("never.registered"));
  EXPECT_EQ(counter, registry.FindCounter("a.counter"));
  EXPECT_EQ(nullptr, registry.FindGauge("a.counter"));

  // Remove unregisters; the name is free for a different kind after.
  EXPECT_TRUE(registry.Remove("a.counter"));
  EXPECT_FALSE(registry.Remove("a.counter"));
  EXPECT_EQ(nullptr, registry.FindCounter("a.counter"));
  EXPECT_NE(nullptr, registry.GetGauge("a.counter"));
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("replication.replica.3.lag_records");
  gauge->Set(500);
  EXPECT_EQ(500, gauge->value());
  gauge->Set(-7);  // Lag gauges can legitimately go negative-signed.
  EXPECT_EQ(-7, gauge->value());
  gauge->Set(0);
  EXPECT_EQ(0, gauge->value());
}

TEST(MetricsRegistryTest, HistogramMergesStripesIntoOneDistribution) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("ingest.apply");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(static_cast<uint64_t>(1000 + t * 100 + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LatencyHistogram merged = histogram->Snapshot();
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kPerThread), merged.count());
  EXPECT_EQ(1000u, merged.min());
  EXPECT_EQ(static_cast<uint64_t>(1000 + 700 + kPerThread - 1),
            merged.max());
  // Every recorded value is in [1000, 7000), so the quantiles must be.
  EXPECT_GE(merged.p50(), 1000u);
  EXPECT_LE(merged.p999(), merged.max() * 2);
}

TEST(MetricsRegistryTest, SnapshotWhileWritersRunNeverTearsAHistogram) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        histogram->Record(++i);
      }
    });
  }
  // Concurrent scrapes: every snapshot must be internally coherent —
  // bucket sums equal to counts, min <= max — even mid-write. FromParts
  // re-validates exactly those invariants.
  for (int scrape = 0; scrape < 200; ++scrape) {
    MetricsSnapshot snapshot = registry.Snapshot();
    ASSERT_EQ(1u, snapshot.counters.size());
    ASSERT_EQ(1u, snapshot.histograms.size());
    const LatencyHistogram& h = snapshot.histograms[0].second;
    ASSERT_OK(LatencyHistogram::FromParts(h.count(), h.sum(),
                                          h.count() > 0 ? h.min() : 0,
                                          h.max(), h.NonZeroBuckets())
                  .status());
    // Also exercise the renderers under concurrency.
    (void)ToPrometheusText(snapshot);
    (void)MetricsSummaryText(snapshot);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

TEST(MetricsRegistryTest, SnapshotSortsNamesWithinEachKind) {
  MetricsRegistry registry;
  registry.GetCounter("z.last");
  registry.GetCounter("a.first");
  registry.GetHistogram("m.middle");
  registry.GetGauge("b.gauge");
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(2u, snapshot.counters.size());
  EXPECT_EQ("a.first", snapshot.counters[0].first);
  EXPECT_EQ("z.last", snapshot.counters[1].first);
  ASSERT_EQ(1u, snapshot.gauges.size());
  ASSERT_EQ(1u, snapshot.histograms.size());
}

TEST(LatencyHistogramPartsTest, NonZeroBucketsRoundTripsThroughFromParts) {
  LatencyHistogram original;
  original.Record(1);
  original.Record(999);
  original.Record(12345);
  original.Record(12346);
  original.Record(1u << 30);
  ASSERT_OK_AND_ASSIGN(
      LatencyHistogram rebuilt,
      LatencyHistogram::FromParts(original.count(), original.sum(),
                                  original.min(), original.max(),
                                  original.NonZeroBuckets()));
  EXPECT_EQ(original.count(), rebuilt.count());
  EXPECT_EQ(original.mean(), rebuilt.mean());
  EXPECT_EQ(original.min(), rebuilt.min());
  EXPECT_EQ(original.max(), rebuilt.max());
  EXPECT_EQ(original.p50(), rebuilt.p50());
  EXPECT_EQ(original.p999(), rebuilt.p999());
  EXPECT_EQ(original.NonZeroBuckets(), rebuilt.NonZeroBuckets());

  // A rebuilt histogram merges like any other — the offline-merge path
  // for split load runs.
  LatencyHistogram other;
  other.Record(50);
  rebuilt.Merge(other);
  EXPECT_EQ(original.count() + 1, rebuilt.count());
  EXPECT_EQ(original.min(), rebuilt.min());  // 1 < 50: the min survives.
  EXPECT_EQ(original.sum() + 50, rebuilt.sum());

  // An empty histogram round-trips too (min is the sentinel).
  ASSERT_OK_AND_ASSIGN(LatencyHistogram empty,
                       LatencyHistogram::FromParts(0, 0, 0, 0, {}));
  EXPECT_EQ(0u, empty.count());
}

TEST(LatencyHistogramPartsTest, FromPartsRejectsInconsistentParts) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(200);
  const auto buckets = h.NonZeroBuckets();
  // Bucket counts that do not sum to the advertised count.
  EXPECT_FALSE(LatencyHistogram::FromParts(3, h.sum(), h.min(), h.max(),
                                           buckets)
                   .ok());
  // min > max with a nonzero count.
  EXPECT_FALSE(
      LatencyHistogram::FromParts(h.count(), h.sum(), 500, 200, buckets)
          .ok());
  // Out-of-range bucket index.
  EXPECT_FALSE(
      LatencyHistogram::FromParts(
          1, 1, 1, 1,
          {{static_cast<uint32_t>(LatencyHistogram::NumBuckets()), 1}})
          .ok());
  // Non-ascending bucket indices.
  auto unsorted = buckets;
  std::swap(unsorted[0], unsorted[1]);
  EXPECT_FALSE(LatencyHistogram::FromParts(h.count(), h.sum(), h.min(),
                                           h.max(), unsorted)
                   .ok());
  // A zero-count bucket is a malformed dump, not an empty slot.
  EXPECT_FALSE(
      LatencyHistogram::FromParts(h.count(), h.sum(), h.min(), h.max(),
                                  {{buckets[0].first, buckets[0].second},
                                   {buckets[1].first + 1, 0}})
          .ok());
}

TEST(MetricsTextTest, PrometheusExpositionIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("ingest.events")->Increment(321);
  registry.GetGauge("replication.replica.3.lag_records")->Set(17);
  Histogram* histogram = registry.GetHistogram("ingest.apply");
  for (int i = 1; i <= 100; ++i) {
    histogram->Record(static_cast<uint64_t>(i) * 10000);  // 10us..1ms.
  }
  const std::string text = ToPrometheusText(registry.Snapshot());

  // Dots sanitized, ltam_ prefix applied, TYPE lines present.
  EXPECT_NE(std::string::npos,
            text.find("# TYPE ltam_ingest_events counter"));
  EXPECT_NE(std::string::npos, text.find("ltam_ingest_events 321"));
  EXPECT_NE(std::string::npos,
            text.find("# TYPE ltam_replication_replica_3_lag_records gauge"));
  EXPECT_NE(std::string::npos,
            text.find("ltam_replication_replica_3_lag_records 17"));
  // Histograms render as summaries in SECONDS with a _seconds suffix.
  EXPECT_NE(std::string::npos,
            text.find("# TYPE ltam_ingest_apply_seconds summary"));
  EXPECT_NE(std::string::npos,
            text.find("ltam_ingest_apply_seconds{quantile=\"0.5\"}"));
  EXPECT_NE(std::string::npos,
            text.find("ltam_ingest_apply_seconds{quantile=\"0.999\"}"));
  EXPECT_NE(std::string::npos, text.find("ltam_ingest_apply_seconds_count 100"));
  EXPECT_NE(std::string::npos, text.find("ltam_ingest_apply_seconds_sum"));

  // Structurally: every non-comment line is "name[{labels}] value" and
  // every line ends in newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ('\n', text.back());
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(std::string::npos, space) << line;
    EXPECT_EQ(0u, line.find("ltam_")) << line;
    // The value parses as a double.
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(MetricsTextTest, SummaryTextMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("ingest.frames")->Increment(5);
  registry.GetGauge("replication.replica.1.lag_records")->Set(3);
  registry.GetHistogram("ingest.e2e")->Record(2'000'000);
  const std::string text = MetricsSummaryText(registry.Snapshot());
  EXPECT_NE(std::string::npos, text.find("ingest.frames"));
  EXPECT_NE(std::string::npos,
            text.find("replication.replica.1.lag_records"));
  EXPECT_NE(std::string::npos, text.find("ingest.e2e"));
  EXPECT_NE(std::string::npos, text.find("n=1"));
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateConvergesToOneHandle) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("contended.name");
      c->Increment();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(static_cast<uint64_t>(kThreads), seen[0]->value());
}

}  // namespace
}  // namespace ltam
