// Copyright 2026 The LTAM Authors.

#include "core/rules/subject_op.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

class SubjectOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
    ASSERT_OK_AND_ASSIGN(bob_, profiles_.AddSubject("Bob"));
    ASSERT_OK_AND_ASSIGN(carol_, profiles_.AddSubject("Carol"));
    ASSERT_OK(profiles_.SetSupervisor(alice_, bob_));
    ASSERT_OK(profiles_.SetSupervisor(carol_, bob_));
    ASSERT_OK(profiles_.AddToGroup(alice_, "cais-lab"));
    ASSERT_OK(profiles_.AddToGroup(carol_, "cais-lab"));
    ASSERT_OK(profiles_.AssignRole(bob_, "professor"));
  }

  UserProfileDatabase profiles_;
  SubjectId alice_ = kInvalidSubject;
  SubjectId bob_ = kInvalidSubject;
  SubjectId carol_ = kInvalidSubject;
};

TEST_F(SubjectOpTest, Identity) {
  IdentitySubjectOp op;
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out,
                       op.Apply(alice_, profiles_));
  EXPECT_EQ(out, std::vector<SubjectId>{alice_});
  EXPECT_TRUE(op.Apply(99, profiles_).status().IsNotFound());
}

TEST_F(SubjectOpTest, SupervisorOf) {
  // Example 1: Supervisor_Of(Alice) = Bob.
  SupervisorOfOp op;
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out,
                       op.Apply(alice_, profiles_));
  EXPECT_EQ(out, std::vector<SubjectId>{bob_});
  // Bob has no supervisor: derives nothing (not an error).
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> none,
                       op.Apply(bob_, profiles_));
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(op.ToString(), "Supervisor_Of");
}

TEST_F(SubjectOpTest, SubordinatesOf) {
  SubordinatesOfOp op;
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out, op.Apply(bob_, profiles_));
  EXPECT_EQ(out, (std::vector<SubjectId>{alice_, carol_}));
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> none,
                       op.Apply(alice_, profiles_));
  EXPECT_TRUE(none.empty());
}

TEST_F(SubjectOpTest, GroupMembers) {
  GroupMembersOp op("cais-lab");
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out, op.Apply(bob_, profiles_));
  EXPECT_EQ(out, (std::vector<SubjectId>{alice_, carol_}));
  GroupMembersOp empty("nobody");
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> none,
                       empty.Apply(bob_, profiles_));
  EXPECT_TRUE(none.empty());
}

TEST_F(SubjectOpTest, RoleHolders) {
  RoleHoldersOp op("professor");
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out,
                       op.Apply(alice_, profiles_));
  EXPECT_EQ(out, std::vector<SubjectId>{bob_});
}

TEST_F(SubjectOpTest, SameGroupAs) {
  SameGroupAsOp op;
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out,
                       op.Apply(alice_, profiles_));
  EXPECT_EQ(out, std::vector<SubjectId>{carol_});  // Excludes Alice.
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> none,
                       op.Apply(bob_, profiles_));
  EXPECT_TRUE(none.empty());
}

TEST_F(SubjectOpTest, RegistryParsesBuiltins) {
  SubjectOperatorRegistry reg = SubjectOperatorRegistry::Default();
  ASSERT_OK_AND_ASSIGN(SubjectOperatorPtr sup, reg.Parse("Supervisor_Of"));
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out,
                       sup->Apply(alice_, profiles_));
  EXPECT_EQ(out, std::vector<SubjectId>{bob_});
  ASSERT_OK_AND_ASSIGN(SubjectOperatorPtr grp,
                       reg.Parse("group_members(cais-lab)"));
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> members,
                       grp->Apply(bob_, profiles_));
  EXPECT_EQ(members.size(), 2u);
  EXPECT_TRUE(reg.Parse("Group_Members").status().IsParseError());
  EXPECT_TRUE(reg.Parse("Frenemies_Of").status().IsNotFound());
  EXPECT_TRUE(reg.Parse("bad(arg").status().IsParseError());
}

TEST_F(SubjectOpTest, RegistryCustomOperator) {
  // "Customized operators can be defined as well" (Section 4).
  SubjectOperatorRegistry reg = SubjectOperatorRegistry::Default();
  class EveryoneOp : public SubjectOperator {
   public:
    Result<std::vector<SubjectId>> Apply(
        SubjectId, const UserProfileDatabase& profiles) const override {
      return profiles.AllSubjects();
    }
    std::string ToString() const override { return "Everyone"; }
  };
  reg.Register("everyone", [](const std::string&) -> Result<SubjectOperatorPtr> {
    return SubjectOperatorPtr(new EveryoneOp());
  });
  ASSERT_OK_AND_ASSIGN(SubjectOperatorPtr op, reg.Parse("EVERYONE"));
  ASSERT_OK_AND_ASSIGN(std::vector<SubjectId> out,
                       op->Apply(alice_, profiles_));
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace ltam
