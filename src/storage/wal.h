// Copyright 2026 The LTAM Authors.
// Write-ahead log for the LTAM databases.
//
// Mutations (authorization added/revoked, movement recorded, ...) are
// appended as codec records before being applied; on restart the log is
// replayed to rebuild state newer than the last snapshot.

#ifndef LTAM_STORAGE_WAL_H_
#define LTAM_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "storage/codec.h"
#include "util/result.h"

namespace ltam {

/// Append-only log writer.
class WalWriter {
 public:
  /// Opens (creating or appending) the log at `path`.
  static Result<WalWriter> Open(const std::string& path);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record (one line) and flushes to the OS.
  Status Append(const Record& record);

  /// fsyncs the file (durability barrier).
  Status Sync();

  /// Records appended through this writer.
  size_t appended() const { return appended_; }

 private:
  explicit WalWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_ = nullptr;
  size_t appended_ = 0;
};

/// Replays a log file, invoking `apply` per record in order. Stops with
/// an error on the first malformed line (a torn final line — no trailing
/// newline — is tolerated and ignored, as an in-flight append crash would
/// leave one).
Status ReplayWal(const std::string& path,
                 const std::function<Status(const Record&)>& apply);

}  // namespace ltam

#endif  // LTAM_STORAGE_WAL_H_
