// Copyright 2026 The LTAM Authors.

#include "spatial/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace ltam {
namespace {

TEST(BoundingBoxTest, EmptyAndExpand) {
  BoundingBox bb;
  EXPECT_TRUE(bb.empty());
  EXPECT_FALSE(bb.Contains({0, 0}));
  bb.Expand({1, 2});
  EXPECT_FALSE(bb.empty());
  EXPECT_TRUE(bb.Contains({1, 2}));
  bb.Expand({-1, 5});
  EXPECT_TRUE(bb.Contains({0, 3}));
  EXPECT_FALSE(bb.Contains({2, 3}));
  EXPECT_DOUBLE_EQ(bb.width(), 2.0);
  EXPECT_DOUBLE_EQ(bb.height(), 3.0);
}

TEST(BoundingBoxTest, Intersects) {
  BoundingBox a({0, 0}, {10, 10});
  BoundingBox b({5, 5}, {15, 15});
  BoundingBox c({11, 11}, {20, 20});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges intersect.
  BoundingBox d({10, 0}, {20, 10});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(PolygonTest, MakeValidates) {
  EXPECT_TRUE(Polygon::Make({{0, 0}, {1, 0}}).status().IsInvalidArgument());
  // Degenerate (collinear) ring.
  EXPECT_TRUE(Polygon::Make({{0, 0}, {1, 0}, {2, 0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Polygon::Make({{0, 0}, {1, 0}, {0, 1}}).ok());
  // A duplicated closing vertex is tolerated.
  ASSERT_OK_AND_ASSIGN(Polygon closed,
                       Polygon::Make({{0, 0}, {1, 0}, {0, 1}, {0, 0}}));
  EXPECT_EQ(closed.ring().size(), 3u);
}

TEST(PolygonTest, RectAreaCentroidBBox) {
  Polygon r = Polygon::Rect(0, 0, 4, 2);
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
  Point c = r.Centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
  EXPECT_TRUE(r.bbox().Contains({4, 2}));
  // Swapped corners normalize.
  Polygon r2 = Polygon::Rect(4, 2, 0, 0);
  EXPECT_DOUBLE_EQ(r2.Area(), 8.0);
}

TEST(PolygonTest, SignedAreaOrientation) {
  ASSERT_OK_AND_ASSIGN(Polygon ccw,
                       Polygon::Make({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  ASSERT_OK_AND_ASSIGN(Polygon cw,
                       Polygon::Make({{0, 0}, {0, 2}, {2, 2}, {2, 0}}));
  EXPECT_GT(ccw.SignedArea(), 0);
  EXPECT_LT(cw.SignedArea(), 0);
  EXPECT_DOUBLE_EQ(ccw.Area(), cw.Area());
}

TEST(PolygonTest, ContainsInteriorExteriorBoundary) {
  Polygon r = Polygon::Rect(0, 0, 10, 10);
  EXPECT_TRUE(r.Contains({5, 5}));
  EXPECT_FALSE(r.Contains({-1, 5}));
  EXPECT_FALSE(r.Contains({11, 5}));
  // On-edge points count as inside (doorsill rule).
  EXPECT_TRUE(r.Contains({0, 5}));
  EXPECT_TRUE(r.Contains({10, 10}));
  EXPECT_TRUE(r.Contains({5, 0}));
}

TEST(PolygonTest, ContainsNonConvex) {
  // L-shaped room.
  ASSERT_OK_AND_ASSIGN(
      Polygon ell,
      Polygon::Make(
          {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}));
  EXPECT_TRUE(ell.Contains({1, 3}));
  EXPECT_TRUE(ell.Contains({3, 1}));
  EXPECT_FALSE(ell.Contains({3, 3}));  // The notch.
  EXPECT_TRUE(ell.Contains({2, 3}));   // Notch edge.
}

TEST(PolygonTest, ContainsTriangle) {
  ASSERT_OK_AND_ASSIGN(Polygon tri,
                       Polygon::Make({{0, 0}, {4, 0}, {2, 4}}));
  EXPECT_TRUE(tri.Contains({2, 1}));
  EXPECT_FALSE(tri.Contains({0, 3}));
  EXPECT_FALSE(tri.Contains({4, 3}));
}

TEST(DistanceTest, PointAndSegment) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceToSegment({0, 1}, {0, 0}, {2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(DistanceToSegment({1, 1}, {0, 0}, {2, 0}), 1.0);
  // Beyond the segment end, distance is to the endpoint.
  EXPECT_DOUBLE_EQ(DistanceToSegment({5, 4}, {0, 0}, {2, 0}), 5.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(DistanceToSegment({3, 4}, {0, 0}, {0, 0}), 5.0);
}

}  // namespace
}  // namespace ltam
