// Copyright 2026 The LTAM Authors.

#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace ltam {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRangeSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformRange(5, 5), 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  // Degenerate probabilities.
  Rng rng2(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.Bernoulli(0.0));
    EXPECT_TRUE(rng2.Bernoulli(1.0));
  }
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(42);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Seed(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Next(), first[static_cast<size_t>(i)]);
  }
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  uint64_t v = rng.Next();
  // Must not get stuck at zero.
  EXPECT_NE(rng.Next(), v);
}

}  // namespace
}  // namespace ltam
