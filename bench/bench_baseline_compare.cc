// Copyright 2026 The LTAM Authors.
//
// Section 1 comparison harness: LTAM vs the card-reader baseline on the
// same simulated event streams with injected tailgating and overstays.
// Prints a detection-rate table (the measurable form of the paper's
// claims "existing systems only enforce access control upon access
// requests while LTAM monitors the user movement at all times" and
// "this eliminates situations where a group of users enters a restricted
// location based on a single user authorization"), then times both
// enforcement paths on the identical stream.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/graph_gen.h"
#include "sim/movement_sim.h"
#include "sim/workload.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

World MakeWorld(uint64_t seed) {
  World w;
  w.graph = MakeCampusGraph(4, 8).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 24);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.7;
  opt.horizon = 60;
  opt.min_len = 120;
  opt.max_len = 300;
  opt.max_slack = 60;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

void PrintComparisonTable() {
  std::printf(
      "=== LTAM vs card-reader baseline: violation detection rates ===\n\n");
  std::printf("%-10s %-10s | %-10s | %-18s | %-18s\n", "tailgate", "overstay",
              "violations", "LTAM recall", "baseline recall");
  std::printf(
      "---------------------+------------+--------------------+------------"
      "--------\n");
  const double kRates[][2] = {
      {0.05, 0.0}, {0.15, 0.0}, {0.0, 0.1}, {0.1, 0.1}, {0.25, 0.2}};
  for (const auto& rates : kRates) {
    World w = MakeWorld(17);
    SimOptions sim;
    sim.steps_per_subject = 48;
    sim.tailgate_prob = rates[0];
    sim.overstay_prob = rates[1];
    Rng rng(4242);
    Scenario scenario =
        SimulateMovement(w.graph, w.auth_db, w.subjects, sim, &rng);

    MovementDatabase movements;
    AccessControlEngine ltam(&w.graph, &w.auth_db, &movements, &w.profiles);
    ReplayOnEngine(scenario, &ltam);
    DetectionStats ltam_stats = ScoreDetections(scenario, ltam.alerts());

    AuthorizationDatabase card_db = w.auth_db;
    CardReaderBaseline card(&card_db);
    ReplayOnBaseline(scenario, &card);
    DetectionStats card_stats = ScoreDetections(scenario, card.alerts());

    std::printf("%-10.2f %-10.2f | %-10zu | %6.1f%% (%zu found) | %6.1f%% "
                "(%zu found)\n",
                rates[0], rates[1], scenario.ground_truth.size(),
                100.0 * ltam_stats.recall(), ltam_stats.detected,
                100.0 * card_stats.recall(), card_stats.detected);
  }
  std::printf(
      "\n(paper, qualitative: the baseline cannot detect tailgating or "
      "overstays at all)\n\n");
}

void BM_LtamReplay(benchmark::State& state) {
  World w = MakeWorld(17);
  SimOptions sim;
  sim.steps_per_subject = 48;
  sim.tailgate_prob = 0.1;
  sim.overstay_prob = 0.1;
  Rng rng(4242);
  Scenario scenario =
      SimulateMovement(w.graph, w.auth_db, w.subjects, sim, &rng);
  for (auto _ : state) {
    state.PauseTiming();
    AuthorizationDatabase db = w.auth_db;  // Fresh ledger per run.
    MovementDatabase movements;
    AccessControlEngine engine(&w.graph, &db, &movements, &w.profiles);
    state.ResumeTiming();
    ReplayOnEngine(scenario, &engine);
    benchmark::DoNotOptimize(engine.alerts().size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(scenario.events.size()));
}
BENCHMARK(BM_LtamReplay);

void BM_BaselineReplay(benchmark::State& state) {
  World w = MakeWorld(17);
  SimOptions sim;
  sim.steps_per_subject = 48;
  sim.tailgate_prob = 0.1;
  sim.overstay_prob = 0.1;
  Rng rng(4242);
  Scenario scenario =
      SimulateMovement(w.graph, w.auth_db, w.subjects, sim, &rng);
  for (auto _ : state) {
    state.PauseTiming();
    AuthorizationDatabase db = w.auth_db;
    CardReaderBaseline baseline(&db);
    state.ResumeTiming();
    ReplayOnBaseline(scenario, &baseline);
    benchmark::DoNotOptimize(baseline.alerts().size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(scenario.events.size()));
}
BENCHMARK(BM_BaselineReplay);

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
