// Copyright 2026 The LTAM Authors.
// Periodic time expressions (extension).
//
// The paper's authorizations carry plain intervals, but its temporal
// lineage (Bertino/Bettini/Samarati's TAM, cited as [6]) expresses
// authorizations over *periodic* time ("every day 9:00-17:00"). Section 7
// lists "more access constraints" as future work; PeriodicExpression is
// that extension: a repeating pattern of chronon windows that can be
// expanded to a plain IntervalSet over any bounded horizon and plugged
// into authorizations via ExpandWithin.

#ifndef LTAM_TIME_PERIODIC_H_
#define LTAM_TIME_PERIODIC_H_

#include <string>
#include <vector>

#include "time/interval_set.h"
#include "util/result.h"

namespace ltam {

/// A repeating temporal pattern: windows `offsets` (relative to the start
/// of each period) repeated every `period` chronons starting at `anchor`.
///
/// Example: period=24, anchor=0, offsets={[9,17]} is "09:00-17:59 every
/// day" when one chronon is one hour.
class PeriodicExpression {
 public:
  /// Checked constructor. Requires period > 0 and every offset within
  /// [0, period-1].
  static Result<PeriodicExpression> Make(Chronon period, Chronon anchor,
                                         std::vector<TimeInterval> offsets);

  Chronon period() const { return period_; }
  Chronon anchor() const { return anchor_; }
  const std::vector<TimeInterval>& offsets() const { return offsets_; }

  /// True iff instant t falls inside one of the repeated windows.
  bool Contains(Chronon t) const;

  /// Materializes the expression over a bounded horizon as a plain
  /// IntervalSet. Fails if `horizon` is unbounded (the expansion would be
  /// infinite).
  Result<IntervalSet> ExpandWithin(const TimeInterval& horizon) const;

  /// "every P from A in {[a,b], ...}".
  std::string ToString() const;

  /// Parses the ToString format.
  static Result<PeriodicExpression> Parse(const std::string& text);

 private:
  PeriodicExpression(Chronon period, Chronon anchor,
                     std::vector<TimeInterval> offsets)
      : period_(period), anchor_(anchor), offsets_(std::move(offsets)) {}

  Chronon period_;
  Chronon anchor_;
  std::vector<TimeInterval> offsets_;
};

}  // namespace ltam

#endif  // LTAM_TIME_PERIODIC_H_
