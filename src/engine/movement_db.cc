// Copyright 2026 The LTAM Authors.

#include "engine/movement_db.h"

#include <algorithm>

#include "time/interval.h"
#include "util/string_util.h"

namespace ltam {

Status MovementDatabase::RecordMovement(Chronon time, SubjectId s,
                                        LocationId to) {
  if (s == kInvalidSubject) {
    return Status::InvalidArgument("movement for invalid subject");
  }
  auto cur_it = current_.find(s);
  LocationId from =
      cur_it == current_.end() ? kInvalidLocation : cur_it->second;
  if (from == to) {
    return Status::InvalidArgument(
        "movement to the current location is a no-op");
  }
  // Per-subject monotonicity.
  auto& stays = stays_by_subject_[s];
  if (!stays.empty()) {
    const Stay& last = stays.back();
    Chronon last_time =
        last.exit_time == kChrononMax ? last.enter_time : last.exit_time;
    if (time < last_time) {
      return Status::FailedPrecondition(StrFormat(
          "out-of-order movement for subject s%u: t=%lld before t=%lld", s,
          static_cast<long long>(time), static_cast<long long>(last_time)));
    }
  }
  // Close the open stay, if any.
  if (from != kInvalidLocation) {
    Stay& open = stays.back();
    open.exit_time = time;
    CloseLocationStay(s, from, time);
  }
  // Open the new stay.
  if (to != kInvalidLocation) {
    Stay stay{s, to, time, kChrononMax};
    stays.push_back(stay);
    stays_by_location_[to].push_back(stay);
    current_[s] = to;
  } else {
    current_.erase(s);
  }
  history_.push_back(MovementEvent{time, s, from, to});
  return Status::OK();
}

void MovementDatabase::CloseLocationStay(SubjectId s, LocationId l,
                                         Chronon exit_time) {
  auto it = stays_by_location_.find(l);
  if (it == stays_by_location_.end()) return;
  // The open stay of s in l is the last one for s (stays are appended in
  // time order).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->subject == s && rit->exit_time == kChrononMax) {
      rit->exit_time = exit_time;
      return;
    }
  }
}

LocationId MovementDatabase::CurrentLocation(SubjectId s) const {
  auto it = current_.find(s);
  return it == current_.end() ? kInvalidLocation : it->second;
}

Result<Chronon> MovementDatabase::CurrentStaySince(SubjectId s) const {
  auto it = current_.find(s);
  if (it == current_.end()) {
    return Status::NotFound("subject is not inside any location");
  }
  const auto& stays = stays_by_subject_.at(s);
  return stays.back().enter_time;
}

LocationId MovementDatabase::LocationAt(SubjectId s, Chronon t) const {
  auto it = stays_by_subject_.find(s);
  if (it == stays_by_subject_.end()) return kInvalidLocation;
  // Stays are sorted by enter_time; find the last stay starting <= t.
  const std::vector<Stay>& stays = it->second;
  auto pos = std::upper_bound(
      stays.begin(), stays.end(), t,
      [](Chronon v, const Stay& s2) { return v < s2.enter_time; });
  if (pos == stays.begin()) return kInvalidLocation;
  --pos;
  // Inside iff t before the (exclusive) exit time; a subject who moved at
  // time x is in the new location at x.
  if (t < pos->exit_time) return pos->location;
  return kInvalidLocation;
}

std::vector<SubjectId> MovementDatabase::OccupantsAt(LocationId l,
                                                     Chronon t) const {
  std::vector<SubjectId> out;
  auto it = stays_by_location_.find(l);
  if (it == stays_by_location_.end()) return out;
  for (const Stay& stay : it->second) {
    if (stay.enter_time <= t && t < stay.exit_time) {
      out.push_back(stay.subject);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SubjectId> MovementDatabase::CurrentOccupants(
    LocationId l) const {
  std::vector<SubjectId> out;
  auto it = stays_by_location_.find(l);
  if (it == stays_by_location_.end()) return out;
  for (const Stay& stay : it->second) {
    if (stay.exit_time == kChrononMax) out.push_back(stay.subject);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Stay> MovementDatabase::StaysOf(SubjectId s) const {
  auto it = stays_by_subject_.find(s);
  if (it == stays_by_subject_.end()) return {};
  return it->second;
}

std::vector<Stay> MovementDatabase::StaysIn(LocationId l) const {
  return StaysInIndex(l);
}

const std::vector<Stay>& MovementDatabase::StaysInIndex(LocationId l) const {
  static const std::vector<Stay> kEmpty;
  auto it = stays_by_location_.find(l);
  return it == stays_by_location_.end() ? kEmpty : it->second;
}

std::vector<MovementDatabase::Contact> MovementDatabase::ContactsOf(
    SubjectId s, const TimeInterval& window, Chronon min_overlap) const {
  std::vector<Contact> out;
  auto it = stays_by_subject_.find(s);
  if (it == stays_by_subject_.end()) return out;
  for (const Stay& mine : it->second) {
    auto loc_it = stays_by_location_.find(mine.location);
    if (loc_it == stays_by_location_.end()) continue;
    AppendStayContacts(mine, window, min_overlap, loc_it->second, &out);
  }
  SortContacts(&out);
  return out;
}

void AppendStayContacts(const Stay& mine, const TimeInterval& window,
                        Chronon min_overlap,
                        const std::vector<Stay>& candidates,
                        std::vector<MovementDatabase::Contact>* out) {
  // Clip my stay to the query window. Stays are [enter, exit) but we
  // treat the closed overlap on chronons.
  Chronon my_start = std::max(mine.enter_time, window.start());
  Chronon my_end = std::min(
      mine.exit_time == kChrononMax ? kChrononMax
                                    : ChrononSub(mine.exit_time, 1),
      window.end());
  if (my_start > my_end) return;
  for (const Stay& theirs : candidates) {
    if (theirs.subject == mine.subject) continue;
    if (theirs.location != mine.location) continue;
    Chronon their_end = theirs.exit_time == kChrononMax
                            ? kChrononMax
                            : ChrononSub(theirs.exit_time, 1);
    Chronon ov_start = std::max(my_start, theirs.enter_time);
    Chronon ov_end = std::min(my_end, their_end);
    if (ov_start > ov_end) continue;
    Chronon overlap = ChrononAdd(ChrononSub(ov_end, ov_start), 1);
    if (overlap < min_overlap) continue;
    out->push_back(MovementDatabase::Contact{theirs.subject, mine.location,
                                             ov_start, ov_end});
  }
}

void SortContacts(std::vector<MovementDatabase::Contact>* contacts) {
  std::sort(contacts->begin(), contacts->end(),
            [](const MovementDatabase::Contact& a,
               const MovementDatabase::Contact& b) {
              if (a.overlap_start != b.overlap_start) {
                return a.overlap_start < b.overlap_start;
              }
              if (a.other != b.other) return a.other < b.other;
              if (a.location != b.location) return a.location < b.location;
              return a.overlap_end < b.overlap_end;
            });
}

}  // namespace ltam
