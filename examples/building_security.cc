// Copyright 2026 The LTAM Authors.
//
// A security officer's workflow over a secured building (the homeland-
// security scenario of Section 1):
//
//   1. define the layout and the access policy;
//   2. audit it with the inaccessible-location analysis (Section 6) and
//      fix the gap it finds — through the runtime's mutation window;
//   3. run live enforcement against simulated movement with injected
//      tailgating and overstays, comparing LTAM's detections against the
//      card-reader baseline;
//   4. investigate with the query language over the MovementView.
//
// Enforcement runs through the AccessRuntime facade: flipping
// options.num_shards (or adding options.durable_dir) moves the same
// workflow onto the sharded or crash-safe runtimes unchanged.
//
// Run: ./build/examples/building_security

#include <cstdio>

#include "query/query_language.h"
#include "runtime/access_runtime.h"
#include "sim/graph_gen.h"
#include "sim/movement_sim.h"
#include "sim/workload.h"
#include "util/logging.h"

int main() {
  using namespace ltam;  // NOLINT: example brevity.

  // 1. Layout: a 4-building campus, 6 rooms per building; 12 staff.
  SystemState state;
  state.graph = MakeCampusGraph(4, 6).ValueOrDie();
  std::vector<SubjectId> staff = GenerateSubjects(&state.profiles, 12);

  // Policy: everyone may use building 0; only the first four staff may
  // enter building 1's secure lab (room B1.R5) and the corridor to it.
  auto grant = [](const MultilevelLocationGraph& graph,
                  AuthorizationDatabase* db, SubjectId s,
                  const std::string& room) {
    db->Add(LocationTemporalAuthorization::Make(
                TimeInterval(0, 300), TimeInterval(0, 360),
                LocationAuthorization{s, graph.Find(room).ValueOrDie()},
                kUnlimitedEntries)
                .ValueOrDie());
  };
  for (SubjectId s : staff) {
    for (uint32_t r = 0; r < 6; ++r) {
      grant(state.graph, &state.auth_db, s, "B0.R" + std::to_string(r));
    }
  }
  for (size_t i = 0; i < 4; ++i) {
    // Oops: the officer grants the lab but forgets room B1.R4 on the way.
    for (uint32_t r = 0; r < 4; ++r) {
      grant(state.graph, &state.auth_db, staff[i],
            "B1.R" + std::to_string(r));
    }
    grant(state.graph, &state.auth_db, staff[i], "B1.R5");
  }

  // The movement simulator walks the layout; keep a copy it can use
  // independently of the runtime's borrowed stores.
  MultilevelLocationGraph graph_copy = state.graph;

  // Open the enforcement runtime: 2 shards, to show the same workflow
  // runs unchanged on the batch pipeline.
  RuntimeOptions options;
  options.num_shards = 2;
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(state), options);
  LTAM_CHECK(opened.ok()) << opened.status().ToString();
  std::unique_ptr<AccessRuntime> runtime = std::move(opened).ValueOrDie();

  // 2. Audit (Section 6): is the lab actually reachable?
  LocationId lab = runtime->graph().Find("B1.R5").ValueOrDie();
  Result<std::vector<LocationId>> audit =
      runtime->query().InaccessibleLocations(staff[0]);
  LTAM_CHECK(audit.ok()) << audit.status().ToString();
  auto is_inaccessible = [&](const std::vector<LocationId>& ids) {
    for (LocationId l : ids) {
      if (l == lab) return true;
    }
    return false;
  };
  std::printf("audit for %s: %zu locations inaccessible\n",
              runtime->profiles().subject(staff[0]).name.c_str(),
              audit->size());
  if (is_inaccessible(*audit)) {
    std::printf(
        "  -> B1.R5 is granted but UNREACHABLE (missing corridor room); "
        "fixing.\n");
    Status fixed = runtime->Mutate([&](const MutableStores& stores) {
      for (size_t i = 0; i < 4; ++i) {
        grant(stores.graph, &stores.auth_db, staff[i], "B1.R4");
      }
      return Status::OK();
    });
    LTAM_CHECK(fixed.ok()) << fixed.ToString();
  }
  audit = runtime->query().InaccessibleLocations(staff[0]);
  LTAM_CHECK(audit.ok()) << audit.status().ToString();
  std::printf("after fix: lab inaccessible? %s\n\n",
              is_inaccessible(*audit) ? "yes" : "no");

  // 3. Live enforcement vs the card-reader baseline on one simulated day
  //    with misbehaving users.
  SimOptions sim;
  sim.steps_per_subject = 40;
  sim.tailgate_prob = 0.15;
  sim.overstay_prob = 0.05;
  Rng rng(2026);
  Scenario day =
      SimulateMovement(graph_copy, runtime->auth_db(), staff, sim, &rng);

  std::vector<Alert> ltam_alerts = ReplayOnRuntime(day, runtime.get());
  DetectionStats ltam_stats = ScoreDetections(day, ltam_alerts);

  AuthorizationDatabase card_db =
      runtime->auth_db();  // Same policy, separate ledger.
  CardReaderBaseline card(&card_db);
  ReplayOnBaseline(day, &card);
  DetectionStats card_stats = ScoreDetections(day, card.alerts());

  std::printf("injected violations: %zu\n", day.ground_truth.size());
  std::printf("  %-22s detected %zu (recall %.0f%%)\n", "LTAM:",
              ltam_stats.detected, 100.0 * ltam_stats.recall());
  std::printf("  %-22s detected %zu (recall %.0f%%)\n",
              "card-reader baseline:", card_stats.detected,
              100.0 * card_stats.recall());

  // 4. Investigate with the query language (over the MovementView —
  //    cross-shard answers fan out per shard, no merged copy).
  QueryInterpreter interp(&runtime->query(), &runtime->graph(),
                          &runtime->profiles(), &runtime->movements(),
                          &runtime->auth_db());
  for (const char* q : {
           "WHO CAN ACCESS B1.R5 DURING [0, 300]",
           "ACCESSIBLE FOR u0 IN B1",
           "ROUTE FOR u0 FROM B0.R0 TO B1.R5 DURING [0, 300]",
       }) {
    std::printf("\n> %s\n", q);
    Result<QueryResult> r = interp.Run(q);
    if (r.ok()) {
      std::printf("%s", r->ToString().c_str());
    } else {
      std::printf("  error: %s\n", r.status().ToString().c_str());
    }
  }
  return 0;
}
