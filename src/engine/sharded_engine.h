// Copyright 2026 The LTAM Authors.
// Sharded, batched access-decision pipeline.
//
// The single-threaded AccessControlEngine reproduces Figure 3 faithfully
// but serializes every request through one movement database. At
// production scale (the SARS-scenario deployment of Section 1 tracks a
// whole campus) the event stream is naturally partitionable: every
// decision for subject s depends only on s's authorizations, s's movement
// history, and the read-only location graph — Definition 4 binds each
// authorization to a single subject, so two subjects never contend on
// ledger state.
//
// ShardedDecisionEngine exploits that: subjects are hash-partitioned
// across N shards, each shard owns a private MovementDatabase view and a
// private AccessControlEngine (hence a private alert buffer), and a
// persistent worker thread per shard drains its slice of each batch.
// Within a batch, events of one subject are processed in batch order on
// one shard, so decisions are byte-identical to running the sequential
// engine event-by-event (the equivalence property checked by
// tests/sharded_engine_test.cc).
//
// The shared AuthorizationDatabase is safe under this discipline: reads
// go through its subject-bucketed candidate cache, ledger updates touch
// only records owned by the deciding shard's subjects, and mutations
// (rule derivation, revocation) happen between batches on the control
// thread.

#ifndef LTAM_ENGINE_SHARDED_ENGINE_H_
#define LTAM_ENGINE_SHARDED_ENGINE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/access_control_engine.h"
#include "storage/log_pipeline.h"
#include "util/span.h"

namespace ltam {

/// Applies one AccessEvent to an engine and renders the outcome as a
/// Decision:
///  - kRequestEntry: the engine's Definition-7 decision, verbatim;
///  - kRequestExit: grant with kInvalidAuth when the exit was recorded,
///    Deny(kExitRejected) when it was refused (subject not inside, or an
///    out-of-order event);
///  - kObserve: grant with kInvalidAuth when the observation was accepted
///    (its security outcome travels through alerts, not decisions);
///    Deny(kObservationRejected) when the engine refused it outright
///    (unknown location, out-of-order time).
/// Both the sharded workers and sequential baselines use this function,
/// so "identical decisions" is a property of the pipeline, not of
/// per-event mapping choices.
Decision ApplyAccessEvent(AccessControlEngine* engine, const AccessEvent& e);

/// Tuning knobs for the sharded pipeline.
struct ShardedEngineOptions {
  /// Number of shards == number of worker threads. Clamped to >= 1.
  uint32_t num_shards = 4;
  /// Per-shard engine options.
  EngineOptions engine;
};

/// Composes a batch's durability outcome from its first append
/// (write-ahead refusal) and first group-commit (fsync) failures. The
/// group-commit failure outranks the append error — applied events'
/// durability is in doubt, which must never be masked by a mere refusal
/// (refusals stay visible as Deny(kWalError) decisions) — and carries
/// the append error in its context when both occurred. Shared by every
/// durable batch surface so error reporting cannot drift per backend.
Status ComposeDurabilityError(Status append_error, Status sync_error);

/// Per-shard worker callbacks, the seam the durable runtime plugs into.
/// Both run on the shard's worker thread.
///
/// Both hooks return a CommitTicket instead of blocking on durability:
/// a synchronous group-commit implementation may return only after its
/// fsync (the ticket is then already durable), while a pipelined log
/// returns the record's sequence number immediately and lets the shard's
/// log thread make it durable later — the caller redeems the ticket
/// through the log's WaitDurable.
struct ShardHooks {
  /// Invoked for every event before it is applied (write-ahead: append
  /// the event to the shard's log here). A non-OK status refuses the
  /// event — it is NOT applied and its decision becomes
  /// Deny(kWalError) — so state never runs ahead of the *accepted* log.
  /// Pipelined logs never refuse here (acceptance happened; failures
  /// surface through the durability watermark instead).
  std::function<Result<CommitTicket>(uint32_t shard, const AccessEvent& event)>
      before_apply;
  /// Invoked once per batch per participating shard, after its whole
  /// slice has been appended and applied — the group-commit boundary
  /// (one fsync in batch mode; a pipeline-group mark otherwise). The
  /// ticket covers the shard's whole slice and is recorded per shard
  /// (see batch_tickets()). A non-OK status is reported through
  /// TakeBatchError but does NOT undo the slice: the events are applied,
  /// only their durability is in doubt.
  std::function<Result<CommitTicket>(uint32_t shard)> after_batch;
};

/// A batch-oriented, subject-sharded front end over N AccessControlEngine
/// instances.
///
/// Lifecycle: construct (spawns workers), call EvaluateBatch any number
/// of times from one control thread, destroy (joins workers). Database
/// mutations are only legal between EvaluateBatch calls.
class ShardedDecisionEngine {
 public:
  /// Borrows all stores; they must outlive the engine.
  ShardedDecisionEngine(const MultilevelLocationGraph* graph,
                        AuthorizationDatabase* auth_db,
                        const UserProfileDatabase* profiles,
                        ShardedEngineOptions options = {});
  ~ShardedDecisionEngine();

  ShardedDecisionEngine(const ShardedDecisionEngine&) = delete;
  ShardedDecisionEngine& operator=(const ShardedDecisionEngine&) = delete;

  /// Evaluates a batch of events. Events of the same subject are applied
  /// in batch order (their times must be nondecreasing, as the movement
  /// database requires); events of different subjects may be interleaved
  /// arbitrarily by the partition. Returns one Decision per event, in
  /// input order. The viewed storage must stay alive (and unmodified)
  /// for the duration of the call.
  std::vector<Decision> EvaluateBatch(Span<const AccessEvent> batch);

  /// Shard a subject maps to.
  uint32_t ShardOf(SubjectId s) const;

  /// The partition function itself, usable without an engine instance
  /// (recovery must route logged subjects identically across restarts —
  /// the mapping is stable for a fixed `num_shards`).
  static uint32_t ShardOfSubject(SubjectId s, uint32_t num_shards);

  /// Number of shards.
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  /// The movement view owned by `shard` (subjects hashing to that shard).
  const MovementDatabase& shard_movements(uint32_t shard) const;

  // --- Control-phase surface (no batch may be in flight) -------------------

  /// Installs worker callbacks (see ShardHooks). Replaces any previous
  /// hooks; pass {} to detach.
  void SetShardHooks(ShardHooks hooks);

  /// The batch's durability outcome, cleared by the read. OK when every
  /// hook succeeded. Append (before_apply) and group-commit
  /// (after_batch) failures are tracked separately and a group-commit
  /// failure takes precedence — it means applied events' durability is
  /// in doubt, which must never be masked by a mere append refusal
  /// (those are already visible as Deny(kWalError) decisions).
  Status TakeBatchError();

  /// The last batch's per-shard commit tickets, indexed by shard (seq 0
  /// for shards that contributed nothing or whose boundary hook
  /// failed). Valid until the next EvaluateBatch.
  const std::vector<CommitTicket>& batch_tickets() const {
    return batch_tickets_;
  }

  /// Mutable access to one shard's movement view, for recovery seeding
  /// (restoring a snapshot segment before the first batch).
  MovementDatabase& mutable_shard_movements(uint32_t shard);

  /// Direct access to one shard's engine, for recovery (ResumeStay,
  /// replaying a log tail) and alert inspection between batches.
  AccessControlEngine& shard_engine(uint32_t shard);
  const AccessControlEngine& shard_engine(uint32_t shard) const;

  /// Patrol tick fanned out to every shard's engine on the control
  /// thread; overstay alerts land in the per-shard buffers.
  void Tick(Chronon t);

  /// Ticks a single shard's engine (the durable runtime ticks shard by
  /// shard so a shard whose log append failed is skipped — its state
  /// must not run ahead of its log).
  void TickShard(uint32_t shard, Chronon t);

  /// Merged alerts from every shard so far, ordered by (time, subject,
  /// location, type) for determinism, clearing the per-shard buffers.
  std::vector<Alert> DrainAlerts();

  /// Aggregate counters across shards.
  size_t requests_processed() const;
  size_t requests_granted() const;
  /// Batches evaluated so far.
  size_t batches_evaluated() const { return batches_evaluated_; }

 private:
  /// One shard: private movement view + engine, driven by one worker.
  struct Shard {
    explicit Shard(uint32_t index, const MultilevelLocationGraph* graph,
                   AuthorizationDatabase* auth_db,
                   const UserProfileDatabase* profiles,
                   const EngineOptions& options);

    uint32_t index = 0;
    MovementDatabase movements;
    AccessControlEngine engine;

    std::mutex mu;
    std::condition_variable cv;
    /// Indices into the current batch owned by this shard, batch order.
    std::vector<size_t> todo;
    bool has_work = false;
    bool stop = false;
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);

  /// Records a before_apply (append) failure for the in-flight batch
  /// (first error wins within the category).
  void RecordAppendError(Status status);

  /// Records an after_batch (group-commit) failure (first error wins
  /// within the category; the category outranks append errors).
  void RecordSyncError(Status status);

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Worker callbacks; written only between batches (SetShardHooks),
  /// read by workers while a batch is in flight.
  ShardHooks hooks_;

  /// Batch currently being evaluated; set by EvaluateBatch, read by
  /// workers while the completion latch is open.
  Span<const AccessEvent> current_batch_;
  /// Output slots; workers write disjoint indices.
  std::vector<Decision> decisions_;
  /// Per-shard commit tickets of the in-flight batch; each worker
  /// writes only its own slot.
  std::vector<CommitTicket> batch_tickets_;

  /// Completion latch for the in-flight batch.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t pending_shards_ = 0;
  /// First append / group-commit failure of the current batch, tracked
  /// separately so neither masks the other; guarded by done_mu_.
  Status batch_error_;
  Status sync_error_;

  size_t batches_evaluated_ = 0;
};

/// Moves every event of `seed`'s history into the engine's per-shard
/// movement views (partitioned by subject, per-subject order
/// preserved). The seeding step every sharded runtime performs when
/// starting from an existing movement history.
Status PartitionMovementsIntoShards(const MovementDatabase& seed,
                                    ShardedDecisionEngine* engine);

/// The subjects of `profiles` owned by `shard` under the engine's
/// partition.
std::vector<SubjectId> SubjectsOnShard(const UserProfileDatabase& profiles,
                                       const ShardedDecisionEngine& engine,
                                       uint32_t shard);

}  // namespace ltam

#endif  // LTAM_ENGINE_SHARDED_ENGINE_H_
