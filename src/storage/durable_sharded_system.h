// Copyright 2026 The LTAM Authors.
// Durable sharded LTAM runtime: the batch decision pipeline of
// engine/sharded_engine.h made crash-safe.
//
// Layout of one durable directory (all names recorded in `MANIFEST`):
//
//   MANIFEST                    the committed checkpoint cut (see
//                               storage/manifest.h; atomically renamed)
//   base-<epoch>.snap           shared state: graph, profiles,
//                               authorization ledger, rules
//   shard-<k>-<epoch>.snap      shard k's movement history at the cut
//   events-<k>-<epoch>.wal      shard k's log tail since the cut
//
// Durability discipline: each shard's worker thread appends every event
// of its batch slice to its own WAL *before* applying it (write-ahead,
// via ShardHooks::before_apply), then issues one group-commit fsync per
// batch (ShardHooks::after_batch) instead of one per event — durability
// costs one barrier per shard per batch, off the per-event hot path.
//
// Checkpoint() writes every segment of the next epoch, publishes them by
// atomically renaming a fresh MANIFEST, then deletes the previous
// epoch's files. A crash at any instant leaves a committed cut: either
// the old manifest (new files are orphans, removed on the next
// checkpoint's sweep) or the new one.
//
// Open() recovers by loading the manifest's base snapshot and shard
// segments, rebuilding each shard's open-stay attribution exactly as the
// sequential DurableSystem does (first in-window authorization wins),
// then replaying every shard's log tail *in parallel* — safe because the
// partition confines each subject's events to one shard, the same
// discipline the live pipeline runs under. Recovered state is identical
// to a sequential replay of the surviving log prefix (the property
// tests/durable_sharded_test.cc enforces under crash injection).

#ifndef LTAM_STORAGE_DURABLE_SHARDED_SYSTEM_H_
#define LTAM_STORAGE_DURABLE_SHARDED_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "storage/manifest.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace ltam {

/// Tuning knobs for the durable sharded runtime.
struct DurableShardedOptions {
  /// Shard count for a *fresh* directory. Recovery always reuses the
  /// manifest's count — the on-disk partition is fixed at creation. When
  /// a recovered manifest pins a different count the mismatch is logged
  /// and surfaced through shard_count_overridden(), never guessed away.
  uint32_t num_shards = 4;
  /// Per-shard engine options.
  EngineOptions engine;
  /// Group-commit: fsync each shard's WAL once per batch (and per
  /// tick). Disable only for throughput experiments where the OS page
  /// cache is an acceptable durability boundary.
  bool sync_every_batch = true;
};

/// A crash-safe, subject-sharded batch runtime rooted at one directory.
///
/// Lifecycle mirrors ShardedDecisionEngine: Open (recovers or
/// initializes), EvaluateBatch/Tick/Checkpoint from one control thread,
/// destroy (joins workers). Database mutations on base() are only legal
/// between batches and are NOT logged — persist them via Checkpoint().
class DurableShardedSystem {
 public:
  /// Opens (or creates) the runtime in `dir`. A fresh directory is
  /// seeded from `initial` (its movement history is partitioned across
  /// the shards) and immediately checkpointed as epoch 0, so recovery
  /// never needs `initial` again; when a MANIFEST exists, `initial` is
  /// ignored and state is recovered from the committed cut.
  static Result<std::unique_ptr<DurableShardedSystem>> Open(
      const std::string& dir, SystemState initial,
      DurableShardedOptions options = {});

  ~DurableShardedSystem();
  DurableShardedSystem(const DurableShardedSystem&) = delete;
  DurableShardedSystem& operator=(const DurableShardedSystem&) = delete;

  // --- Logged entry points -------------------------------------------------

  /// Logs and applies a batch: each shard's worker appends its slice to
  /// its WAL before applying, then group-commits. Returns one decision
  /// per event in input order; *durability receives the batch's
  /// durability outcome (composed by ComposeDurabilityError: refused
  /// events are visible as Deny(kWalError) decisions and safe to
  /// resubmit, while a group-commit fsync failure — which outranks
  /// refusals in the status — means applied events' durability is in
  /// doubt and they must NOT be resubmitted). The decisions always
  /// survive, so a partial failure never hides which events applied.
  std::vector<Decision> EvaluateBatchWithStatus(Span<const AccessEvent> batch,
                                                Status* durability);

  /// Legacy convenience over EvaluateBatchWithStatus: folds any
  /// durability trouble into an error Result, DISCARDING the decisions.
  /// Callers that must know which events applied (anything that might
  /// resubmit) should use EvaluateBatchWithStatus instead.
  Result<std::vector<Decision>> EvaluateBatch(Span<const AccessEvent> batch);

  /// Logs and applies a patrol tick on every shard.
  Status Tick(Chronon t);

  // --- Durability ----------------------------------------------------------

  /// Persists the full state as a new epoch and truncates every shard's
  /// log. Subsequent recovery starts from here.
  Status Checkpoint();

  /// Events appended across all shard logs through this instance (reset
  /// by Checkpoint; a recovered tail replayed at Open is not counted).
  size_t wal_events() const;

  /// Current committed checkpoint epoch.
  uint64_t epoch() const { return epoch_; }

  // --- Introspection -------------------------------------------------------

  /// Shared state (graph/profiles/auth ledger/rules). Movement state
  /// lives in the per-shard views, not here.
  const SystemState& base() const { return base_; }
  SystemState& mutable_base() { return base_; }

  const ShardedDecisionEngine& engine() const { return *engine_; }
  ShardedDecisionEngine& engine() { return *engine_; }

  uint32_t num_shards() const { return engine_->num_shards(); }
  uint32_t ShardOf(SubjectId s) const { return engine_->ShardOf(s); }

  /// True when Open() recovered a MANIFEST whose shard count differs
  /// from the one the caller requested — the manifest always wins (the
  /// on-disk partition is fixed at creation), and callers that care can
  /// detect the override here instead of comparing counts by hand.
  bool shard_count_overridden() const { return shard_count_overridden_; }

  /// The shard count the caller asked Open() for (num_shards() is the
  /// count actually in effect).
  uint32_t requested_shards() const { return requested_shards_; }
  const MovementDatabase& shard_movements(uint32_t shard) const {
    return engine_->shard_movements(shard);
  }

  /// Merged alerts from every shard (deterministically ordered),
  /// clearing the per-shard buffers.
  std::vector<Alert> DrainAlerts() { return engine_->DrainAlerts(); }

  /// Rebuilds one unified movement database from every shard's view
  /// (history merged in time order; per-subject order is preserved since
  /// each subject lives on exactly one shard). For cross-shard queries
  /// and tests; cost is linear in total history.
  MovementDatabase MergedMovements() const;

 private:
  DurableShardedSystem(std::string dir, DurableShardedOptions options);

  std::string FilePath(const std::string& name) const;
  std::string BaseSnapName(uint64_t epoch) const;
  std::string ShardSnapName(uint32_t shard, uint64_t epoch) const;
  std::string ShardWalName(uint32_t shard, uint64_t epoch) const;

  /// Constructs the engine over base_ with `num_shards` shards.
  void InitEngine(uint32_t num_shards);

  /// Moves base_.movements into the per-shard views (partitioned by
  /// subject, history order preserved), leaving base_.movements empty.
  Status PartitionBaseMovements();

  /// Re-registers open stays on shard `k`'s engine from its movement
  /// view — the same first-in-window-authorization-wins choice the
  /// sequential DurableSystem makes.
  void RebuildShardStays(uint32_t k);

  /// Replays every shard's WAL tail in parallel; `manifest` names the
  /// files. Missing WAL files are treated as empty (a crash between
  /// manifest publication and log creation loses no committed event).
  Status ReplayShardLogs(const ShardManifest& manifest);

  /// Writes every segment of `epoch` + its manifest and swaps in fresh
  /// WAL writers. On success *out_manifest holds the committed cut.
  Status WriteEpoch(uint64_t epoch, ShardManifest* out_manifest);

  /// Installs the write-ahead hooks on the engine.
  void InstallHooks();

  /// Best-effort removal of a superseded epoch's files.
  void RemoveEpochFiles(uint64_t epoch);

  std::string dir_;
  DurableShardedOptions options_;
  /// Shared stores the engine borrows; movements stays empty (movement
  /// state lives in the shard views).
  SystemState base_;
  std::unique_ptr<ShardedDecisionEngine> engine_;
  /// One writer per shard; appended by that shard's worker during a
  /// batch, and by the control thread for ticks between batches.
  std::vector<std::unique_ptr<WalWriter>> wals_;
  uint64_t epoch_ = 0;
  /// Shard count requested at Open (clamped); differs from num_shards()
  /// iff a recovered manifest pinned another count.
  uint32_t requested_shards_ = 0;
  bool shard_count_overridden_ = false;
};

}  // namespace ltam

#endif  // LTAM_STORAGE_DURABLE_SHARDED_SYSTEM_H_
