// Copyright 2026 The LTAM Authors.

#include "storage/cold_codec.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <tuple>

#include "util/result.h"

namespace ltam {

namespace {

constexpr char kMagic[8] = {'L', 'T', 'A', 'M', 'C', 'O', 'L', '1'};
constexpr char kFooter[4] = {'D', 'N', 'E', '1'};

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Bounds-checked cursor over the encoded image. Every primitive read
/// fails cleanly at the end of the buffer, so truncation at any byte
/// surfaces as ParseError rather than a short segment.
class Reader {
 public:
  Reader(const std::string& bytes) : data_(bytes), pos_(0) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  Status ExpectBytes(const char* expected, size_t n, const char* what) {
    if (remaining() < n) {
      return Status::ParseError(std::string("cold segment truncated in ") +
                                what);
    }
    if (data_.compare(pos_, n, expected, n) != 0) {
      return Status::ParseError(std::string("cold segment bad ") + what);
    }
    pos_ += n;
    return Status::OK();
  }

  Result<uint64_t> Varint(const char* what) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) {
        return Status::ParseError(std::string("cold segment truncated in ") +
                                  what);
      }
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift == 63 && (byte & 0xfe) != 0) {
        return Status::ParseError(std::string("cold segment varint overflow "
                                              "in ") +
                                  what);
      }
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

 private:
  const std::string& data_;
  size_t pos_;
};

}  // namespace

Result<std::string> EncodeColdSegment(const ColdSegment& segment) {
  const size_t rows = segment.rows();
  if (segment.locations.size() != rows || segment.enters.size() != rows ||
      segment.exits.size() != rows) {
    return Status::InvalidArgument("cold segment columns are not parallel");
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutVarint(&out, rows);
  PutVarint(&out, segment.sealed_events);
  PutVarint(&out, ZigZag(segment.min_enter));
  PutVarint(&out, ZigZag(segment.max_exit));

  auto emit_column = [&out](std::string&& column) {
    PutVarint(&out, column.size());
    out += column;
  };

  std::string col;
  // Subjects: non-negative deltas (rows are sorted by subject first).
  SubjectId prev_subject = 0;
  for (size_t i = 0; i < rows; ++i) {
    if (segment.subjects[i] == kInvalidSubject) {
      return Status::InvalidArgument("cold segment stay of invalid subject");
    }
    if (i > 0 && segment.subjects[i] < prev_subject) {
      return Status::InvalidArgument("cold segment rows not subject-sorted");
    }
    PutVarint(&col, segment.subjects[i] - (i == 0 ? 0 : prev_subject));
    prev_subject = segment.subjects[i];
  }
  emit_column(std::move(col));
  col.clear();
  for (size_t i = 0; i < rows; ++i) {
    if (segment.locations[i] == kInvalidLocation) {
      return Status::InvalidArgument("cold segment stay in invalid location");
    }
    PutVarint(&col, segment.locations[i]);
  }
  emit_column(std::move(col));
  col.clear();
  Chronon prev_enter = 0;
  for (size_t i = 0; i < rows; ++i) {
    PutVarint(&col, ZigZag(segment.enters[i] - (i == 0 ? 0 : prev_enter)));
    prev_enter = segment.enters[i];
  }
  emit_column(std::move(col));
  col.clear();
  for (size_t i = 0; i < rows; ++i) {
    if (segment.exits[i] < segment.enters[i] ||
        segment.exits[i] == kChrononMax) {
      return Status::InvalidArgument(
          "cold segment stay is open or ends before it starts");
    }
    PutVarint(&col, static_cast<uint64_t>(segment.exits[i]) -
                        static_cast<uint64_t>(segment.enters[i]));
  }
  emit_column(std::move(col));
  out.append(kFooter, sizeof(kFooter));
  return out;
}

Result<ColdSegment> DecodeColdSegment(const std::string& bytes) {
  Reader r(bytes);
  LTAM_RETURN_IF_ERROR(r.ExpectBytes(kMagic, sizeof(kMagic), "magic"));
  LTAM_ASSIGN_OR_RETURN(uint64_t rows, r.Varint("row count"));
  // Every row costs at least one byte in each of the four columns, so a
  // declared count beyond the remaining bytes is corrupt. Checked before
  // the first reserve: a hostile count can never drive allocation past
  // the file's own size.
  if (rows > r.remaining()) {
    return Status::ParseError("cold segment row count exceeds file size");
  }
  ColdSegment seg;
  LTAM_ASSIGN_OR_RETURN(seg.sealed_events, r.Varint("sealed events"));
  LTAM_ASSIGN_OR_RETURN(uint64_t zz_min, r.Varint("min enter"));
  LTAM_ASSIGN_OR_RETURN(uint64_t zz_max, r.Varint("max exit"));
  seg.min_enter = UnZigZag(zz_min);
  seg.max_exit = UnZigZag(zz_max);

  // Each encoded value is at least one byte, so a declared row count
  // exceeding a column's byte length (itself bounded by the file size)
  // is corrupt — checked per column BEFORE reserving, so a hostile
  // count can never drive allocation past the file's own size.
  auto read_column = [&r, rows](const char* what,
                                const std::function<Status(uint64_t)>& add)
      -> Status {
    LTAM_ASSIGN_OR_RETURN(uint64_t len, r.Varint(what));
    if (len > r.remaining()) {
      return Status::ParseError(std::string("cold segment truncated in ") +
                                what);
    }
    if (rows > len) {
      return Status::ParseError(
          std::string("cold segment row count exceeds ") + what + " bytes");
    }
    const size_t end = r.pos() + static_cast<size_t>(len);
    for (uint64_t i = 0; i < rows; ++i) {
      LTAM_ASSIGN_OR_RETURN(uint64_t v, r.Varint(what));
      LTAM_RETURN_IF_ERROR(add(v));
    }
    if (r.pos() != end) {
      return Status::ParseError(std::string("cold segment ") + what +
                                " column length mismatch");
    }
    return Status::OK();
  };

  seg.subjects.reserve(rows);
  uint64_t subject = 0;
  LTAM_RETURN_IF_ERROR(read_column("subjects", [&](uint64_t delta) {
    subject += delta;
    if (subject >= kInvalidSubject) {
      return Status::ParseError("cold segment subject id out of range");
    }
    seg.subjects.push_back(static_cast<SubjectId>(subject));
    return Status::OK();
  }));
  seg.locations.reserve(rows);
  LTAM_RETURN_IF_ERROR(read_column("locations", [&](uint64_t v) {
    if (v >= kInvalidLocation) {
      return Status::ParseError("cold segment location id out of range");
    }
    seg.locations.push_back(static_cast<LocationId>(v));
    return Status::OK();
  }));
  seg.enters.reserve(rows);
  Chronon enter = 0;
  LTAM_RETURN_IF_ERROR(read_column("enters", [&](uint64_t zz) {
    enter += UnZigZag(zz);
    seg.enters.push_back(enter);
    return Status::OK();
  }));
  seg.exits.reserve(rows);
  size_t row = 0;
  LTAM_RETURN_IF_ERROR(read_column("exits", [&](uint64_t span) {
    const Chronon start = seg.enters[row++];
    // Unsigned add, then reject any wrap past the signed range: span is
    // < 2^64, so a wrapped sum always lands below `start`.
    const Chronon exit = static_cast<Chronon>(
        static_cast<uint64_t>(start) + span);
    if (exit < start) {
      return Status::ParseError("cold segment stay length overflows");
    }
    if (exit == kChrononMax) {
      return Status::ParseError("cold segment holds an open stay");
    }
    seg.exits.push_back(exit);
    return Status::OK();
  }));
  LTAM_RETURN_IF_ERROR(r.ExpectBytes(kFooter, sizeof(kFooter), "footer"));
  if (r.remaining() != 0) {
    return Status::ParseError("cold segment has trailing bytes");
  }

  // Structural invariants: canonical (subject, enter, exit, location)
  // order — the subject column is nondecreasing by construction (deltas
  // are unsigned), the rest is validated here — and exact time bounds.
  Chronon min_enter = 0;
  Chronon max_exit = 0;
  for (size_t i = 0; i < seg.rows(); ++i) {
    if (i > 0 && seg.subjects[i] == seg.subjects[i - 1]) {
      const bool ordered =
          std::make_tuple(seg.enters[i - 1], seg.exits[i - 1],
                          seg.locations[i - 1]) <=
          std::make_tuple(seg.enters[i], seg.exits[i], seg.locations[i]);
      if (!ordered) {
        return Status::ParseError("cold segment rows out of order");
      }
    }
    if (i == 0) {
      min_enter = seg.enters[0];
      max_exit = seg.exits[0];
    } else {
      min_enter = std::min(min_enter, seg.enters[i]);
      max_exit = std::max(max_exit, seg.exits[i]);
    }
  }
  if (!seg.empty() &&
      (min_enter != seg.min_enter || max_exit != seg.max_exit)) {
    return Status::ParseError("cold segment time bounds mismatch");
  }
  if (seg.empty() && (seg.min_enter != 0 || seg.max_exit != 0)) {
    return Status::ParseError("cold segment time bounds mismatch");
  }
  return seg;
}

Status SaveColdSegment(const ColdSegment& segment, const std::string& path) {
  LTAM_ASSIGN_OR_RETURN(std::string bytes, EncodeColdSegment(segment));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open cold segment '" + path + "'");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    return Status::IOError("cold segment write failed: '" + path + "'");
  }
  return Status::OK();
}

Result<std::shared_ptr<const ColdSegment>> LoadColdSegment(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open cold segment '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("cold segment read failed: '" + path + "'");
  }
  Result<ColdSegment> decoded = DecodeColdSegment(bytes);
  if (!decoded.ok()) {
    return decoded.status().WithContext("cold segment '" + path + "'");
  }
  return std::make_shared<const ColdSegment>(std::move(*decoded));
}

}  // namespace ltam
