// Copyright 2026 The LTAM Authors.

#include "telemetry/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

namespace {

constexpr int kSubBits = LatencyHistogram::kSubBucketBits;
constexpr uint64_t kSubCount = 1ull << kSubBits;
constexpr uint64_t kSubMask = kSubCount - 1;

int MostSignificantBit(uint64_t v) { return 63 - __builtin_clzll(v); }

}  // namespace

size_t LatencyHistogram::NumBuckets() {
  // Unit buckets cover octaves 0..kSubBits (indices < 2 * kSubCount are
  // exact); each further octave up to bit 63 adds kSubCount sub-buckets.
  return ((64 - kSubBits) << kSubBits) + kSubCount;
}

size_t LatencyHistogram::BucketIndexFor(uint64_t value) {
  if (value < kSubCount) return static_cast<size_t>(value);
  const int msb = MostSignificantBit(value);
  const int shift = msb - kSubBits;
  const uint64_t sub = (value >> shift) & kSubMask;
  const size_t octave = static_cast<size_t>(msb - kSubBits + 1);
  return (octave << kSubBits) + static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  const size_t octave = index >> kSubBits;
  const uint64_t sub = index & kSubMask;
  if (octave == 0) return sub;
  return (kSubCount + sub) << (octave - 1);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  const size_t octave = index >> kSubBits;
  if (octave == 0) return index & kSubMask;
  const uint64_t width = 1ull << (octave - 1);
  return BucketLowerBound(index) + width - 1;
}

LatencyHistogram::LatencyHistogram() : buckets_(NumBuckets(), 0) {}

void LatencyHistogram::Record(uint64_t value) {
  ++buckets_[BucketIndexFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  LTAM_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // Never report beyond the exactly-tracked extremes.
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;  // Unreachable: rank <= count_.
}

std::vector<std::pair<uint32_t, uint64_t>> LatencyHistogram::NonZeroBuckets()
    const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(static_cast<uint32_t>(i), buckets_[i]);
    }
  }
  return out;
}

Result<LatencyHistogram> LatencyHistogram::FromParts(
    uint64_t count, uint64_t sum, uint64_t min, uint64_t max,
    const std::vector<std::pair<uint32_t, uint64_t>>& nonzero_buckets) {
  LatencyHistogram h;
  uint64_t bucket_total = 0;
  uint32_t prev_index = 0;
  bool first = true;
  for (const auto& [index, bucket_count] : nonzero_buckets) {
    if (index >= NumBuckets()) {
      return Status::InvalidArgument("histogram bucket index out of range");
    }
    if (!first && index <= prev_index) {
      return Status::InvalidArgument(
          "histogram bucket indices not strictly ascending");
    }
    if (bucket_count == 0) {
      return Status::InvalidArgument("histogram bucket with zero count");
    }
    first = false;
    prev_index = index;
    h.buckets_[index] = bucket_count;
    bucket_total += bucket_count;
  }
  if (bucket_total != count) {
    return Status::InvalidArgument(
        "histogram bucket counts do not sum to count");
  }
  if (count > 0 && min > max) {
    return Status::InvalidArgument("histogram min exceeds max");
  }
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count == 0 ? UINT64_MAX : min;
  h.max_ = max;
  return h;
}

std::string LatencyHistogram::ToString() const {
  auto ms = [](uint64_t nanos) {
    return static_cast<double>(nanos) / 1e6;
  };
  return StrFormat(
      "p50=%.3fms p90=%.3fms p99=%.3fms p999=%.3fms max=%.3fms "
      "mean=%.3fms (n=%llu)",
      ms(p50()), ms(p90()), ms(p99()), ms(p999()), ms(max()), mean() / 1e6,
      static_cast<unsigned long long>(count_));
}

}  // namespace ltam
