// Copyright 2026 The LTAM Authors.

#include "sim/workload.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "engine/sharded_engine.h"
#include "runtime/access_runtime.h"
#include "sim/graph_gen.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

std::vector<SubjectId> GenerateSubjects(UserProfileDatabase* profiles,
                                        uint32_t count) {
  LTAM_CHECK(profiles != nullptr);
  std::vector<SubjectId> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Result<SubjectId> r = profiles->AddSubject(StrFormat("u%u", i));
    // Name collisions only happen if the caller generated before; make
    // the generator idempotent by resolving.
    if (!r.ok()) r = profiles->Find(StrFormat("u%u", i));
    LTAM_CHECK(r.ok()) << r.status().ToString();
    out.push_back(*r);
  }
  return out;
}

size_t GenerateAuthorizations(const MultilevelLocationGraph& graph,
                              const std::vector<SubjectId>& subjects,
                              const AuthWorkloadOptions& options, Rng* rng,
                              AuthorizationDatabase* db) {
  return GenerateAuthorizationsOver(graph.Primitives(), subjects, options, rng,
                                    db);
}

size_t GenerateAuthorizationsOver(const std::vector<LocationId>& locations,
                                  const std::vector<SubjectId>& subjects,
                                  const AuthWorkloadOptions& options, Rng* rng,
                                  AuthorizationDatabase* db) {
  LTAM_CHECK(rng != nullptr);
  LTAM_CHECK(db != nullptr);
  size_t added = 0;
  for (SubjectId s : subjects) {
    for (LocationId l : locations) {
      if (!rng->Bernoulli(options.coverage)) continue;
      for (uint32_t k = 0; k < options.auths_per_location; ++k) {
        Chronon start = rng->UniformRange(0, options.horizon - 1);
        Chronon len = rng->UniformRange(options.min_len, options.max_len);
        TimeInterval entry(start, ChrononAdd(start, len));
        Chronon slack = rng->UniformRange(0, options.max_slack);
        TimeInterval exit(entry.start(), ChrononAdd(entry.end(), slack));
        int64_t n = options.max_entries == 0
                        ? kUnlimitedEntries
                        : rng->UniformRange(1, options.max_entries);
        Result<LocationTemporalAuthorization> auth =
            LocationTemporalAuthorization::Make(entry, exit,
                                                LocationAuthorization{s, l},
                                                n);
        LTAM_CHECK(auth.ok()) << auth.status().ToString();
        db->Add(*auth);
        ++added;
      }
    }
  }
  return added;
}

std::vector<AccessRequest> GenerateRequests(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t count, Chronon horizon,
    Rng* rng) {
  LTAM_CHECK(rng != nullptr);
  std::vector<AccessRequest> out;
  if (subjects.empty()) return out;
  std::vector<LocationId> prims = graph.Primitives();
  if (prims.empty()) return out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AccessRequest req;
    req.time = rng->UniformRange(0, horizon - 1);
    req.subject = subjects[rng->Uniform(subjects.size())];
    req.location = prims[rng->Uniform(prims.size())];
    out.push_back(req);
  }
  std::sort(out.begin(), out.end(),
            [](const AccessRequest& a, const AccessRequest& b) {
              return a.time < b.time;
            });
  return out;
}

std::vector<std::vector<AccessEvent>> GenerateEventBatches(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t total_events,
    const BatchWorkloadOptions& options, Rng* rng) {
  LTAM_CHECK(rng != nullptr);
  LTAM_CHECK(options.batch_size > 0) << "batch_size must be positive";
  LTAM_CHECK(options.max_step >= 1) << "max_step must be positive";
  std::vector<std::vector<AccessEvent>> out;
  if (subjects.empty() || total_events == 0) return out;
  std::vector<LocationId> prims = graph.Primitives();
  if (prims.empty()) return out;

  // Per-subject monotone clocks keep every subject's stream strictly
  // increasing in time across the whole run.
  std::unordered_map<SubjectId, Chronon> clock;
  std::unordered_map<SubjectId, bool> inside;

  size_t remaining = total_events;
  while (remaining > 0) {
    size_t size = std::min(options.batch_size, remaining);
    remaining -= size;
    std::vector<AccessEvent> batch;
    batch.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      SubjectId s = subjects[rng->Uniform(subjects.size())];
      Chronon t = clock[s] + rng->UniformRange(1, options.max_step);
      clock[s] = t;
      bool& in = inside[s];
      if (in && rng->Bernoulli(options.exit_fraction)) {
        batch.push_back(AccessEvent::Exit(t, s));
        in = false;
        continue;
      }
      LocationId l = prims[rng->Uniform(prims.size())];
      if (rng->Bernoulli(options.observe_fraction)) {
        batch.push_back(AccessEvent::Observe(t, s, l));
      } else {
        batch.push_back(AccessEvent::Entry(t, s, l));
      }
      in = true;
    }
    // Sort by (time, subject); same-subject events have distinct times,
    // so the per-subject order is by-time both here and in a sequential
    // replay of the batch.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const AccessEvent& a, const AccessEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.subject < b.subject;
                     });
    out.push_back(std::move(batch));
  }
  return out;
}

// --- Scenario families ------------------------------------------------------

const char* ScenarioFamilyToString(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kSurge:
      return "surge";
    case ScenarioFamily::kContactSweep:
      return "contact";
    case ScenarioFamily::kPolicyChurn:
      return "churn";
    case ScenarioFamily::kMultiTenant:
      return "tenant";
    case ScenarioFamily::kReplication:
      return "replication";
    case ScenarioFamily::kSoak:
      return "soak";
  }
  return "unknown";
}

Result<ScenarioFamily> ParseScenarioFamily(const std::string& name) {
  if (name == "surge") return ScenarioFamily::kSurge;
  if (name == "contact" || name == "contact-sweep") {
    return ScenarioFamily::kContactSweep;
  }
  if (name == "churn" || name == "policy-churn") {
    return ScenarioFamily::kPolicyChurn;
  }
  if (name == "tenant" || name == "multi-tenant") {
    return ScenarioFamily::kMultiTenant;
  }
  if (name == "replication" || name == "replica") {
    return ScenarioFamily::kReplication;
  }
  if (name == "soak") return ScenarioFamily::kSoak;
  return Status::InvalidArgument(
      "unknown scenario family '" + name +
      "' (expected surge|contact|churn|tenant|replication|soak)");
}

namespace {

/// Per-family event-mix knobs for the stream generator below.
struct StreamMix {
  double exit_fraction = 0.1;
  double observe_fraction = 0.1;
  Chronon max_step = 3;
};

/// Generates `streams` disjoint event substreams (subjects partitioned
/// round-robin) of `events_per_frame`-sized frames, `total_events` in
/// all. `sample_location` picks each event's target. Stream c draws
/// from its own seeded Rng, so the result is independent of how many
/// streams the *caller* ends up driving concurrently — and identical
/// across processes.
std::vector<std::vector<std::vector<AccessEvent>>> GenerateScenarioStreams(
    const std::vector<SubjectId>& subjects, uint32_t streams,
    size_t total_events, size_t events_per_frame, const StreamMix& mix,
    const std::function<LocationId(SubjectId, Rng*)>& sample_location,
    uint64_t seed) {
  std::vector<std::vector<std::vector<AccessEvent>>> out(streams);
  for (uint32_t c = 0; c < streams; ++c) {
    std::vector<SubjectId> mine;
    for (size_t i = c; i < subjects.size(); i += streams) {
      mine.push_back(subjects[i]);
    }
    size_t share = total_events / streams +
                   (c < total_events % streams ? 1 : 0);
    if (mine.empty() || share == 0) continue;
    Rng rng(seed + 0x9e3779b9ull * (c + 1));
    std::unordered_map<SubjectId, Chronon> clock;
    std::unordered_map<SubjectId, LocationId> at;
    while (share > 0) {
      size_t size = std::min(events_per_frame, share);
      share -= size;
      std::vector<AccessEvent> frame;
      frame.reserve(size);
      for (size_t i = 0; i < size; ++i) {
        SubjectId s = mine[rng.Uniform(mine.size())];
        Chronon t = clock[s] + rng.UniformRange(1, mix.max_step);
        clock[s] = t;
        LocationId& cur = at.try_emplace(s, kInvalidLocation).first->second;
        const bool in = cur != kInvalidLocation;
        if (in && rng.Bernoulli(mix.exit_fraction)) {
          frame.push_back(AccessEvent::Exit(t, s));
          cur = kInvalidLocation;
          continue;
        }
        // The movement database treats a move onto the current
        // location as a no-op error, so resample away from it (and
        // fall back to an exit when the sampler's support is that
        // narrow, e.g. a one-room tenant).
        LocationId l = sample_location(s, &rng);
        for (int tries = 0; l == cur && tries < 8; ++tries) {
          l = sample_location(s, &rng);
        }
        if (l == cur) {
          frame.push_back(AccessEvent::Exit(t, s));
          cur = kInvalidLocation;
          continue;
        }
        if (rng.Bernoulli(mix.observe_fraction)) {
          frame.push_back(AccessEvent::Observe(t, s, l));
        } else {
          frame.push_back(AccessEvent::Entry(t, s, l));
        }
        cur = l;
      }
      std::stable_sort(frame.begin(), frame.end(),
                       [](const AccessEvent& a, const AccessEvent& b) {
                         if (a.time != b.time) return a.time < b.time;
                         return a.subject < b.subject;
                       });
      out[c].push_back(std::move(frame));
    }
  }
  return out;
}

}  // namespace

Result<LoadScenario> GenerateLoadScenario(ScenarioFamily family,
                                          const ScenarioOptions& options) {
  if (options.subjects == 0) {
    return Status::InvalidArgument("scenario needs at least one subject");
  }
  if (options.streams == 0 || options.streams > options.subjects) {
    return Status::InvalidArgument(
        "streams must be in [1, subjects]: every stream needs its own "
        "disjoint subject set");
  }
  if (options.events_per_frame == 0) {
    return Status::InvalidArgument("events_per_frame must be positive");
  }
  if (family == ScenarioFamily::kMultiTenant && options.tenants == 0) {
    return Status::InvalidArgument("multi-tenant needs at least one tenant");
  }

  LoadScenario s;
  s.family = family;
  s.engine.enforce_adjacency = false;
  s.engine.alert_on_denial = false;
  Rng world_rng(options.seed);

  // Per-subject clocks reach roughly events-per-subject * max_step; size
  // the authorization horizon past that so grants do not expire mid-run.
  // Every window is anchored at 0 (horizon=1 makes the start draw 0) and
  // outlives the run: `coverage` then IS the per-(subject, location)
  // grant probability, which keeps each family's admit/deny mix
  // meaningful as a load signal instead of an artifact of window
  // placement.
  const size_t per_subject =
      std::max<size_t>(1, options.total_events / options.subjects);
  const Chronon horizon =
      static_cast<Chronon>(std::max<size_t>(1000, per_subject * 8));
  AuthWorkloadOptions auth_opt;
  auth_opt.horizon = 1;
  auth_opt.min_len = horizon * 8;
  auth_opt.max_len = horizon * 8;
  auth_opt.max_slack = horizon * 2;
  auth_opt.max_entries = 0;

  StreamMix mix;
  std::function<LocationId(SubjectId, Rng*)> sample_location;

  switch (family) {
    case ScenarioFamily::kSurge: {
      LTAM_ASSIGN_OR_RETURN(s.initial.graph, MakeCampusGraph(4, 8));
      s.subjects = GenerateSubjects(&s.initial.profiles, options.subjects);
      std::vector<LocationId> prims = s.initial.graph.Primitives();
      const uint32_t hot_count = std::max<uint32_t>(
          1, std::min<uint32_t>(options.hot_locations,
                                static_cast<uint32_t>(prims.size())));
      std::vector<LocationId> hot(prims.begin(), prims.begin() + hot_count);
      auth_opt.coverage = 0.4;
      GenerateAuthorizations(s.initial.graph, s.subjects, auth_opt,
                             &world_rng, &s.initial.auth_db);
      // Blanket grants at the hot doors: a surge is mostly-admitted
      // traffic hammering few locations, not a wall of denials.
      AuthWorkloadOptions hot_opt = auth_opt;
      hot_opt.coverage = 1.0;
      GenerateAuthorizationsOver(hot, s.subjects, hot_opt, &world_rng,
                                 &s.initial.auth_db);
      const double hot_fraction = options.hot_fraction;
      sample_location = [hot, prims, hot_fraction](SubjectId, Rng* rng) {
        if (rng->Bernoulli(hot_fraction)) {
          return hot[rng->Uniform(hot.size())];
        }
        return prims[rng->Uniform(prims.size())];
      };
      mix.exit_fraction = 0.05;
      mix.observe_fraction = 0.2;
      s.burst_duty = 0.25;
      s.burst_period_ms = 400;
      break;
    }
    case ScenarioFamily::kContactSweep: {
      LTAM_ASSIGN_OR_RETURN(s.initial.graph, MakeCampusGraph(4, 6));
      s.subjects = GenerateSubjects(&s.initial.profiles, options.subjects);
      std::vector<LocationId> prims = s.initial.graph.Primitives();
      auth_opt.coverage = 0.9;
      GenerateAuthorizations(s.initial.graph, s.subjects, auth_opt,
                             &world_rng, &s.initial.auth_db);
      // Subjects gravitate to a few shared rooms so stay overlaps (and
      // therefore contact query results) are dense across shards.
      const size_t shared_count = std::min<size_t>(6, prims.size());
      std::vector<LocationId> shared(prims.begin(),
                                     prims.begin() + shared_count);
      sample_location = [shared, prims](SubjectId, Rng* rng) {
        if (rng->Bernoulli(0.7)) {
          return shared[rng->Uniform(shared.size())];
        }
        return prims[rng->Uniform(prims.size())];
      };
      mix.exit_fraction = 0.05;
      mix.observe_fraction = 0.35;
      s.query_fraction = options.query_fraction;
      for (uint32_t i = 0; i < options.subjects; ++i) {
        s.queries.push_back(
            StrFormat("CONTACTS OF u%u DURING [0,%lld] MIN 1", i,
                      static_cast<long long>(horizon * 4)));
      }
      break;
    }
    case ScenarioFamily::kPolicyChurn: {
      LTAM_ASSIGN_OR_RETURN(s.initial.graph, MakeCampusGraph(4, 8));
      s.subjects = GenerateSubjects(&s.initial.profiles, options.subjects);
      std::vector<LocationId> prims = s.initial.graph.Primitives();
      // Sparse coverage: most requests start denied, and the mutation
      // schedule below grants more as the run progresses — the decision
      // stream visibly depends on the mutations landing at the right
      // frame boundaries.
      auth_opt.coverage = 0.2;
      GenerateAuthorizations(s.initial.graph, s.subjects, auth_opt,
                             &world_rng, &s.initial.auth_db);
      sample_location = [prims](SubjectId, Rng* rng) {
        return prims[rng->Uniform(prims.size())];
      };
      mix.exit_fraction = 0.1;
      mix.observe_fraction = 0.1;
      break;
    }
    case ScenarioFamily::kMultiTenant: {
      const uint32_t tenants =
          std::min(options.tenants, options.subjects);
      LTAM_ASSIGN_OR_RETURN(s.initial.graph,
                            MakeCampusGraph(std::max(2u, tenants), 6));
      s.subjects = GenerateSubjects(&s.initial.profiles, options.subjects);
      // Tenant k's universe is building k: its subjects are authorized
      // on (and only ever visit) that building's rooms.
      std::vector<LocationId> buildings = s.initial.graph.Composites();
      // Composites() includes the root (id 0); tenants live in the rest.
      std::vector<std::vector<LocationId>> tenant_rooms;
      for (LocationId b : buildings) {
        if (b == s.initial.graph.root()) continue;
        if (tenant_rooms.size() == tenants) break;
        tenant_rooms.push_back(s.initial.graph.PrimitivesWithin(b));
      }
      std::unordered_map<SubjectId, uint32_t> tenant_of;
      std::vector<std::vector<SubjectId>> tenant_subjects(tenant_rooms.size());
      for (size_t i = 0; i < s.subjects.size(); ++i) {
        uint32_t t = static_cast<uint32_t>(i % tenant_rooms.size());
        tenant_of[s.subjects[i]] = t;
        tenant_subjects[t].push_back(s.subjects[i]);
      }
      auth_opt.coverage = 0.8;
      for (size_t t = 0; t < tenant_rooms.size(); ++t) {
        GenerateAuthorizationsOver(tenant_rooms[t], tenant_subjects[t],
                                   auth_opt, &world_rng,
                                   &s.initial.auth_db);
      }
      sample_location = [tenant_of, tenant_rooms](SubjectId subject,
                                                  Rng* rng) {
        const std::vector<LocationId>& rooms =
            tenant_rooms[tenant_of.at(subject)];
        return rooms[rng->Uniform(rooms.size())];
      };
      mix.exit_fraction = 0.1;
      mix.observe_fraction = 0.15;
      break;
    }
    case ScenarioFamily::kReplication: {
      // Read-heavy serving: ingest flows to the primary while the
      // query pool is meant to be answered by read replicas (ltam_load
      // --query-host routes it to a second endpoint). High coverage
      // keeps the stream admit-heavy — the interesting signal is read
      // latency under replication lag, not a wall of denials. No
      // mutation schedule on purpose: only WAL-logged events
      // replicate, so a mutating family would diverge primary and
      // replica by design.
      LTAM_ASSIGN_OR_RETURN(s.initial.graph, MakeCampusGraph(4, 6));
      s.subjects = GenerateSubjects(&s.initial.profiles, options.subjects);
      std::vector<LocationId> prims = s.initial.graph.Primitives();
      auth_opt.coverage = 0.8;
      GenerateAuthorizations(s.initial.graph, s.subjects, auth_opt,
                             &world_rng, &s.initial.auth_db);
      sample_location = [prims](SubjectId, Rng* rng) {
        return prims[rng->Uniform(prims.size())];
      };
      mix.exit_fraction = 0.05;
      mix.observe_fraction = 0.25;
      // Twice the contact-sweep read share: this is the read-heavy
      // family. Point-in-time queries across the whole horizon — the
      // shape a replica endpoint serves (any committed prefix answers
      // them; the pool never reads ahead of ingest).
      s.query_fraction = std::min(0.9, options.query_fraction * 2);
      for (uint32_t i = 0; i < options.subjects; ++i) {
        for (int k = 1; k <= 4; ++k) {
          s.queries.push_back(StrFormat(
              "WHERE WAS u%u AT %lld", i,
              static_cast<long long>(horizon * k)));
        }
      }
      break;
    }
    case ScenarioFamily::kSoak: {
      // Retention steady state: exits dominate so stays complete and
      // become seal-eligible (an open stay can never move to the cold
      // tier), arrivals are steady (the plateau signal would be noise
      // under bursts), and a light read mix keeps the query path
      // answering over both tiers while the server checkpoints,
      // seals, and compacts behind the run.
      LTAM_ASSIGN_OR_RETURN(s.initial.graph, MakeCampusGraph(4, 6));
      s.subjects = GenerateSubjects(&s.initial.profiles, options.subjects);
      std::vector<LocationId> prims = s.initial.graph.Primitives();
      auth_opt.coverage = 0.9;
      GenerateAuthorizations(s.initial.graph, s.subjects, auth_opt,
                             &world_rng, &s.initial.auth_db);
      sample_location = [prims](SubjectId, Rng* rng) {
        return prims[rng->Uniform(prims.size())];
      };
      mix.exit_fraction = 0.45;
      mix.observe_fraction = 0.05;
      s.query_fraction = std::min(0.5, options.query_fraction * 0.5);
      for (uint32_t i = 0; i < options.subjects; ++i) {
        s.queries.push_back(StrFormat(
            "WHERE WAS u%u AT %lld", i,
            static_cast<long long>(horizon * 2)));
      }
      break;
    }
  }

  s.streams = GenerateScenarioStreams(s.subjects, options.streams,
                                      options.total_events,
                                      options.events_per_frame, mix,
                                      sample_location, options.seed);
  for (const auto& stream : s.streams) {
    for (const auto& frame : stream) s.total_events += frame.size();
  }

  if (family == ScenarioFamily::kPolicyChurn &&
      options.mutate_every_frames > 0) {
    const size_t rounds = FlattenScenarioFrames(s).size();
    Rng mut_rng(options.seed ^ 0xc4ceb9fe1a85ec53ull);
    std::vector<LocationId> prims = s.initial.graph.Primitives();
    for (size_t f = options.mutate_every_frames; f < rounds;
         f += options.mutate_every_frames) {
      ScenarioMutation m;
      m.before_frame = f;
      m.subject = s.subjects[mut_rng.Uniform(s.subjects.size())];
      m.location = prims[mut_rng.Uniform(prims.size())];
      m.entry_start = 0;
      m.entry_end = horizon * 4;
      m.exit_end = horizon * 5;
      s.mutations.push_back(m);
    }
  }
  return s;
}

std::vector<std::vector<AccessEvent>> FlattenScenarioFrames(
    const LoadScenario& scenario) {
  std::vector<std::vector<AccessEvent>> out;
  size_t longest = 0;
  for (const auto& stream : scenario.streams) {
    longest = std::max(longest, stream.size());
  }
  for (size_t r = 0; r < longest; ++r) {
    for (const auto& stream : scenario.streams) {
      if (r < stream.size()) out.push_back(stream[r]);
    }
  }
  return out;
}

Status ApplyScenarioMutation(AccessRuntime* runtime,
                             const ScenarioMutation& m) {
  LTAM_CHECK(runtime != nullptr);
  return runtime->Mutate([&m](const MutableStores& stores) -> Status {
    LTAM_ASSIGN_OR_RETURN(
        LocationTemporalAuthorization auth,
        LocationTemporalAuthorization::Make(
            TimeInterval(m.entry_start, m.entry_end),
            TimeInterval(m.entry_start, m.exit_end),
            LocationAuthorization{m.subject, m.location},
            kUnlimitedEntries));
    stores.auth_db.Add(auth);
    return Status::OK();
  });
}

SequentialReplay ReplayBatchesSequential(
    const MultilevelLocationGraph& graph, AuthorizationDatabase* auth_db,
    const UserProfileDatabase& profiles,
    const std::vector<std::vector<AccessEvent>>& batches,
    const EngineOptions& options) {
  LTAM_CHECK(auth_db != nullptr);
  SequentialReplay replay;
  MovementDatabase movements;
  AccessControlEngine engine(&graph, auth_db, &movements, &profiles, options);
  for (const std::vector<AccessEvent>& batch : batches) {
    for (const AccessEvent& event : batch) {
      replay.decisions.push_back(ApplyAccessEvent(&engine, event));
      ++replay.events;
    }
  }
  replay.alerts = engine.alerts();
  return replay;
}

}  // namespace ltam
