// Copyright 2026 The LTAM Authors.
// Tests for Definitions 3-4 and the Section 6 grant/departure durations.

#include "core/authorization.h"

#include <gtest/gtest.h>

#include "graph/multilevel_graph.h"
#include "test_util.h"

namespace ltam {
namespace {

LocationAuthorization AliceCais() { return LocationAuthorization{0, 1}; }

TEST(AuthorizationTest, MakeAcceptsPaperExample) {
  // ([5, 40], [20, 100], (Alice, CAIS), 1) from Section 3.2.
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization auth,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(5, 40), TimeInterval(20, 100),
                           AliceCais(), 1));
  EXPECT_EQ(auth.entry_duration(), TimeInterval(5, 40));
  EXPECT_EQ(auth.exit_duration(), TimeInterval(20, 100));
  EXPECT_EQ(auth.subject(), 0u);
  EXPECT_EQ(auth.location(), 1u);
  EXPECT_EQ(auth.max_entries(), 1);
}

TEST(AuthorizationTest, Definition4Constraints) {
  // tos >= tis violated.
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(10, 40), TimeInterval(5, 100), AliceCais(), 1)
                  .status()
                  .IsInvalidArgument());
  // toe >= tie violated.
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(10, 40), TimeInterval(20, 30), AliceCais(), 1)
                  .status()
                  .IsInvalidArgument());
  // Equal boundaries are fine.
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(10, 40), TimeInterval(10, 40), AliceCais(), 1)
                  .ok());
}

TEST(AuthorizationTest, EntryCountRange) {
  // "The range of entry is [1, inf)."
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(0, 10), TimeInterval(0, 10), AliceCais(), 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(0, 10), TimeInterval(0, 10), AliceCais(), -3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(0, 10), TimeInterval(0, 10), AliceCais(),
                  kUnlimitedEntries)
                  .ok());
}

TEST(AuthorizationTest, InvalidSubjectOrLocationRejected) {
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(0, 10), TimeInterval(0, 10),
                  LocationAuthorization{kInvalidSubject, 1}, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LocationTemporalAuthorization::Make(
                  TimeInterval(0, 10), TimeInterval(0, 10),
                  LocationAuthorization{0, kInvalidLocation}, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(AuthorizationTest, DefaultExitDuration) {
  // "If the exit duration is not specified, the default value will be
  // [tis, inf]."
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization auth,
                       LocationTemporalAuthorization::MakeDefaultExit(
                           TimeInterval(5, 40), AliceCais()));
  EXPECT_EQ(auth.exit_duration(), TimeInterval(5, kChrononMax));
  EXPECT_EQ(auth.max_entries(), kUnlimitedEntries);
}

TEST(AuthorizationTest, GrantDuration) {
  // Section 6: grant duration of [tis,tie]=[2,35] within [tp,tq].
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization auth,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(2, 35), TimeInterval(20, 50),
                           AliceCais(), 1));
  auto g = auth.GrantDuration(TimeInterval(0, kChrononMax));
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, TimeInterval(2, 35));
  // Window clips both sides.
  g = auth.GrantDuration(TimeInterval(10, 20));
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, TimeInterval(10, 20));
  // Disjoint window -> null.
  EXPECT_FALSE(auth.GrantDuration(TimeInterval(40, 60)).has_value());
  EXPECT_FALSE(auth.GrantDuration(TimeInterval(0, 1)).has_value());
}

TEST(AuthorizationTest, DepartureDuration) {
  // Departure duration is [max(tp, tos), toe]: the window clips the start
  // but never the end.
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization auth,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(40, 60), TimeInterval(55, 80),
                           AliceCais(), 1));
  auto d = auth.DepartureDuration(TimeInterval(20, 50));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, TimeInterval(55, 80));  // Table 2's B: [max(20,55), 80].
  d = auth.DepartureDuration(TimeInterval(60, 70));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, TimeInterval(60, 80));
  EXPECT_FALSE(auth.DepartureDuration(TimeInterval(81, 90)).has_value());
}

TEST(AuthorizationTest, ToStringForms) {
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization auth,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(5, 20), TimeInterval(15, 50),
                           LocationAuthorization{0, 2}, 2));
  EXPECT_EQ(auth.ToString(), "([5, 20], [15, 50], (s0, l2), 2)");

  UserProfileDatabase profiles;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, profiles.AddSubject("Alice"));
  (void)alice;
  MultilevelLocationGraph graph("NTU");
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph.AddComposite("SCE", graph.root()));
  (void)sce;
  ASSERT_OK_AND_ASSIGN(LocationId cais, graph.AddPrimitive("CAIS", "SCE"));
  (void)cais;
  EXPECT_EQ(auth.ToString(profiles, graph),
            "([5, 20], [15, 50], (Alice, CAIS), 2)");
}

TEST(AuthorizationTest, Equality) {
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization a,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(5, 20), TimeInterval(15, 50),
                           AliceCais(), 2));
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization b,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(5, 20), TimeInterval(15, 50),
                           AliceCais(), 2));
  EXPECT_EQ(a, b);
  ASSERT_OK_AND_ASSIGN(LocationTemporalAuthorization c,
                       LocationTemporalAuthorization::Make(
                           TimeInterval(5, 21), TimeInterval(15, 50),
                           AliceCais(), 2));
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace ltam
