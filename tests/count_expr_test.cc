// Copyright 2026 The LTAM Authors.

#include "core/rules/count_expr.h"

#include <gtest/gtest.h>

#include "core/authorization.h"
#include "test_util.h"

namespace ltam {
namespace {

int64_t Eval(const std::string& text, int64_t n) {
  Result<CountExpr> e = CountExpr::Parse(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return e->Eval(n);
}

TEST(CountExprTest, IdentityAndConstants) {
  EXPECT_EQ(Eval("n", 5), 5);
  EXPECT_EQ(Eval("2", 5), 2);
  EXPECT_EQ(Eval("inf", 5), kUnlimitedEntries);
  EXPECT_EQ(CountExpr::Identity().Eval(7), 7);
}

TEST(CountExprTest, Arithmetic) {
  EXPECT_EQ(Eval("n+1", 5), 6);
  EXPECT_EQ(Eval("n-2", 5), 3);
  EXPECT_EQ(Eval("2*n", 5), 10);
  EXPECT_EQ(Eval("n/2", 5), 2);
  EXPECT_EQ(Eval("(n+1)*2", 5), 12);
  EXPECT_EQ(Eval("n + 2 * 3", 1), 7);  // Precedence.
  EXPECT_EQ(Eval("10 - 2 - 3", 0), 5);  // Left associativity.
}

TEST(CountExprTest, MinMax) {
  EXPECT_EQ(Eval("min(n, 3)", 5), 3);
  EXPECT_EQ(Eval("min(n, 3)", 2), 2);
  EXPECT_EQ(Eval("max(n, 3)", 2), 3);
  EXPECT_EQ(Eval("max(n, 3)", 5), 5);
  EXPECT_EQ(Eval("min(max(n, 2), 4)", 1), 2);
}

TEST(CountExprTest, ClampsToAtLeastOne) {
  // Definition 4: entry count range is [1, inf).
  EXPECT_EQ(Eval("n-10", 5), 1);
  EXPECT_EQ(Eval("0", 5), 1);
  EXPECT_EQ(Eval("n/10", 5), 1);
}

TEST(CountExprTest, InfinityAbsorbs) {
  EXPECT_EQ(Eval("n+1", kUnlimitedEntries), kUnlimitedEntries);
  EXPECT_EQ(Eval("n*2", kUnlimitedEntries), kUnlimitedEntries);
  EXPECT_EQ(Eval("min(n, 3)", kUnlimitedEntries), 3);
  EXPECT_EQ(Eval("inf+1", 1), kUnlimitedEntries);
  // n - inf clamps to the minimum.
  EXPECT_EQ(Eval("n-inf", 5), 1);
}

TEST(CountExprTest, DivisionByZeroIsSafe) {
  EXPECT_EQ(Eval("n/0", 5), 5);  // Defined as pass-through, then clamped.
  EXPECT_EQ(Eval("n/(n-n)", 5), 5);
}

TEST(CountExprTest, OverflowSaturates) {
  EXPECT_EQ(Eval("9223372036854775806+9223372036854775806", 1),
            kUnlimitedEntries);
  EXPECT_EQ(Eval("9223372036854775806*2", 1), kUnlimitedEntries);
}

TEST(CountExprTest, ParseErrors) {
  EXPECT_TRUE(CountExpr::Parse("").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("n+").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("(n").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("m").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("min(n)").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("min(n,2").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("n n").status().IsParseError());
  EXPECT_TRUE(CountExpr::Parse("n @ 2").status().IsParseError());
}

TEST(CountExprTest, TextPreserved) {
  ASSERT_OK_AND_ASSIGN(CountExpr e, CountExpr::Parse("min(n, 3)"));
  EXPECT_EQ(e.text(), "min(n, 3)");
}

TEST(CountExprTest, CopySemantics) {
  ASSERT_OK_AND_ASSIGN(CountExpr e, CountExpr::Parse("n*2"));
  CountExpr copy = e;
  EXPECT_EQ(copy.Eval(4), 8);
  EXPECT_EQ(e.Eval(4), 8);
  CountExpr assigned = CountExpr::Identity();
  assigned = copy;
  EXPECT_EQ(assigned.Eval(4), 8);
  // Self-assignment safe.
  assigned = assigned;
  EXPECT_EQ(assigned.Eval(4), 8);
}

}  // namespace
}  // namespace ltam
