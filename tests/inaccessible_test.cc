// Copyright 2026 The LTAM Authors.
// Tests for Algorithm 1 on the paper's exact example: Figure 4's graph,
// Table 1's authorizations, Table 2's trace, and the final answer {C}.

#include "core/inaccessible.h"

#include <gtest/gtest.h>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

using testing_util::Fig4Fixture;

TEST(InaccessibleTest, Fig4FinalAnswerIsC) {
  Fig4Fixture f = Fig4Fixture::Make();
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db));
  EXPECT_EQ(r.inaccessible, std::vector<LocationId>{f.c});
  EXPECT_TRUE(r.IsInaccessible(f.c));
  EXPECT_FALSE(r.IsInaccessible(f.a));
  EXPECT_FALSE(r.IsInaccessible(f.b));
  EXPECT_FALSE(r.IsInaccessible(f.d));
}

TEST(InaccessibleTest, Fig4FinalDurationsMatchTable2) {
  Fig4Fixture f = Fig4Fixture::Make();
  InaccessibleOptions options;
  options.algorithm = InaccessibleAlgorithm::kWorklist;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options));
  ASSERT_EQ(r.final_states.size(), 4u);
  auto state_of = [&r](LocationId l) {
    for (const LocationTimeState& st : r.final_states) {
      if (st.location == l) return st;
    }
    ADD_FAILURE() << "no state for location " << l;
    return LocationTimeState{};
  };
  // Final row of Table 2.
  EXPECT_EQ(state_of(f.a).grant.ToString(), "{[2, 35]}");
  EXPECT_EQ(state_of(f.a).departure.ToString(), "{[20, 50]}");
  EXPECT_EQ(state_of(f.b).grant.ToString(), "{[40, 50]}");
  EXPECT_EQ(state_of(f.b).departure.ToString(), "{[55, 80]}");
  EXPECT_TRUE(state_of(f.c).grant.empty());
  EXPECT_TRUE(state_of(f.c).departure.empty());
  EXPECT_EQ(state_of(f.d).grant.ToString(), "{[20, 25]}");
  EXPECT_EQ(state_of(f.d).departure.ToString(), "{[20, 30]}");
}

TEST(InaccessibleTest, Fig4TraceReproducesTable2RowOrder) {
  Fig4Fixture f = Fig4Fixture::Make();
  InaccessibleOptions options;
  options.algorithm = InaccessibleAlgorithm::kWorklist;
  options.capture_trace = true;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options));
  // Table 2's rows: Initiation, Update A, Update B, Update D, Update C,
  // Update A.
  std::vector<std::string> labels;
  for (const TraceRow& row : r.trace) labels.push_back(row.label);
  EXPECT_EQ(labels,
            (std::vector<std::string>{"Initiation", "Update A", "Update B",
                                      "Update D", "Update C", "Update A"}));
}

TEST(InaccessibleTest, Fig4TraceIntermediateStatesMatchTable2) {
  Fig4Fixture f = Fig4Fixture::Make();
  InaccessibleOptions options;
  options.algorithm = InaccessibleAlgorithm::kWorklist;
  options.capture_trace = true;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options));
  ASSERT_EQ(r.trace.size(), 6u);
  auto cell = [&](size_t row, LocationId l) {
    for (const LocationTimeState& st : r.trace[row].states) {
      if (st.location == l) return st;
    }
    ADD_FAILURE() << "missing state";
    return LocationTimeState{};
  };
  // Initiation: everything null, flags false.
  for (LocationId l : {f.a, f.b, f.c, f.d}) {
    EXPECT_TRUE(cell(0, l).grant.empty());
    EXPECT_FALSE(cell(0, l).flag);
  }
  // Update A (entry seeding): A gets T^g=[2,35], T^d=[20,50]; B and D
  // flagged.
  EXPECT_EQ(cell(1, f.a).grant.ToString(), "{[2, 35]}");
  EXPECT_EQ(cell(1, f.a).departure.ToString(), "{[20, 50]}");
  EXPECT_FALSE(cell(1, f.a).flag);
  EXPECT_TRUE(cell(1, f.b).flag);
  EXPECT_TRUE(cell(1, f.d).flag);
  EXPECT_FALSE(cell(1, f.c).flag);
  // Update B: T^g_B = [max(20,40), min(50,60)] = [40,50]; T^d_B =
  // [max(20,55), 80] = [55,80]; A and C flagged.
  EXPECT_EQ(cell(2, f.b).grant.ToString(), "{[40, 50]}");
  EXPECT_EQ(cell(2, f.b).departure.ToString(), "{[55, 80]}");
  EXPECT_FALSE(cell(2, f.b).flag);
  EXPECT_TRUE(cell(2, f.c).flag);
  EXPECT_TRUE(cell(2, f.a).flag);
  // Update D: T^g_D = [20,25]; T^d_D = [20,30].
  EXPECT_EQ(cell(3, f.d).grant.ToString(), "{[20, 25]}");
  EXPECT_EQ(cell(3, f.d).departure.ToString(), "{[20, 30]}");
  // Update C: both stay null.
  EXPECT_TRUE(cell(4, f.c).grant.empty());
  EXPECT_TRUE(cell(4, f.c).departure.empty());
  EXPECT_FALSE(cell(4, f.c).flag);
  // Final Update A: unchanged unions.
  EXPECT_EQ(cell(5, f.a).grant.ToString(), "{[2, 35]}");
  EXPECT_EQ(cell(5, f.a).departure.ToString(), "{[20, 50]}");
  // Nothing remains flagged.
  for (LocationId l : {f.a, f.b, f.c, f.d}) {
    EXPECT_FALSE(cell(5, l).flag);
  }
}

TEST(InaccessibleTest, SweepAlgorithmSameAnswer) {
  Fig4Fixture f = Fig4Fixture::Make();
  InaccessibleOptions options;
  options.algorithm = InaccessibleAlgorithm::kSweep;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options));
  EXPECT_EQ(r.inaccessible, std::vector<LocationId>{f.c});
}

TEST(InaccessibleTest, TraceToStringRendersTable) {
  Fig4Fixture f = Fig4Fixture::Make();
  InaccessibleOptions options;
  options.capture_trace = true;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options));
  std::string table = r.TraceToString(f.graph);
  EXPECT_NE(table.find("Initiation"), std::string::npos);
  EXPECT_NE(table.find("Update B"), std::string::npos);
  EXPECT_NE(table.find("{[40, 50]}"), std::string::npos);
  EXPECT_NE(table.find("phi"), std::string::npos);
}

TEST(InaccessibleTest, NoAuthorizationsMeansEverythingInaccessible) {
  Fig4Fixture f = Fig4Fixture::Make();
  AuthorizationDatabase empty;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, empty));
  EXPECT_EQ(r.inaccessible, (std::vector<LocationId>{f.a, f.b, f.c, f.d}));
}

TEST(InaccessibleTest, EntryWithNullExitBlocksPropagation) {
  // Give Alice an entry-only authorization for A whose exit duration is
  // empty... Definition 4 forbids a truly empty exit window, so model it
  // as an exit window after the horizon never reached by neighbors: the
  // paper's situation is an entry with *no authorized exit*, i.e. no
  // authorization at all beyond A. Simplest faithful setup: authorization
  // for A only.
  Fig4Fixture f = Fig4Fixture::Make();
  AuthorizationDatabase db;
  db.Add(LocationTemporalAuthorization::Make(
             TimeInterval(2, 35), TimeInterval(20, 50),
             LocationAuthorization{f.alice, f.a}, 1)
             .ValueOrDie());
  ASSERT_OK_AND_ASSIGN(InaccessibleResult r,
                       FindInaccessible(f.graph, f.graph.root(), f.alice, db));
  // A is accessible (it has a grant window); B, C, D are not.
  EXPECT_EQ(r.inaccessible, (std::vector<LocationId>{f.b, f.c, f.d}));
}

TEST(InaccessibleTest, StrictEntryExitMode) {
  // Under the Section 6 textual remark, an entry location with no
  // authorization at all (null T^d) is itself inaccessible.
  Fig4Fixture f = Fig4Fixture::Make();
  AuthorizationDatabase db;  // No authorizations at all.
  InaccessibleOptions strict;
  strict.strict_entry_exit = true;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, db, strict));
  EXPECT_EQ(r.inaccessible, (std::vector<LocationId>{f.a, f.b, f.c, f.d}));
  // With the Table 1 authorizations, strict mode changes nothing (A has
  // an exit window).
  InaccessibleOptions strict2 = strict;
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r2,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, strict2));
  EXPECT_EQ(r2.inaccessible, std::vector<LocationId>{f.c});
}

TEST(InaccessibleTest, ScopeMustBeComposite) {
  Fig4Fixture f = Fig4Fixture::Make();
  EXPECT_TRUE(FindInaccessible(f.graph, f.a, f.alice, f.auth_db)
                  .status()
                  .IsInvalidArgument());
}

TEST(InaccessibleTest, WidenedAuthorizationUnblocksC) {
  // Give C an entry window reachable from D's departure window [20,30]:
  // C becomes accessible.
  Fig4Fixture f = Fig4Fixture::Make();
  f.auth_db.Add(LocationTemporalAuthorization::Make(
                    TimeInterval(25, 45), TimeInterval(25, 90),
                    LocationAuthorization{f.alice, f.c}, 1)
                    .ValueOrDie());
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db));
  EXPECT_TRUE(r.inaccessible.empty());
}

TEST(InaccessibleTest, MultilevelCampusAnalysis) {
  // Alice can only enter SCE through SCE.GO and reach CAIS; the rest of
  // the campus is inaccessible.
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeNtuCampusGraph());
  UserProfileDatabase profiles;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, profiles.AddSubject("Alice"));
  AuthorizationDatabase db;
  auto grant = [&](const std::string& name) {
    db.Add(LocationTemporalAuthorization::Make(
               TimeInterval(0, 100), TimeInterval(0, 200),
               LocationAuthorization{alice, g.Find(name).ValueOrDie()},
               kUnlimitedEntries)
               .ValueOrDie());
  };
  grant("SCE.GO");
  grant("SCE.SectionA");
  grant("SCE.SectionB");
  grant("CAIS");
  ASSERT_OK_AND_ASSIGN(InaccessibleResult r,
                       FindInaccessible(g, g.root(), alice, db));
  // Accessible: exactly the four granted rooms.
  std::vector<LocationId> accessible;
  for (LocationId l : r.analyzed) {
    if (!r.IsInaccessible(l)) accessible.push_back(l);
  }
  std::vector<std::string> names = testing_util::Names(g, accessible);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"CAIS", "SCE.GO", "SCE.SectionA",
                                             "SCE.SectionB"}));
}

TEST(InaccessibleTest, HierarchicalPruneIsSubsetOfGlobal) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeNtuCampusGraph());
  UserProfileDatabase profiles;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, profiles.AddSubject("Alice"));
  AuthorizationDatabase db;
  auto grant = [&](const std::string& name) {
    db.Add(LocationTemporalAuthorization::Make(
               TimeInterval(0, 100), TimeInterval(0, 200),
               LocationAuthorization{alice, g.Find(name).ValueOrDie()},
               kUnlimitedEntries)
               .ValueOrDie());
  };
  grant("SCE.GO");
  grant("SCE.SectionA");
  grant("EEE.GO");
  ASSERT_OK_AND_ASSIGN(InaccessibleResult global,
                       FindInaccessible(g, g.root(), alice, db));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> pruned,
                       HierarchicalInaccessiblePrune(g, alice, db));
  for (LocationId l : pruned) {
    EXPECT_TRUE(global.IsInaccessible(l))
        << g.location(l).name << " pruned but globally accessible";
  }
}

}  // namespace
}  // namespace ltam
