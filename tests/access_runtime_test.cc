// Copyright 2026 The LTAM Authors.
// The AccessRuntime facade: the same event stream through every
// RuntimeOptions configuration (1/N shards x in-memory/durable) must
// yield byte-identical decisions, equal alert sets, and equal query
// answers through the MovementView — plus the facade-only contracts:
// the enforced mutation window, BatchResult draining, shard-count
// override reporting, and position-fix routing.

#include "runtime/access_runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "query/query_language.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

namespace fs = std::filesystem;

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

World MakeWorld(uint64_t seed, uint32_t subject_count = 24) {
  World w;
  w.graph = MakeGridGraph(5, 5).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, subject_count);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.6;
  opt.horizon = 400;
  opt.min_len = 20;
  opt.max_len = 120;
  opt.max_entries = 3;  // Exercise the ledger/exhaustion path.
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

SystemState StateOf(const World& w) {
  SystemState state;
  state.graph = w.graph;
  state.profiles = w.profiles;
  state.auth_db = w.auth_db;
  return state;
}

std::vector<std::vector<AccessEvent>> MakeBatches(const World& w,
                                                  size_t total_events,
                                                  uint64_t seed) {
  Rng rng(seed);
  BatchWorkloadOptions opt;
  opt.batch_size = 96;
  opt.exit_fraction = 0.15;
  opt.observe_fraction = 0.15;
  return GenerateEventBatches(w.graph, w.subjects, total_events, opt, &rng);
}

std::string DecisionString(const Decision& d) { return d.ToString(); }

using AlertKey = std::tuple<Chronon, SubjectId, LocationId, int, std::string>;

std::multiset<AlertKey> AlertMultiset(const std::vector<Alert>& alerts) {
  std::multiset<AlertKey> out;
  for (const Alert& a : alerts) {
    out.insert(std::make_tuple(a.time, a.subject, a.location,
                               static_cast<int>(a.type), a.detail));
  }
  return out;
}

using StayKey = std::tuple<SubjectId, LocationId, Chronon, Chronon>;

std::vector<StayKey> StayKeys(const std::vector<Stay>& stays) {
  std::vector<StayKey> out;
  out.reserve(stays.size());
  for (const Stay& s : stays) {
    out.push_back(
        std::make_tuple(s.subject, s.location, s.enter_time, s.exit_time));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Everything one configuration produced, in comparable form.
struct RunOutcome {
  std::vector<std::string> decisions;
  std::multiset<AlertKey> alerts;
  /// Query answers through the MovementView, keyed by a description.
  std::map<std::string, std::string> queries;
  size_t granted = 0;
};

RunOutcome RunConfig(const World& w,
                     const std::vector<std::vector<AccessEvent>>& batches,
                     RuntimeOptions options) {
  RunOutcome out;
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(StateOf(w), options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return out;
  std::unique_ptr<AccessRuntime> rt = std::move(opened).ValueOrDie();

  for (const auto& batch : batches) {
    Result<BatchResult> r = rt->ApplyBatch(batch);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    EXPECT_OK(r->durability);
    for (const Decision& d : r->decisions) {
      out.decisions.push_back(DecisionString(d));
    }
    for (const Alert& a : r->alerts) {
      out.alerts.insert(std::make_tuple(a.time, a.subject, a.location,
                                        static_cast<int>(a.type), a.detail));
    }
  }
  EXPECT_OK(rt->Tick(500));
  for (const Alert& a : rt->DrainAlerts()) {
    out.alerts.insert(std::make_tuple(a.time, a.subject, a.location,
                                      static_cast<int>(a.type), a.detail));
  }
  out.granted = rt->Stats().requests_granted;

  // Query the movement view: per-subject facts and location scans.
  const MovementView& view = rt->movements();
  for (SubjectId s : w.subjects) {
    out.queries["cur/" + std::to_string(s)] =
        std::to_string(view.CurrentLocation(s));
    for (Chronon t : {50, 150, 250, 350}) {
      out.queries["at/" + std::to_string(s) + "/" + std::to_string(t)] =
          std::to_string(view.LocationAt(s, t));
    }
    std::string stays;
    for (const StayKey& key : StayKeys(view.StaysOf(s))) {
      stays += std::to_string(std::get<1>(key)) + ":" +
               std::to_string(std::get<2>(key)) + "-" +
               std::to_string(std::get<3>(key)) + ";";
    }
    out.queries["stays/" + std::to_string(s)] = stays;
    std::string contacts;
    for (const MovementDatabase::Contact& c :
         view.ContactsOf(s, TimeInterval(0, 400), 1)) {
      contacts += std::to_string(c.other) + "@" + std::to_string(c.location) +
                  ":" + std::to_string(c.overlap_start) + "-" +
                  std::to_string(c.overlap_end) + ";";
    }
    out.queries["contacts/" + std::to_string(s)] = contacts;
  }
  for (LocationId l : w.graph.Primitives()) {
    for (Chronon t : {100, 300}) {
      std::string occ;
      for (SubjectId s : view.OccupantsAt(l, t)) {
        occ += std::to_string(s) + ",";
      }
      out.queries["occ/" + std::to_string(l) + "/" + std::to_string(t)] = occ;
    }
    std::string stays;
    for (const StayKey& key : StayKeys(view.StaysIn(l))) {
      stays += std::to_string(std::get<0>(key)) + ":" +
               std::to_string(std::get<2>(key)) + "-" +
               std::to_string(std::get<3>(key)) + ";";
    }
    out.queries["staysin/" + std::to_string(l)] = stays;
  }
  out.queries["tracked"] = std::to_string(view.tracked_subjects());
  out.queries["history"] = std::to_string(view.history_size());

  // And through the built-in query engine (which consumes the view).
  for (SubjectId s : w.subjects) {
    out.queries["qe-where/" + std::to_string(s)] =
        std::to_string(rt->query().WhereWas(s, 200));
  }
  return out;
}

class AccessRuntimeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/ltam_facade_" +
            std::to_string(GetParam());
    fs::remove_all(root_);
    fs::create_directories(root_ + "/seq");
    fs::create_directories(root_ + "/sharded");
    fs::create_directories(root_ + "/seq-pipelined");
    fs::create_directories(root_ + "/sharded-pipelined");
    fs::create_directories(root_ + "/sharded-interval");
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_P(AccessRuntimeEquivalenceTest, AllFourBackendsAgree) {
  const uint64_t seed = GetParam();
  World w = MakeWorld(seed);
  std::vector<std::vector<AccessEvent>> batches =
      MakeBatches(w, /*total_events=*/1500, seed + 7);

  RuntimeOptions sequential;  // 1 shard, in-memory.
  RuntimeOptions sharded;
  sharded.num_shards = 3;
  RuntimeOptions durable_seq;
  durable_seq.durable_dir = root_ + "/seq";
  RuntimeOptions durable_sharded;
  durable_sharded.num_shards = 3;
  durable_sharded.durable_dir = root_ + "/sharded";
  // The pipelined/interval write paths must be invisible to decisions,
  // alerts, and queries — durability timing is their only difference.
  RuntimeOptions durable_seq_pipelined = durable_seq;
  durable_seq_pipelined.durable_dir = root_ + "/seq-pipelined";
  durable_seq_pipelined.durability.mode = SyncMode::kPipelined;
  RuntimeOptions durable_sharded_pipelined = durable_sharded;
  durable_sharded_pipelined.durable_dir = root_ + "/sharded-pipelined";
  durable_sharded_pipelined.durability.mode = SyncMode::kPipelined;
  durable_sharded_pipelined.durability.segment_max_bytes = 4096;  // Rotate.
  RuntimeOptions durable_sharded_interval = durable_sharded;
  durable_sharded_interval.durable_dir = root_ + "/sharded-interval";
  durable_sharded_interval.durability.mode = SyncMode::kInterval;
  durable_sharded_interval.durability.sync_interval_ms = 1;

  RunOutcome reference = RunConfig(w, batches, sequential);
  ASSERT_FALSE(reference.decisions.empty());
  struct Config {
    const char* name;
    RuntimeOptions options;
  };
  const Config configs[] = {
      {"sharded", sharded},
      {"durable-seq", durable_seq},
      {"durable-sharded", durable_sharded},
      {"durable-seq-pipelined", durable_seq_pipelined},
      {"durable-sharded-pipelined", durable_sharded_pipelined},
      {"durable-sharded-interval", durable_sharded_interval}};
  for (const Config& config : configs) {
    SCOPED_TRACE(config.name);
    RunOutcome outcome = RunConfig(w, batches, config.options);
    ASSERT_EQ(reference.decisions.size(), outcome.decisions.size());
    for (size_t i = 0; i < reference.decisions.size(); ++i) {
      ASSERT_EQ(reference.decisions[i], outcome.decisions[i])
          << "decision " << i << " diverged";
    }
    EXPECT_EQ(reference.granted, outcome.granted);
    EXPECT_TRUE(reference.alerts == outcome.alerts)
        << "alert sets diverged (" << reference.alerts.size() << " vs "
        << outcome.alerts.size() << ")";
    ASSERT_EQ(reference.queries.size(), outcome.queries.size());
    for (const auto& [key, value] : reference.queries) {
      auto it = outcome.queries.find(key);
      ASSERT_TRUE(it != outcome.queries.end()) << key;
      EXPECT_EQ(value, it->second) << "query '" << key << "' diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessRuntimeEquivalenceTest,
                         ::testing::Values(1ull, 2026ull, 424242ull));

TEST(AccessRuntimeTest, EngineOptionsReachEveryBackend) {
  // Non-default engine knobs must reach all four backends (the durable
  // sequential one historically dropped them) — and must actually
  // change behavior relative to the defaults.
  World w = MakeWorld(61);
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 800, 67);
  std::string root = ::testing::TempDir() + "/ltam_facade_engopts";
  fs::remove_all(root);
  fs::create_directories(root + "/seq");
  fs::create_directories(root + "/sharded");

  EngineOptions open_doors;
  open_doors.enforce_adjacency = false;
  open_doors.alert_on_denial = false;

  RuntimeOptions sequential;
  sequential.engine = open_doors;
  RuntimeOptions sharded = sequential;
  sharded.num_shards = 3;
  RuntimeOptions durable_seq = sequential;
  durable_seq.durable_dir = root + "/seq";
  RuntimeOptions durable_sharded = sharded;
  durable_sharded.durable_dir = root + "/sharded";

  RunOutcome reference = RunConfig(w, batches, sequential);
  for (const RuntimeOptions& options :
       {sharded, durable_seq, durable_sharded}) {
    RunOutcome outcome = RunConfig(w, batches, options);
    ASSERT_EQ(reference.decisions, outcome.decisions);
  }
  // Sanity: the knobs changed something vs the defaults.
  RunOutcome defaults = RunConfig(w, batches, RuntimeOptions{});
  EXPECT_NE(defaults.decisions, reference.decisions);
  fs::remove_all(root);
}

TEST(AccessRuntimeTest, PerEventApplyMatchesBatch) {
  World w = MakeWorld(11);
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 400, 13);

  for (uint32_t shards : {1u, 3u}) {
    SCOPED_TRACE(shards);
    RuntimeOptions options;
    options.num_shards = shards;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> batched,
                         AccessRuntime::Open(StateOf(w), options));
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> per_event,
                         AccessRuntime::Open(StateOf(w), options));
    for (const auto& batch : batches) {
      ASSERT_OK_AND_ASSIGN(BatchResult br, batched->ApplyBatch(batch));
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_OK_AND_ASSIGN(Decision d, per_event->Apply(batch[i]));
        EXPECT_EQ(br.decisions[i].ToString(), d.ToString());
      }
      EXPECT_TRUE(AlertMultiset(br.alerts) ==
                  AlertMultiset(per_event->DrainAlerts()));
    }
    EXPECT_EQ(batched->Stats().events_applied,
              per_event->Stats().events_applied);
  }
}

TEST(AccessRuntimeTest, ObservationRefusalsSurfaceUniformly) {
  World w = MakeWorld(17, /*subject_count=*/4);
  const LocationId bogus = 9999;
  for (uint32_t shards : {1u, 3u}) {
    SCOPED_TRACE(shards);
    RuntimeOptions options;
    options.num_shards = shards;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    ASSERT_OK_AND_ASSIGN(
        Decision d, rt->Apply(AccessEvent::Observe(10, w.subjects[0], bogus)));
    EXPECT_FALSE(d.granted);
    EXPECT_EQ(DenyReason::kObservationRejected, d.reason);
    // The refusal also raised the impossible-movement alert.
    std::vector<Alert> alerts = rt->DrainAlerts();
    ASSERT_EQ(1u, alerts.size());
    EXPECT_EQ(AlertType::kImpossibleMovement, alerts[0].type);
  }
}

TEST(AccessRuntimeTest, MutationWindowIsEnforced) {
  World w = MakeWorld(23, /*subject_count=*/4);
  RuntimeOptions options;
  options.num_shards = 2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));

  // Applying events from inside the mutation window must fail.
  Status inside = rt->Mutate([&](const MutableStores& stores) {
    Result<Decision> refused =
        rt->Apply(AccessEvent::Entry(5, w.subjects[0], 1));
    EXPECT_FALSE(refused.ok());
    EXPECT_TRUE(refused.status().IsFailedPrecondition());
    Result<BatchResult> batch_refused = rt->ApplyBatch(
        std::vector<AccessEvent>{AccessEvent::Entry(5, w.subjects[0], 1)});
    EXPECT_FALSE(batch_refused.ok());
    Status reentrant = rt->Mutate(
        [](const MutableStores&) { return Status::OK(); });
    EXPECT_TRUE(reentrant.IsFailedPrecondition());
    (void)stores;
    return Status::OK();
  });
  ASSERT_OK(inside);

  // A real mutation takes effect: grant a fresh subject a blanket
  // authorization and watch the decision flip.
  SubjectId newcomer = kInvalidSubject;
  LocationId door = rt->graph().EntryPrimitives(rt->graph().root())[0];
  ASSERT_OK(rt->Mutate([&](const MutableStores& stores) {
    LTAM_ASSIGN_OR_RETURN(newcomer, stores.profiles.AddSubject("newcomer"));
    LTAM_ASSIGN_OR_RETURN(
        LocationTemporalAuthorization auth,
        LocationTemporalAuthorization::Make(
            TimeInterval(0, 100), TimeInterval(0, 200),
            LocationAuthorization{newcomer, door}, kUnlimitedEntries));
    stores.auth_db.Add(auth);
    return Status::OK();
  }));
  ASSERT_OK_AND_ASSIGN(Decision granted,
                       rt->Apply(AccessEvent::Entry(10, newcomer, door)));
  EXPECT_TRUE(granted.granted);
}

class AccessRuntimeDurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ltam_facade_durable";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(AccessRuntimeDurableTest, ShardCountOverrideIsReported) {
  World w = MakeWorld(31, /*subject_count=*/8);
  {
    RuntimeOptions options;
    options.num_shards = 3;
    options.durable_dir = dir_;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    RuntimeStats stats = rt->Stats();
    EXPECT_EQ(3u, stats.num_shards);
    EXPECT_EQ(3u, stats.requested_shards);
    EXPECT_FALSE(stats.shard_count_overridden);
    EXPECT_TRUE(stats.durable);
  }
  // Reopen asking for a different count: the directory's pinned
  // partition wins and the override is visible, not guessed.
  {
    RuntimeOptions options;
    options.num_shards = 5;
    options.durable_dir = dir_;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(SystemState(), options));
    RuntimeStats stats = rt->Stats();
    EXPECT_EQ(3u, stats.num_shards);
    EXPECT_EQ(5u, stats.requested_shards);
    EXPECT_TRUE(stats.shard_count_overridden);
  }
  // Even requesting a sequential runtime over a sharded directory must
  // route to the sharded backend (never shadow the committed state).
  {
    RuntimeOptions options;
    options.num_shards = 1;
    options.durable_dir = dir_;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(SystemState(), options));
    RuntimeStats stats = rt->Stats();
    EXPECT_EQ(3u, stats.num_shards);
    EXPECT_TRUE(stats.shard_count_overridden);
  }
}

TEST_F(AccessRuntimeDurableTest, SequentialDirectoryWinsOverShardRequest) {
  World w = MakeWorld(37, /*subject_count=*/6);
  LocationId door = w.graph.EntryPrimitives(w.graph.root())[0];
  w.auth_db.Add(LocationTemporalAuthorization::Make(
                    TimeInterval(0, 100), TimeInterval(0, 200),
                    LocationAuthorization{w.subjects[0], door},
                    kUnlimitedEntries)
                    .ValueOrDie());
  {
    RuntimeOptions options;  // Sequential durable.
    options.durable_dir = dir_;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    ASSERT_OK_AND_ASSIGN(Decision d,
                         rt->Apply(AccessEvent::Entry(5, w.subjects[0], door)));
    ASSERT_TRUE(d.granted) << d.ToString();
  }
  RuntimeOptions options;
  options.num_shards = 4;
  options.durable_dir = dir_;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(SystemState(), options));
  RuntimeStats stats = rt->Stats();
  EXPECT_EQ(1u, stats.num_shards);
  EXPECT_EQ(4u, stats.requested_shards);
  EXPECT_TRUE(stats.shard_count_overridden);
  // The logged entry survived into the reopened runtime.
  EXPECT_EQ(door, rt->movements().CurrentLocation(w.subjects[0]));
}

TEST_F(AccessRuntimeDurableTest, MutationsSurviveReopenWithoutExplicitCheckpoint) {
  // Mutations are not write-ahead logged; the facade checkpoints after
  // Mutate (checkpoint_after_mutate default) so a crash right after
  // still recovers the mutated stores — and replays post-mutation
  // events against them.
  World w = MakeWorld(71, /*subject_count=*/8);
  RuntimeOptions options;
  options.num_shards = 3;
  options.durable_dir = dir_;
  SubjectId newcomer = kInvalidSubject;
  LocationId door = kInvalidLocation;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    door = rt->graph().EntryPrimitives(rt->graph().root())[0];
    ASSERT_OK(rt->Mutate([&](const MutableStores& stores) {
      LTAM_ASSIGN_OR_RETURN(newcomer, stores.profiles.AddSubject("late-hire"));
      LTAM_ASSIGN_OR_RETURN(
          LocationTemporalAuthorization auth,
          LocationTemporalAuthorization::Make(
              TimeInterval(0, 100), TimeInterval(0, 200),
              LocationAuthorization{newcomer, door}, kUnlimitedEntries));
      stores.auth_db.Add(auth);
      return Status::OK();
    }));
    ASSERT_OK_AND_ASSIGN(Decision d,
                         rt->Apply(AccessEvent::Entry(10, newcomer, door)));
    ASSERT_TRUE(d.granted) << d.ToString();
    // No explicit Checkpoint(): drop the runtime as a crash stand-in.
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(SystemState(), options));
  EXPECT_TRUE(rt->profiles().Exists(newcomer));
  EXPECT_EQ(door, rt->movements().CurrentLocation(newcomer));
}

TEST_F(AccessRuntimeDurableTest, StateSurvivesReopenAndCheckpoint) {
  World w = MakeWorld(41);
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 600, 43);
  RuntimeOptions options;
  options.num_shards = 3;
  options.durable_dir = dir_;

  std::map<SubjectId, LocationId> live;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    size_t i = 0;
    for (const auto& batch : batches) {
      ASSERT_OK_AND_ASSIGN(BatchResult r, rt->ApplyBatch(batch));
      EXPECT_OK(r.durability);
      if (++i == batches.size() / 2) ASSERT_OK(rt->Checkpoint());
    }
    EXPECT_GE(rt->Stats().epoch, 1u);
    for (SubjectId s : w.subjects) {
      live[s] = rt->movements().CurrentLocation(s);
    }
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(SystemState(), options));
  for (SubjectId s : w.subjects) {
    EXPECT_EQ(live[s], rt->movements().CurrentLocation(s)) << "subject " << s;
  }
}

TEST(AccessRuntimeTest, ApplyFixRoutesThroughBoundaries) {
  // Two rooms with boundaries; fixes inside record observations, a fix
  // outside closes the open stay — HandlePositionFix semantics through
  // the uniform (and, durable, logged) event path.
  SystemState state;
  state.graph = MultilevelLocationGraph("Site");
  LocationId a =
      state.graph.AddPrimitive("A", state.graph.root()).ValueOrDie();
  LocationId b =
      state.graph.AddPrimitive("B", state.graph.root()).ValueOrDie();
  ASSERT_OK(state.graph.AddEdge(a, b));
  ASSERT_OK(state.graph.SetEntry(a));
  ASSERT_OK(state.graph.SetBoundary(a, Polygon::Rect(0, 0, 10, 10)));
  ASSERT_OK(state.graph.SetBoundary(b, Polygon::Rect(10, 0, 20, 10)));
  ASSERT_OK(state.graph.Validate());
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  for (LocationId l : {a, b}) {
    state.auth_db.Add(LocationTemporalAuthorization::Make(
                          TimeInterval(0, 100), TimeInterval(0, 200),
                          LocationAuthorization{alice, l}, kUnlimitedEntries)
                          .ValueOrDie());
  }

  for (uint32_t shards : {1u, 2u}) {
    SCOPED_TRACE(shards);
    RuntimeOptions options;
    options.num_shards = shards;
    SystemState copy = state;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(std::move(copy), options));
    ASSERT_OK(rt->ApplyFix({5, alice, {3, 3}}));    // Inside A.
    EXPECT_EQ(a, rt->movements().CurrentLocation(alice));
    ASSERT_OK(rt->ApplyFix({10, alice, {15, 5}}));  // Inside B.
    EXPECT_EQ(b, rt->movements().CurrentLocation(alice));
    ASSERT_OK(rt->ApplyFix({20, alice, {50, 50}}));  // Outside: exit.
    EXPECT_EQ(kInvalidLocation, rt->movements().CurrentLocation(alice));
    // Outside while already outside: a clean no-op.
    ASSERT_OK(rt->ApplyFix({25, alice, {60, 60}}));
  }
}

TEST(AccessRuntimeTest, StatsCountersTrack) {
  World w = MakeWorld(53, /*subject_count=*/6);
  RuntimeOptions options;
  options.num_shards = 2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 200, 59);
  size_t events = 0;
  for (const auto& batch : batches) {
    ASSERT_OK_AND_ASSIGN(BatchResult r, rt->ApplyBatch(batch));
    events += batch.size();
  }
  RuntimeStats stats = rt->Stats();
  EXPECT_EQ(batches.size(), stats.batches_applied);
  EXPECT_EQ(events, stats.events_applied);
  EXPECT_EQ(2u, stats.num_shards);
  EXPECT_FALSE(stats.durable);
  EXPECT_EQ(0u, stats.pending_alerts);  // ApplyBatch drains.
}

TEST(AccessRuntimeTest, InMemoryWatermarkEqualsApplied) {
  World w = MakeWorld(71);
  for (uint32_t shards : {1u, 3u}) {
    SCOPED_TRACE(shards);
    RuntimeOptions options;
    options.num_shards = shards;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 200, 73);
    size_t events = 0;
    for (const auto& batch : batches) {
      ASSERT_OK_AND_ASSIGN(BatchResult r, rt->ApplyBatch(batch));
      events += batch.size();
      EXPECT_EQ(r.watermark.applied, r.watermark.durable)
          << "in-memory backends are always 'durable'";
      EXPECT_EQ(r.watermark.applied, events);
    }
    ASSERT_OK(rt->WaitDurable());
    RuntimeStats stats = rt->Stats();
    EXPECT_EQ(stats.applied_offset, events);
    EXPECT_EQ(stats.durable_offset, events);
    EXPECT_EQ(stats.wal_append_failures, 0u);
    EXPECT_EQ(stats.wal_sync_failures, 0u);
  }
}

TEST(AccessRuntimeTest, PipelinedWatermarkAndWaitDurable) {
  // Both durable backends under every sync mode: the watermark must
  // cover every accepted record after WaitDurable, and the batch-mode
  // configuration must report durable == applied on every batch.
  World w = MakeWorld(79);
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 400, 83);
  struct Case {
    const char* name;
    uint32_t shards;
    SyncMode mode;
  };
  const Case cases[] = {{"seq-batch", 1, SyncMode::kBatch},
                        {"seq-pipelined", 1, SyncMode::kPipelined},
                        {"seq-interval", 1, SyncMode::kInterval},
                        {"sharded-batch", 3, SyncMode::kBatch},
                        {"sharded-pipelined", 3, SyncMode::kPipelined},
                        {"sharded-interval", 3, SyncMode::kInterval}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string dir =
        ::testing::TempDir() + "/ltam_facade_wm_" + c.name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    RuntimeOptions options;
    options.num_shards = c.shards;
    options.durable_dir = dir;
    options.durability.mode = c.mode;
    options.durability.sync_interval_ms = 1;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    for (const auto& batch : batches) {
      ASSERT_OK_AND_ASSIGN(BatchResult r, rt->ApplyBatch(batch));
      ASSERT_OK(r.durability);
      EXPECT_LE(r.watermark.durable, r.watermark.applied);
      if (c.mode == SyncMode::kBatch) {
        EXPECT_EQ(r.watermark.durable, r.watermark.applied)
            << "sync-every-batch must never trail";
      }
    }
    ASSERT_OK(rt->WaitDurable());
    RuntimeStats stats = rt->Stats();
    EXPECT_EQ(stats.durable_offset, stats.applied_offset)
        << "WaitDurable must close the gap";
    EXPECT_GT(stats.applied_offset, 0u);
    EXPECT_EQ(stats.wal_append_failures, 0u);
    EXPECT_EQ(stats.wal_sync_failures, 0u);
    rt.reset();
    fs::remove_all(dir);
  }
}

/// Polls the durability watermark until durable == applied or the
/// deadline passes. The point: NO further traffic and NO WaitDurable —
/// only the backend's own timer may close the gap.
bool WatermarkConvergesUnprompted(AccessRuntime* rt,
                                  std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    RuntimeStats stats = rt->Stats();
    if (stats.durable_offset == stats.applied_offset) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  RuntimeStats stats = rt->Stats();
  return stats.durable_offset == stats.applied_offset;
}

TEST(AccessRuntimeTest, IntervalSyncDeadlineHoldsWithoutTraffic) {
  // The interval-mode bugfix on the sequential durable backend: the
  // sync deadline used to be checked only on the next Apply/Tick, so a
  // runtime that went quiet kept unsynced records (and a stale
  // watermark) indefinitely. The backend now runs a timer thread, so
  // durable must catch up to applied within ~sync_interval_ms of the
  // last batch even when nothing else happens. Pipelined mode on the
  // same backend gets the identical idle-convergence guarantee.
  World w = MakeWorld(997);
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 60, 991);
  for (SyncMode mode : {SyncMode::kInterval, SyncMode::kPipelined}) {
    SCOPED_TRACE(mode == SyncMode::kInterval ? "interval" : "pipelined");
    const std::string dir = ::testing::TempDir() + "/ltam_timer_sync";
    fs::remove_all(dir);
    fs::create_directories(dir);
    RuntimeOptions options;
    options.num_shards = 1;  // The sequential backend is the fixed one.
    options.durable_dir = dir;
    options.durability.mode = mode;
    options.durability.sync_interval_ms = 5;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                         AccessRuntime::Open(StateOf(w), options));
    for (const auto& batch : batches) {
      ASSERT_OK(rt->ApplyBatch(batch).status());
    }
    EXPECT_TRUE(
        WatermarkConvergesUnprompted(rt.get(), std::chrono::seconds(5)))
        << "the timer thread never synced the tail";
    rt.reset();
    fs::remove_all(dir);
  }
}

TEST(AccessRuntimeTest, IntervalTimerRetriesThroughInjectedSyncFailures) {
  // Fault injection through the timer path: the first few fsyncs fail,
  // the failures are counted in wal_sync_failures, and a later timer
  // tick (not a manual WaitDurable) still converges the watermark.
  World w = MakeWorld(1013);
  std::vector<std::vector<AccessEvent>> batches = MakeBatches(w, 40, 1019);
  const std::string dir = ::testing::TempDir() + "/ltam_timer_faults";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RuntimeOptions options;
  options.num_shards = 1;
  options.durable_dir = dir;
  options.durability.mode = SyncMode::kInterval;
  options.durability.sync_interval_ms = 5;
  options.durability.fault_injector = [](const char* op, uint64_t count) {
    if (std::string(op) == "sync" && count <= 3) {
      return Status::IOError("injected sync failure");
    }
    return Status::OK();
  };
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> rt,
                       AccessRuntime::Open(StateOf(w), options));
  for (const auto& batch : batches) {
    ASSERT_OK(rt->ApplyBatch(batch).status());
  }
  EXPECT_TRUE(
      WatermarkConvergesUnprompted(rt.get(), std::chrono::seconds(5)))
      << "the timer must retry past the injected failures";
  RuntimeStats stats = rt->Stats();
  EXPECT_GE(stats.wal_sync_failures, 3u)
      << "every injected failure is visible in the stats";
  EXPECT_EQ(stats.wal_append_failures, 0u);
  rt.reset();
  fs::remove_all(dir);
}

// --- Scenario-family equivalence ---------------------------------------------
// Each load-harness scenario family (sim/workload.h), replayed in its
// canonical frame order with its mutations applied at the recorded
// frame boundaries, must produce a byte-identical decision stream and
// equal alerts across the in-memory/durable x sequential/sharded
// backend matrix — the property that lets the open-loop load generator
// treat any backend as "the" server for a given scenario.

struct ScenarioOutcome {
  std::vector<std::string> decisions;
  std::multiset<AlertKey> alerts;
  /// Pool query answers (contact sweep), keyed by the statement.
  std::map<std::string, std::string> query_answers;
  size_t granted = 0;
};

ScenarioOutcome ReplayScenario(const LoadScenario& scenario,
                               RuntimeOptions options) {
  options.engine = scenario.engine;
  ScenarioOutcome out;
  SystemState initial = scenario.initial;
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(initial), options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return out;
  std::unique_ptr<AccessRuntime> rt = std::move(opened).ValueOrDie();

  const std::vector<std::vector<AccessEvent>> frames =
      FlattenScenarioFrames(scenario);
  size_t next_mutation = 0;
  for (size_t f = 0; f < frames.size(); ++f) {
    while (next_mutation < scenario.mutations.size() &&
           scenario.mutations[next_mutation].before_frame == f) {
      Status mutated =
          ApplyScenarioMutation(rt.get(), scenario.mutations[next_mutation]);
      EXPECT_OK(mutated);
      ++next_mutation;
    }
    Result<BatchResult> r = rt->ApplyBatch(frames[f]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    EXPECT_OK(r->durability);
    for (const Decision& d : r->decisions) {
      out.decisions.push_back(d.ToString());
    }
    for (const Alert& a : r->alerts) {
      out.alerts.insert(std::make_tuple(a.time, a.subject, a.location,
                                        static_cast<int>(a.type), a.detail));
    }
  }
  EXPECT_EQ(next_mutation, scenario.mutations.size())
      << "every mutation must land before some frame that exists";
  for (const Alert& a : rt->DrainAlerts()) {
    out.alerts.insert(std::make_tuple(a.time, a.subject, a.location,
                                      static_cast<int>(a.type), a.detail));
  }
  out.granted = rt->Stats().requests_granted;

  // The family's read mix must parse and answer identically too (the
  // contact sweep's pool; empty for the other families).
  QueryInterpreter interp(&rt->query(), &rt->graph(), &rt->profiles(),
                          &rt->movements(), &rt->auth_db());
  const size_t pool_sample = std::min<size_t>(8, scenario.queries.size());
  for (size_t i = 0; i < pool_sample; ++i) {
    Result<QueryResult> answer = interp.Run(scenario.queries[i]);
    EXPECT_TRUE(answer.ok()) << scenario.queries[i] << ": "
                             << answer.status().ToString();
    out.query_answers[scenario.queries[i]] =
        answer.ok() ? answer->ToString() : answer.status().ToString();
  }
  return out;
}

class ScenarioFamilyEquivalenceTest
    : public ::testing::TestWithParam<ScenarioFamily> {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/ltam_scenario_" +
            std::string(ScenarioFamilyToString(GetParam()));
    fs::remove_all(root_);
    fs::create_directories(root_ + "/seq");
    fs::create_directories(root_ + "/sharded");
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_P(ScenarioFamilyEquivalenceTest, BackendMatrixAgrees) {
  ScenarioOptions so;
  so.subjects = 36;
  so.streams = 3;
  so.total_events = 900;
  so.events_per_frame = 24;
  so.mutate_every_frames = 4;
  ASSERT_OK_AND_ASSIGN(LoadScenario scenario,
                       GenerateLoadScenario(GetParam(), so));
  ASSERT_EQ(scenario.total_events, so.total_events);
  if (GetParam() == ScenarioFamily::kPolicyChurn) {
    ASSERT_GT(scenario.mutations.size(), 0u);
  }
  if (GetParam() == ScenarioFamily::kContactSweep ||
      GetParam() == ScenarioFamily::kReplication) {
    ASSERT_GT(scenario.queries.size(), 0u);
  }
  if (GetParam() == ScenarioFamily::kReplication) {
    // Read-heavy by construction, and never mutating: only WAL-logged
    // events replicate, so the family must not carry a mutation
    // schedule.
    EXPECT_GT(scenario.query_fraction, 0.25);
    EXPECT_TRUE(scenario.mutations.empty());
  }

  RuntimeOptions sequential;  // 1 shard, in-memory.
  RuntimeOptions sharded;
  sharded.num_shards = 3;
  RuntimeOptions durable_seq;
  durable_seq.durable_dir = root_ + "/seq";
  RuntimeOptions durable_sharded;
  durable_sharded.num_shards = 3;
  durable_sharded.durable_dir = root_ + "/sharded";

  ScenarioOutcome reference = ReplayScenario(scenario, sequential);
  ASSERT_EQ(reference.decisions.size(), scenario.total_events);
  struct Config {
    const char* name;
    RuntimeOptions options;
  };
  const Config configs[] = {{"sharded", sharded},
                            {"durable-seq", durable_seq},
                            {"durable-sharded", durable_sharded}};
  for (const Config& config : configs) {
    SCOPED_TRACE(config.name);
    ScenarioOutcome outcome = ReplayScenario(scenario, config.options);
    ASSERT_EQ(reference.decisions.size(), outcome.decisions.size());
    for (size_t i = 0; i < reference.decisions.size(); ++i) {
      ASSERT_EQ(reference.decisions[i], outcome.decisions[i])
          << "decision " << i << " diverged";
    }
    EXPECT_EQ(reference.granted, outcome.granted);
    EXPECT_TRUE(reference.alerts == outcome.alerts)
        << "alert sets diverged (" << reference.alerts.size() << " vs "
        << outcome.alerts.size() << ")";
    EXPECT_EQ(reference.query_answers, outcome.query_answers);
  }

  // The deterministic-construction contract the two-process load flow
  // rests on: regenerating the scenario gives the identical streams.
  ASSERT_OK_AND_ASSIGN(LoadScenario again,
                       GenerateLoadScenario(GetParam(), so));
  ASSERT_EQ(scenario.streams.size(), again.streams.size());
  for (size_t c = 0; c < scenario.streams.size(); ++c) {
    ASSERT_EQ(scenario.streams[c].size(), again.streams[c].size());
    for (size_t f = 0; f < scenario.streams[c].size(); ++f) {
      const auto& lhs = scenario.streams[c][f];
      const auto& rhs = again.streams[c][f];
      ASSERT_EQ(lhs.size(), rhs.size());
      for (size_t e = 0; e < lhs.size(); ++e) {
        EXPECT_EQ(lhs[e].ToString(), rhs[e].ToString());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ScenarioFamilyEquivalenceTest,
    ::testing::Values(ScenarioFamily::kSurge, ScenarioFamily::kContactSweep,
                      ScenarioFamily::kPolicyChurn,
                      ScenarioFamily::kMultiTenant,
                      ScenarioFamily::kReplication),
    [](const ::testing::TestParamInfo<ScenarioFamily>& info) {
      return std::string(ScenarioFamilyToString(info.param));
    });

}  // namespace
}  // namespace ltam
