// Copyright 2026 The LTAM Authors.

#include "replication/log_shipper.h"

#include <chrono>
#include <utility>

namespace ltam {

LogShipper::LogShipper(AccessRuntime* runtime, std::shared_mutex* runtime_mu,
                       std::vector<uint64_t> start_positions, SendFn send,
                       LogShipperOptions options)
    : runtime_(runtime),
      runtime_mu_(runtime_mu),
      send_(std::move(send)),
      options_(options),
      positions_(std::move(start_positions)) {}

LogShipper::~LogShipper() { Stop(); }

void LogShipper::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  if (options_.metrics != nullptr) {
    gauge_name_ = "replication.replica." +
                  std::to_string(options_.subscriber_id) + ".lag_records";
    lag_gauge_ = options_.metrics->GetGauge(gauge_name_);
  }
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

void LogShipper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // After the join: no sweep can touch the gauge, so a retired
  // subscriber leaves no stale lag series behind.
  if (lag_gauge_ != nullptr) {
    options_.metrics->Remove(gauge_name_);
    lag_gauge_ = nullptr;
  }
}

uint64_t LogShipper::records_shipped() const {
  return records_shipped_.load(std::memory_order_relaxed);
}

void LogShipper::Run() {
  while (true) {
    bool fatal = false;
    const bool moved = SweepOnce(&fatal);
    if (fatal) return;
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    if (moved) continue;  // Drain hot shards before sleeping.
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
  }
}

bool LogShipper::SweepOnce(bool* fatal) {
  bool moved = false;
  const uint32_t nshards = static_cast<uint32_t>(positions_.size());
  uint64_t epoch = 0;
  std::vector<uint64_t> durable(nshards, 0);
  for (uint32_t k = 0; k < nshards; ++k) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return moved;
      }
      Result<AccessRuntime::ReplicationSlice> slice =
          [&]() -> Result<AccessRuntime::ReplicationSlice> {
        // Shared lock: checkpoints (exclusive writers server-side)
        // cannot retire segments mid-read.
        std::shared_lock<std::shared_mutex> lock(*runtime_mu_);
        epoch = runtime_->replication_epoch();
        return runtime_->ReadReplicationSlice(k, positions_[k],
                                              options_.max_records_per_chunk);
      }();
      if (!slice.ok()) {
        // The stream cannot continue from this position (most likely a
        // checkpoint retired it — resync required). Tell the replica
        // once, structurally, and retire the subscription.
        send_(MessageType::kError,
              EncodeErrorResult(slice.status().WithContext(
                  "replication stream for shard " + std::to_string(k))));
        *fatal = true;
        return moved;
      }
      durable[k] = slice->durable;
      if (slice->records.empty()) break;
      SegmentChunk chunk;
      chunk.epoch = epoch;
      chunk.shard = k;
      chunk.start = positions_[k];
      chunk.records = std::move(slice->records);
      const uint64_t shipped = chunk.records.size();
      if (!send_(MessageType::kSegmentChunk, EncodeSegmentChunk(chunk))) {
        *fatal = true;  // Connection gone.
        return moved;
      }
      records_shipped_.fetch_add(shipped, std::memory_order_relaxed);
      positions_[k] = slice->next;
      moved = true;
      if (slice->next >= slice->durable) break;
    }
  }
  if (lag_gauge_ != nullptr) {
    int64_t lag = 0;
    for (uint32_t k = 0; k < nshards; ++k) {
      if (durable[k] > positions_[k]) {
        lag += static_cast<int64_t>(durable[k] - positions_[k]);
      }
    }
    lag_gauge_->Set(lag);
  }
  // Lag accounting: advertise the primary's durable positions whenever
  // they moved past what the replica last heard.
  if (durable != sent_durable_) {
    WatermarkAdvance advance;
    advance.epoch = epoch;
    advance.durable = durable;
    if (!send_(MessageType::kWatermarkAdvance,
               EncodeWatermarkAdvance(advance))) {
      *fatal = true;
      return moved;
    }
    sent_durable_ = std::move(durable);
  }
  return moved;
}

}  // namespace ltam
