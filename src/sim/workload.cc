// Copyright 2026 The LTAM Authors.

#include "sim/workload.h"

#include <algorithm>
#include <unordered_map>

#include "engine/sharded_engine.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

std::vector<SubjectId> GenerateSubjects(UserProfileDatabase* profiles,
                                        uint32_t count) {
  LTAM_CHECK(profiles != nullptr);
  std::vector<SubjectId> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Result<SubjectId> r = profiles->AddSubject(StrFormat("u%u", i));
    // Name collisions only happen if the caller generated before; make
    // the generator idempotent by resolving.
    if (!r.ok()) r = profiles->Find(StrFormat("u%u", i));
    LTAM_CHECK(r.ok()) << r.status().ToString();
    out.push_back(*r);
  }
  return out;
}

size_t GenerateAuthorizations(const MultilevelLocationGraph& graph,
                              const std::vector<SubjectId>& subjects,
                              const AuthWorkloadOptions& options, Rng* rng,
                              AuthorizationDatabase* db) {
  LTAM_CHECK(rng != nullptr);
  LTAM_CHECK(db != nullptr);
  size_t added = 0;
  for (SubjectId s : subjects) {
    for (LocationId l : graph.Primitives()) {
      if (!rng->Bernoulli(options.coverage)) continue;
      for (uint32_t k = 0; k < options.auths_per_location; ++k) {
        Chronon start = rng->UniformRange(0, options.horizon - 1);
        Chronon len = rng->UniformRange(options.min_len, options.max_len);
        TimeInterval entry(start, ChrononAdd(start, len));
        Chronon slack = rng->UniformRange(0, options.max_slack);
        TimeInterval exit(entry.start(), ChrononAdd(entry.end(), slack));
        int64_t n = options.max_entries == 0
                        ? kUnlimitedEntries
                        : rng->UniformRange(1, options.max_entries);
        Result<LocationTemporalAuthorization> auth =
            LocationTemporalAuthorization::Make(entry, exit,
                                                LocationAuthorization{s, l},
                                                n);
        LTAM_CHECK(auth.ok()) << auth.status().ToString();
        db->Add(*auth);
        ++added;
      }
    }
  }
  return added;
}

std::vector<AccessRequest> GenerateRequests(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t count, Chronon horizon,
    Rng* rng) {
  LTAM_CHECK(rng != nullptr);
  std::vector<AccessRequest> out;
  if (subjects.empty()) return out;
  std::vector<LocationId> prims = graph.Primitives();
  if (prims.empty()) return out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AccessRequest req;
    req.time = rng->UniformRange(0, horizon - 1);
    req.subject = subjects[rng->Uniform(subjects.size())];
    req.location = prims[rng->Uniform(prims.size())];
    out.push_back(req);
  }
  std::sort(out.begin(), out.end(),
            [](const AccessRequest& a, const AccessRequest& b) {
              return a.time < b.time;
            });
  return out;
}

std::vector<std::vector<AccessEvent>> GenerateEventBatches(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t total_events,
    const BatchWorkloadOptions& options, Rng* rng) {
  LTAM_CHECK(rng != nullptr);
  LTAM_CHECK(options.batch_size > 0) << "batch_size must be positive";
  LTAM_CHECK(options.max_step >= 1) << "max_step must be positive";
  std::vector<std::vector<AccessEvent>> out;
  if (subjects.empty() || total_events == 0) return out;
  std::vector<LocationId> prims = graph.Primitives();
  if (prims.empty()) return out;

  // Per-subject monotone clocks keep every subject's stream strictly
  // increasing in time across the whole run.
  std::unordered_map<SubjectId, Chronon> clock;
  std::unordered_map<SubjectId, bool> inside;

  size_t remaining = total_events;
  while (remaining > 0) {
    size_t size = std::min(options.batch_size, remaining);
    remaining -= size;
    std::vector<AccessEvent> batch;
    batch.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      SubjectId s = subjects[rng->Uniform(subjects.size())];
      Chronon t = clock[s] + rng->UniformRange(1, options.max_step);
      clock[s] = t;
      bool& in = inside[s];
      if (in && rng->Bernoulli(options.exit_fraction)) {
        batch.push_back(AccessEvent::Exit(t, s));
        in = false;
        continue;
      }
      LocationId l = prims[rng->Uniform(prims.size())];
      if (rng->Bernoulli(options.observe_fraction)) {
        batch.push_back(AccessEvent::Observe(t, s, l));
      } else {
        batch.push_back(AccessEvent::Entry(t, s, l));
      }
      in = true;
    }
    // Sort by (time, subject); same-subject events have distinct times,
    // so the per-subject order is by-time both here and in a sequential
    // replay of the batch.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const AccessEvent& a, const AccessEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.subject < b.subject;
                     });
    out.push_back(std::move(batch));
  }
  return out;
}

SequentialReplay ReplayBatchesSequential(
    const MultilevelLocationGraph& graph, AuthorizationDatabase* auth_db,
    const UserProfileDatabase& profiles,
    const std::vector<std::vector<AccessEvent>>& batches,
    const EngineOptions& options) {
  LTAM_CHECK(auth_db != nullptr);
  SequentialReplay replay;
  MovementDatabase movements;
  AccessControlEngine engine(&graph, auth_db, &movements, &profiles, options);
  for (const std::vector<AccessEvent>& batch : batches) {
    for (const AccessEvent& event : batch) {
      replay.decisions.push_back(ApplyAccessEvent(&engine, event));
      ++replay.events;
    }
  }
  replay.alerts = engine.alerts();
  return replay;
}

}  // namespace ltam
