// Copyright 2026 The LTAM Authors.
// Closed time intervals over the chronon domain (Section 3.1).

#ifndef LTAM_TIME_INTERVAL_H_
#define LTAM_TIME_INTERVAL_H_

#include <optional>
#include <string>

#include "time/chronon.h"
#include "util/result.h"

namespace ltam {

/// A closed interval of chronons [start, end], start <= end.
///
/// The paper writes entry durations as [tis, tie] and exit durations as
/// [tos, toe]; both are closed and may extend to +infinity (rendered "inf").
/// An interval with start > end is *invalid* and used nowhere; operations
/// that can produce an empty result return std::nullopt instead.
class TimeInterval {
 public:
  /// Constructs [start, end]. Callers must ensure start <= end; use
  /// `Make` for checked construction.
  constexpr TimeInterval(Chronon start, Chronon end)
      : start_(start), end_(end) {}

  /// Checked constructor: fails unless start <= end.
  static Result<TimeInterval> Make(Chronon start, Chronon end);

  /// The full domain [min, +inf].
  static constexpr TimeInterval All() {
    return TimeInterval(kChrononMin, kChrononMax);
  }

  /// [t, t] — a single instant.
  static constexpr TimeInterval At(Chronon t) { return TimeInterval(t, t); }

  /// [start, +inf] — open-ended future, e.g. the default exit duration.
  static constexpr TimeInterval From(Chronon start) {
    return TimeInterval(start, kChrononMax);
  }

  constexpr Chronon start() const { return start_; }
  constexpr Chronon end() const { return end_; }

  /// True iff start <= end (the class invariant; violated only by direct
  /// construction with bad arguments).
  constexpr bool valid() const { return start_ <= end_; }

  /// Number of chronons covered; kChrononMax when unbounded.
  Chronon size() const;

  /// True iff t lies inside the closed interval.
  constexpr bool Contains(Chronon t) const {
    return start_ <= t && t <= end_;
  }

  /// True iff `other` lies entirely inside this interval.
  constexpr bool Contains(const TimeInterval& other) const {
    return start_ <= other.start_ && other.end_ <= end_;
  }

  /// True iff the two intervals share at least one chronon.
  constexpr bool Overlaps(const TimeInterval& other) const {
    return start_ <= other.end_ && other.start_ <= end_;
  }

  /// True iff the union of the two intervals is itself an interval: they
  /// overlap or are adjacent integers ([2,5] and [6,9] are mergeable).
  bool Mergeable(const TimeInterval& other) const;

  /// Set intersection; nullopt when disjoint.
  std::optional<TimeInterval> Intersect(const TimeInterval& other) const;

  /// Union of two mergeable intervals; nullopt when the union would not be
  /// a single interval.
  std::optional<TimeInterval> MergeWith(const TimeInterval& other) const;

  /// Renders "[2, 35]"; infinities render as "-inf"/"inf".
  std::string ToString() const;

  /// Parses the `ToString` format (tolerant of whitespace).
  static Result<TimeInterval> Parse(const std::string& text);

  friend constexpr bool operator==(const TimeInterval& a,
                                   const TimeInterval& b) {
    return a.start_ == b.start_ && a.end_ == b.end_;
  }

  /// Lexicographic (start, end) order, used to normalize interval sets.
  friend constexpr bool operator<(const TimeInterval& a,
                                  const TimeInterval& b) {
    return a.start_ != b.start_ ? a.start_ < b.start_ : a.end_ < b.end_;
  }

 private:
  Chronon start_;
  Chronon end_;
};

/// Formats a single chronon ("inf"/"-inf" for the sentinels).
std::string ChrononToString(Chronon t);

/// Parses a chronon, accepting "inf", "+inf", "-inf", and "oo".
Result<Chronon> ParseChronon(const std::string& text);

}  // namespace ltam

#endif  // LTAM_TIME_INTERVAL_H_
