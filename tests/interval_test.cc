// Copyright 2026 The LTAM Authors.
// Tests for TimeInterval (Section 3.1 time model).

#include "time/interval.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

TEST(ChrononTest, SaturatingArithmetic) {
  EXPECT_EQ(ChrononAdd(kChrononMax, 1), kChrononMax);
  EXPECT_EQ(ChrononAdd(kChrononMax, kChrononMax), kChrononMax);
  EXPECT_EQ(ChrononAdd(kChrononMin, -1), kChrononMin);
  EXPECT_EQ(ChrononAdd(5, 7), 12);
  EXPECT_EQ(ChrononSub(5, 7), -2);
  EXPECT_EQ(ChrononSub(0, kChrononMin), kChrononMax);
}

TEST(ChrononTest, Formatting) {
  EXPECT_EQ(ChrononToString(42), "42");
  EXPECT_EQ(ChrononToString(kChrononMax), "inf");
  EXPECT_EQ(ChrononToString(kChrononMin), "-inf");
}

TEST(ChrononTest, Parsing) {
  EXPECT_EQ(*ParseChronon("42"), 42);
  EXPECT_EQ(*ParseChronon(" inf "), kChrononMax);
  EXPECT_EQ(*ParseChronon("+inf"), kChrononMax);
  EXPECT_EQ(*ParseChronon("oo"), kChrononMax);
  EXPECT_EQ(*ParseChronon("-inf"), kChrononMin);
  EXPECT_TRUE(ParseChronon("soon").status().IsParseError());
}

TEST(IntervalTest, MakeValidatesOrder) {
  ASSERT_OK_AND_ASSIGN(TimeInterval iv, TimeInterval::Make(5, 40));
  EXPECT_EQ(iv.start(), 5);
  EXPECT_EQ(iv.end(), 40);
  EXPECT_TRUE(TimeInterval::Make(41, 40).status().IsInvalidArgument());
  EXPECT_TRUE(TimeInterval::Make(5, 5).ok());
}

TEST(IntervalTest, Factories) {
  EXPECT_EQ(TimeInterval::At(7), TimeInterval(7, 7));
  EXPECT_EQ(TimeInterval::From(3), TimeInterval(3, kChrononMax));
  EXPECT_EQ(TimeInterval::All(), TimeInterval(kChrononMin, kChrononMax));
}

TEST(IntervalTest, Size) {
  EXPECT_EQ(TimeInterval(5, 9).size(), 5);
  EXPECT_EQ(TimeInterval(5, 5).size(), 1);
  EXPECT_EQ(TimeInterval::From(0).size(), kChrononMax);
}

TEST(IntervalTest, ContainsInstant) {
  TimeInterval iv(5, 40);
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_TRUE(iv.Contains(40));
  EXPECT_TRUE(iv.Contains(20));
  EXPECT_FALSE(iv.Contains(4));
  EXPECT_FALSE(iv.Contains(41));
}

TEST(IntervalTest, ContainsInterval) {
  TimeInterval iv(5, 40);
  EXPECT_TRUE(iv.Contains(TimeInterval(5, 40)));
  EXPECT_TRUE(iv.Contains(TimeInterval(10, 20)));
  EXPECT_FALSE(iv.Contains(TimeInterval(4, 20)));
  EXPECT_FALSE(iv.Contains(TimeInterval(10, 41)));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(TimeInterval(5, 10).Overlaps(TimeInterval(10, 20)));
  EXPECT_FALSE(TimeInterval(5, 10).Overlaps(TimeInterval(11, 20)));
  EXPECT_TRUE(TimeInterval(0, 100).Overlaps(TimeInterval(50, 60)));
  EXPECT_TRUE(TimeInterval(50, 60).Overlaps(TimeInterval(0, 100)));
}

TEST(IntervalTest, MergeableIncludesAdjacency) {
  EXPECT_TRUE(TimeInterval(5, 10).Mergeable(TimeInterval(11, 20)));
  EXPECT_TRUE(TimeInterval(11, 20).Mergeable(TimeInterval(5, 10)));
  EXPECT_FALSE(TimeInterval(5, 10).Mergeable(TimeInterval(12, 20)));
  EXPECT_TRUE(TimeInterval(5, 10).Mergeable(TimeInterval(8, 20)));
}

TEST(IntervalTest, Intersect) {
  // The paper's Example 2: [5, 20] n [10, 30] = [10, 20].
  auto x = TimeInterval(5, 20).Intersect(TimeInterval(10, 30));
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, TimeInterval(10, 20));
  EXPECT_FALSE(TimeInterval(5, 9).Intersect(TimeInterval(10, 30)).has_value());
  // Touching endpoints intersect in one instant.
  auto y = TimeInterval(5, 10).Intersect(TimeInterval(10, 30));
  ASSERT_TRUE(y.has_value());
  EXPECT_EQ(*y, TimeInterval(10, 10));
}

TEST(IntervalTest, MergeWith) {
  auto m = TimeInterval(5, 10).MergeWith(TimeInterval(11, 20));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, TimeInterval(5, 20));
  EXPECT_FALSE(TimeInterval(5, 10).MergeWith(TimeInterval(12, 20)).has_value());
}

TEST(IntervalTest, RoundTripFormatting) {
  TimeInterval iv(5, 40);
  EXPECT_EQ(iv.ToString(), "[5, 40]");
  ASSERT_OK_AND_ASSIGN(TimeInterval parsed, TimeInterval::Parse("[5, 40]"));
  EXPECT_EQ(parsed, iv);
  ASSERT_OK_AND_ASSIGN(TimeInterval open, TimeInterval::Parse("[3, inf]"));
  EXPECT_EQ(open, TimeInterval::From(3));
  EXPECT_EQ(open.ToString(), "[3, inf]");
}

TEST(IntervalTest, ParseRejectsGarbage) {
  EXPECT_TRUE(TimeInterval::Parse("5, 40").status().IsParseError());
  EXPECT_TRUE(TimeInterval::Parse("[5 40]").status().IsParseError());
  EXPECT_TRUE(TimeInterval::Parse("[5, 40, 50]").status().IsParseError());
  EXPECT_TRUE(TimeInterval::Parse("[40, 5]").status().IsInvalidArgument());
  EXPECT_TRUE(TimeInterval::Parse("").status().IsParseError());
}

TEST(IntervalTest, OrderingIsLexicographic) {
  EXPECT_LT(TimeInterval(1, 5), TimeInterval(2, 3));
  EXPECT_LT(TimeInterval(1, 3), TimeInterval(1, 5));
  EXPECT_FALSE(TimeInterval(1, 5) < TimeInterval(1, 5));
}

}  // namespace
}  // namespace ltam
