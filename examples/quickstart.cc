// Copyright 2026 The LTAM Authors.
//
// Quickstart: the smallest useful LTAM deployment.
//
// Builds a two-room site, grants the Section 5 authorizations
//   A1: ([10, 20], [10, 50], (Alice, CAIS), 2)
//   A2: ([5, 35], [20, 100], (Bob, CHIPES), 1)
// and replays the paper's request timeline, printing each decision, then
// shows an overstay alert being raised by the monitor.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "engine/access_control_engine.h"
#include "graph/multilevel_graph.h"
#include "util/logging.h"

namespace {

void Print(const char* what, const ltam::Decision& d) {
  std::printf("  %-28s -> %s\n", what, d.ToString().c_str());
}

}  // namespace

int main() {
  using namespace ltam;  // NOLINT: example brevity.

  // 1. Describe the location layout (Definition 1): one location graph
  //    with two rooms; CAIS is the entry location.
  MultilevelLocationGraph graph("Lab");
  LocationId cais = graph.AddPrimitive("CAIS", graph.root()).ValueOrDie();
  LocationId chipes = graph.AddPrimitive("CHIPES", graph.root()).ValueOrDie();
  LTAM_CHECK(graph.AddEdge(cais, chipes).ok());
  LTAM_CHECK(graph.SetEntry(cais).ok());
  LTAM_CHECK(graph.Validate().ok());

  // 2. Register the subjects.
  UserProfileDatabase profiles;
  SubjectId alice = profiles.AddSubject("Alice").ValueOrDie();
  SubjectId bob = profiles.AddSubject("Bob").ValueOrDie();

  // 3. Create the location-temporal authorizations (Definition 4).
  AuthorizationDatabase auth_db;
  auth_db.Add(LocationTemporalAuthorization::Make(
                  TimeInterval(10, 20), TimeInterval(10, 50),
                  LocationAuthorization{alice, cais}, 2)
                  .ValueOrDie());
  auth_db.Add(LocationTemporalAuthorization::Make(
                  TimeInterval(5, 35), TimeInterval(20, 100),
                  LocationAuthorization{bob, chipes}, 1)
                  .ValueOrDie());

  // 4. Enforce (Figure 3): the engine checks Definition 7 plus physical
  //    adjacency and monitors movement continuously.
  MovementDatabase movements;
  AccessControlEngine engine(&graph, &auth_db, &movements, &profiles);

  std::printf("Section 5 request timeline:\n");
  // CHIPES is not a site door, so Bob walks in through CAIS's door... but
  // he holds no CAIS authorization: his direct request is denied twice
  // over. Disable adjacency for the paper-faithful timeline.
  EngineOptions open_doors;
  open_doors.enforce_adjacency = false;
  MovementDatabase movements2;
  AccessControlEngine paper_engine(&graph, &auth_db, &movements2, &profiles,
                                   open_doors);
  Print("(10, Alice, CAIS)", paper_engine.RequestEntry(10, alice, cais));
  Print("(15, Bob,   CAIS)", paper_engine.RequestEntry(15, bob, cais));
  Print("(16, Bob,   CHIPES)", paper_engine.RequestEntry(16, bob, chipes));
  std::printf("  (20, Bob exits)\n");
  LTAM_CHECK(paper_engine.RequestExit(20, bob).ok());
  Print("(30, Bob,   CHIPES)", paper_engine.RequestEntry(30, bob, chipes));

  // 5. Continuous monitoring: Alice must leave CAIS by t=50.
  std::printf("\nMonitoring:\n");
  paper_engine.Tick(60);
  for (const Alert& alert : paper_engine.alerts()) {
    if (alert.type != AlertType::kAccessDenied) {
      std::printf("  ALERT %s\n", alert.ToString().c_str());
    }
  }

  std::printf("\nMovement record of Alice:\n");
  for (const Stay& stay : movements2.StaysOf(alice)) {
    std::printf("  in %s from t=%lld%s\n",
                graph.location(stay.location).name.c_str(),
                static_cast<long long>(stay.enter_time),
                stay.exit_time == kChrononMax ? " (still inside)" : "");
  }
  return 0;
}
