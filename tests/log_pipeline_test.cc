// Copyright 2026 The LTAM Authors.
// ShardLog: the pipelined write-ahead log primitive. Batch mode must be
// byte-identical to driving a WalWriter directly (synchronous append,
// fsync per boundary, refusal on append failure); pipelined/interval
// modes must advance the durability watermark asynchronously, freeze it
// on a sticky failure WITHOUT affecting accepted records' sequence
// numbers (the decision stream's proxy here), and rotate numbered
// segments once the size threshold trips. Runs under TSan via ci.sh
// (the log thread vs the appending/flushing threads is the whole
// point).

#include "storage/log_pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/codec.h"
#include "storage/wal.h"
#include "test_util.h"

namespace ltam {
namespace {

namespace fs = std::filesystem;

Record NumberedRecord(uint64_t n) {
  return Record{"rec", {std::to_string(n)}};
}

/// Replays every segment in order, returning the record numbers seen.
std::vector<uint64_t> ReplayAll(const std::vector<std::string>& segments) {
  std::vector<uint64_t> out;
  for (const std::string& path : segments) {
    Status replayed = ReplayWal(path, [&out](const Record& rec) {
      EXPECT_EQ(rec.type, "rec");
      out.push_back(std::stoull(rec.fields.at(0)));
      return Status::OK();
    });
    EXPECT_OK(replayed);
  }
  return out;
}

class LogPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ltam_logpipe_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string SegmentPath(uint32_t seg) const {
    return dir_ + "/seg-" + std::to_string(seg) + ".wal";
  }

  /// Builds a log over segment 0 with a rotation callback that creates
  /// numbered segment files and records their names (thread-safely: the
  /// callback runs on the log thread).
  std::unique_ptr<ShardLog> MakeLog(DurabilityOptions options,
                                    bool sync_each_batch = true) {
    WalWriter writer = WalWriter::Create(SegmentPath(0)).ValueOrDie();
    {
      std::lock_guard<std::mutex> lock(segments_mu_);
      segments_ = {SegmentPath(0)};
    }
    return std::make_unique<ShardLog>(
        std::move(writer), /*writer_bytes=*/0, /*segment_index=*/0, options,
        sync_each_batch, [this](uint32_t seg) -> Result<WalWriter> {
          LTAM_ASSIGN_OR_RETURN(WalWriter next,
                                WalWriter::Create(SegmentPath(seg)));
          std::lock_guard<std::mutex> lock(segments_mu_);
          segments_.push_back(SegmentPath(seg));
          return next;
        });
  }

  std::vector<std::string> Segments() {
    std::lock_guard<std::mutex> lock(segments_mu_);
    return segments_;
  }

  std::string dir_;
  std::mutex segments_mu_;
  std::vector<std::string> segments_;
};

TEST_F(LogPipelineTest, BatchModeSyncsEveryBoundary) {
  DurabilityOptions options;
  options.mode = SyncMode::kBatch;
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 6; ++i) {
    ASSERT_OK_AND_ASSIGN(CommitTicket ticket, log->Append(NumberedRecord(i)));
    EXPECT_EQ(ticket.seq, i);
    if (i % 2 == 0) {
      ASSERT_OK_AND_ASSIGN(CommitTicket boundary, log->BatchBoundary());
      EXPECT_EQ(boundary.seq, i);
      // Group commit happened on this thread: durable == applied now.
      EXPECT_EQ(log->durable_seq(), i);
    }
  }
  EXPECT_EQ(log->appended_seq(), 6u);
  EXPECT_EQ(log->durable_seq(), 6u);
  log.reset();
  EXPECT_EQ(ReplayAll(Segments()).size(), 6u);
}

TEST_F(LogPipelineTest, BatchModeWithoutSyncLeavesWatermarkBehind) {
  DurabilityOptions options;
  options.mode = SyncMode::kBatch;
  std::unique_ptr<ShardLog> log =
      MakeLog(options, /*sync_each_batch=*/false);
  ASSERT_OK(log->Append(NumberedRecord(1)).status());
  ASSERT_OK(log->BatchBoundary().status());
  EXPECT_EQ(log->appended_seq(), 1u);
  EXPECT_EQ(log->durable_seq(), 0u) << "no automatic fsync in this mode";
  // The explicit barrier still closes the gap.
  ASSERT_OK(log->Flush());
  EXPECT_EQ(log->durable_seq(), 1u);
}

TEST_F(LogPipelineTest, BatchModeAppendFailureRefuses) {
  DurabilityOptions options;
  options.mode = SyncMode::kBatch;
  options.fault_injector = [](const char* op, uint64_t count) {
    if (std::string(op) == "append" && count == 2) {
      return Status::IOError("injected append failure");
    }
    return Status::OK();
  };
  std::unique_ptr<ShardLog> log = MakeLog(options);
  ASSERT_OK(log->Append(NumberedRecord(1)).status());
  EXPECT_FALSE(log->Append(NumberedRecord(2)).ok())
      << "batch mode refuses synchronously (the event is then not applied)";
  ASSERT_OK(log->Append(NumberedRecord(3)).status());
  ASSERT_OK(log->BatchBoundary().status());
  EXPECT_EQ(log->appended_seq(), 2u) << "the refused record takes no seq";
  EXPECT_EQ(log->append_failures(), 1u);
  log.reset();
  EXPECT_EQ(ReplayAll(Segments()), (std::vector<uint64_t>{1, 3}));
}

TEST_F(LogPipelineTest, PipelinedWatermarkCatchesUp) {
  DurabilityOptions options;
  options.mode = SyncMode::kPipelined;
  options.pipeline_depth = 4;
  std::unique_ptr<ShardLog> log = MakeLog(options);
  CommitTicket last{};
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_OK_AND_ASSIGN(last, log->Append(NumberedRecord(i)));
  }
  ASSERT_OK_AND_ASSIGN(CommitTicket boundary, log->BatchBoundary());
  EXPECT_EQ(boundary.seq, 10u);
  EXPECT_EQ(last.seq, 10u);
  // The ticket is redeemable: the log thread syncs on the drained
  // queue's completed group without any explicit barrier.
  ASSERT_OK(log->WaitDurable(last.seq));
  EXPECT_GE(log->durable_seq(), 10u);
  EXPECT_EQ(log->append_failures(), 0u);
  log.reset();
  std::vector<uint64_t> replayed = ReplayAll(Segments());
  ASSERT_EQ(replayed.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(replayed[i], i + 1);
}

TEST_F(LogPipelineTest, PipelinedFlushIsABarrier) {
  DurabilityOptions options;
  options.mode = SyncMode::kPipelined;
  options.pipeline_depth = 1000;           // Never sync on depth...
  options.max_unsynced_bytes = 1u << 30;   // ...or on bytes.
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 50; ++i) {
    ASSERT_OK(log->Append(NumberedRecord(i)).status());
    if (i % 10 == 0) ASSERT_OK(log->BatchBoundary().status());
  }
  ASSERT_OK(log->Flush());
  EXPECT_EQ(log->durable_seq(), 50u);
  EXPECT_EQ(log->appended_seq(), 50u);
}

TEST_F(LogPipelineTest, PipelinedAppendFailureFreezesWatermark) {
  DurabilityOptions options;
  options.mode = SyncMode::kPipelined;
  options.fault_injector = [](const char* op, uint64_t count) {
    if (std::string(op) == "append" && count >= 4) {
      return Status::IOError("injected append failure");
    }
    return Status::OK();
  };
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 10; ++i) {
    // Pipelined appends NEVER refuse: the events were already accepted.
    ASSERT_OK_AND_ASSIGN(CommitTicket t, log->Append(NumberedRecord(i)));
    EXPECT_EQ(t.seq, i);
  }
  Result<CommitTicket> boundary = log->BatchBoundary();
  // The boundary may or may not have observed the failure yet, but the
  // barrier must surface it.
  EXPECT_FALSE(log->Flush().ok());
  EXPECT_FALSE(log->WaitDurable(10).ok());
  (void)boundary;
  EXPECT_EQ(log->appended_seq(), 10u) << "accepted seqs never rewind";
  EXPECT_EQ(log->durable_seq(), 0u) << "nothing was fsynced";
  // Flush returns on the sticky error; the log thread may still be
  // dropping the queued suffix — poll the counter to its fixpoint.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (log->append_failures() < 7 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(log->append_failures(), 7u)
      << "the failed record and every dropped successor count";
  // Once sticky, the boundary keeps reporting trouble.
  EXPECT_FALSE(log->BatchBoundary().ok());
  log.reset();
  // The file holds exactly the clean prefix — no holes.
  EXPECT_EQ(ReplayAll(Segments()), (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(LogPipelineTest, PipelinedSyncFailureIsSticky) {
  DurabilityOptions options;
  options.mode = SyncMode::kPipelined;
  options.fault_injector = [](const char* op, uint64_t) {
    if (std::string(op) == "sync") {
      return Status::IOError("injected fsync failure");
    }
    return Status::OK();
  };
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_OK(log->Append(NumberedRecord(i)).status());
  }
  ASSERT_TRUE(log->BatchBoundary().ok() || true);  // May race the failure.
  EXPECT_FALSE(log->Flush().ok());
  EXPECT_EQ(log->durable_seq(), 0u);
  EXPECT_GE(log->sync_failures(), 1u);
  EXPECT_FALSE(log->BatchBoundary().ok()) << "sticky after the first failure";
}

TEST_F(LogPipelineTest, IntervalModeSyncsOnTimer) {
  DurabilityOptions options;
  options.mode = SyncMode::kInterval;
  options.sync_interval_ms = 1;
  std::unique_ptr<ShardLog> log = MakeLog(options);
  ASSERT_OK(log->Append(NumberedRecord(1)).status());
  ASSERT_OK(log->BatchBoundary().status());
  // No barrier: the timer alone must land the fsync.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (log->durable_seq() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(log->durable_seq(), 1u);
}

TEST_F(LogPipelineTest, RotationProducesNumberedSegments) {
  DurabilityOptions options;
  options.mode = SyncMode::kPipelined;
  options.pipeline_depth = 1;
  options.segment_max_bytes = 32;  // A handful of records per segment.
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 40; ++i) {
    ASSERT_OK(log->Append(NumberedRecord(i)).status());
    ASSERT_OK(log->BatchBoundary().status());
    // Rotation is checked once per fsync; the barrier forces one, so
    // every over-threshold decade rotates deterministically.
    if (i % 10 == 0) ASSERT_OK(log->Flush());
  }
  ASSERT_OK(log->Flush());
  EXPECT_GE(log->segment_index(), 2u);
  log.reset();
  std::vector<std::string> segments = Segments();
  ASSERT_GE(segments.size(), 3u);
  // Every record survives, in order, across the segment chain.
  std::vector<uint64_t> replayed = ReplayAll(segments);
  ASSERT_EQ(replayed.size(), 40u);
  for (uint64_t i = 0; i < 40; ++i) EXPECT_EQ(replayed[i], i + 1);
}

TEST_F(LogPipelineTest, BatchModeRotatesAfterGroupCommit) {
  DurabilityOptions options;
  options.mode = SyncMode::kBatch;
  options.segment_max_bytes = 64;
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 20; ++i) {
    ASSERT_OK(log->Append(NumberedRecord(i)).status());
    ASSERT_OK(log->BatchBoundary().status());
  }
  EXPECT_GE(log->segment_index(), 1u);
  log.reset();
  EXPECT_EQ(ReplayAll(Segments()).size(), 20u);
}

TEST_F(LogPipelineTest, ParseSyncModeRoundTrips) {
  for (SyncMode mode :
       {SyncMode::kBatch, SyncMode::kPipelined, SyncMode::kInterval}) {
    ASSERT_OK_AND_ASSIGN(SyncMode parsed,
                         ParseSyncMode(SyncModeToString(mode)));
    EXPECT_EQ(parsed, mode);
  }
  EXPECT_FALSE(ParseSyncMode("yolo").ok());
}

TEST_F(LogPipelineTest, DestructorDrainsAndSyncs) {
  DurabilityOptions options;
  options.mode = SyncMode::kPipelined;
  options.pipeline_depth = 1000;
  options.max_unsynced_bytes = 1u << 30;
  std::unique_ptr<ShardLog> log = MakeLog(options);
  for (uint64_t i = 1; i <= 25; ++i) {
    ASSERT_OK(log->Append(NumberedRecord(i)).status());
  }
  ASSERT_OK(log->BatchBoundary().status());
  log.reset();  // Clean shutdown: everything queued must reach the file.
  EXPECT_EQ(ReplayAll(Segments()).size(), 25u);
}

}  // namespace
}  // namespace ltam
