// Copyright 2026 The LTAM Authors.
// Binary codec for sealed cold segments (engine/cold_segment.h).
//
// Unlike the administrator-scale line codec (storage/codec.h), cold
// segments hold millions of machine-written rows, so they get a compact
// binary layout: a header (row count, sealed-event count, time bounds),
// then the four columns back to back, each length-prefixed and
// varint/delta encoded —
//
//   subjects   unsigned deltas vs the previous row (the sort order makes
//              them non-negative, and decoding deltas *enforces* the
//              sortedness queries binary-search on)
//   locations  raw varints
//   enters     zigzag deltas vs the previous row's enter
//   exits      unsigned delta vs the SAME row's enter (a completed stay
//              always has exit >= enter)
//
// plus leading/trailing magic. Decoding is hostile-input safe: every
// read is bounds-checked against the buffer (truncation at any byte is
// an error, never a short segment), declared counts are validated
// against the actual byte lengths before any allocation (a corrupt row
// count cannot drive allocation beyond the file's own size), and the
// decoded rows must satisfy every ColdSegment invariant (completed,
// sorted, bounds exact) or the segment is rejected.

#ifndef LTAM_STORAGE_COLD_CODEC_H_
#define LTAM_STORAGE_COLD_CODEC_H_

#include <memory>
#include <string>

#include "engine/cold_segment.h"
#include "util/result.h"

namespace ltam {

/// Serializes a segment to its binary file image.
Result<std::string> EncodeColdSegment(const ColdSegment& segment);

/// Parses and fully validates a file image produced by EncodeColdSegment.
Result<ColdSegment> DecodeColdSegment(const std::string& bytes);

/// Writes `segment` to `path` (overwrites). The caller owns the fsync
/// (checkpoints sync the batch of new segment files together).
Status SaveColdSegment(const ColdSegment& segment, const std::string& path);

/// Reads and decodes the segment at `path`.
Result<std::shared_ptr<const ColdSegment>> LoadColdSegment(
    const std::string& path);

}  // namespace ltam

#endif  // LTAM_STORAGE_COLD_CODEC_H_
