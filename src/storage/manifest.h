// Copyright 2026 The LTAM Authors.
// The sharded runtime's checkpoint manifest.
//
// A `MANIFEST` file names the exact set of files that make up one
// consistent checkpoint cut of a DurableShardedSystem directory: the
// shared base snapshot (graph, profiles, authorizations, rules), one
// movement-snapshot segment per shard, and one write-ahead log per shard.
// Checkpointing writes every segment first, then publishes the new cut by
// atomically renaming a fresh manifest over the old one — the rename is
// the commit point, so a crash at any instant leaves either the old cut
// or the new one, never a mix.
//
// Format (line-oriented codec records):
//
//   manifest <format-version> <epoch> <num-shards>
//   base <file>
//   shard <k> <snapshot-file> <wal-seg-0> [<wal-seg-1> ...]
//                                            (one per shard, k ascending)
//   cold <k> <dropped-events> <seg-file> [...]
//                      (optional, at most one per shard: the shard's
//                       sealed cold segments in sequence order plus the
//                       cumulative count of events already dropped past
//                       the retention horizon; absent = no cold tier)
//   commit <record-count>
//
// A shard's WAL may span several rotated segments within one epoch
// (`events-<k>-<epoch>.wal`, then `events-<k>-<epoch>-<seg>.wal` once
// the size threshold trips); the shard record commits the ordered
// segment list, and rotation republishes the manifest so a crash at any
// instant still names exactly the files recovery must replay, in order.
// The `cold` record is emitted only for shards that actually sealed (or
// dropped) history, so directories without tiering serialize
// byte-identically to the pre-tiering format.
//
// The trailing `commit` record carries the number of records before it;
// a manifest without a matching commit record (torn write, truncation)
// is rejected, as is any record after it. File names are validated to be
// plain names (no path separators) so a corrupted manifest can never
// point recovery outside its own directory.

#ifndef LTAM_STORAGE_MANIFEST_H_
#define LTAM_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace ltam {

/// One checkpoint cut of a sharded durable directory.
struct ShardManifest {
  /// Monotonically increasing checkpoint number; file names embed it.
  uint64_t epoch = 0;
  /// Fixed at directory creation; the subject partition depends on it.
  uint32_t num_shards = 1;
  /// Shared state snapshot (graph/profiles/authorizations/rules).
  std::string base_snapshot;
  struct ShardFiles {
    std::string snapshot;  ///< Per-shard hot movement segment.
    /// Per-shard log tail, in replay order: the first entry is the
    /// segment the checkpoint created, later entries were committed by
    /// rotation. Never empty after a successful load.
    std::vector<std::string> wals;
    /// Sealed cold segments (storage/cold_codec.h), oldest first. Empty
    /// for shards that never sealed.
    std::vector<std::string> cold;
    /// Events dropped past the retention horizon (cumulative), so the
    /// logical history length survives recovery.
    uint64_t dropped_events = 0;
  };
  /// Indexed by shard; size() == num_shards after a successful load.
  std::vector<ShardFiles> shards;
};

/// Canonical manifest file name inside a durable directory.
inline const char* ManifestFileName() { return "MANIFEST"; }

/// Validates `manifest` and renders the exact bytes SaveManifest would
/// publish. Exposed so callers can detect no-op republishes: two
/// manifests naming the same cut serialize identically.
Result<std::string> SerializeManifest(const ShardManifest& manifest);

/// Serializes `manifest` to `path` durably: writes `<path>.tmp`, fsyncs
/// it, renames it over `path`, and fsyncs the parent directory.
Status SaveManifest(const ShardManifest& manifest, const std::string& path);

/// SaveManifest, unless the serialized bytes equal `*last_serialized`
/// (the previously published bytes, as maintained by this function) — a
/// rotation that left every shard's segment list unchanged does not pay
/// for a rewrite + three fsyncs. Returns true when the manifest was
/// published, false when the byte-identical write was skipped. On a
/// successful publish `*last_serialized` is updated; pass the same
/// string across calls. An empty cache always publishes.
Result<bool> SaveManifestIfChanged(const ShardManifest& manifest,
                                   const std::string& path,
                                   std::string* last_serialized);

/// Parses and validates a manifest file. Errors on unknown records,
/// duplicate or missing shard entries, bad counts, path-escaping file
/// names, or a missing/incorrect commit record.
Result<ShardManifest> LoadManifest(const std::string& path);

}  // namespace ltam

#endif  // LTAM_STORAGE_MANIFEST_H_
