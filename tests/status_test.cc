// Copyright 2026 The LTAM Authors.
// Tests for Status / Result and the propagation macros.

#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

#include "util/result.h"

namespace ltam {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::NotFound("no location named 'CAIS'");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "no location named 'CAIS'");
  EXPECT_EQ(st.ToString(), "not-found: no location named 'CAIS'");
}

TEST(StatusTest, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status st = Status::IOError("disk full").WithContext("saving snapshot");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "saving snapshot: disk full");
  // OK is unchanged.
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "parse-error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPermissionDenied),
               "permission-denied");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

namespace {
Status FailIf(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status Chain(bool fail) {
  LTAM_RETURN_IF_ERROR(FailIf(fail));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LTAM_ASSIGN_OR_RETURN(int h, Half(x));
  LTAM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}
}  // namespace

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_TRUE(Chain(true).IsInternal());
}

TEST(MacroTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = Quarter(6);  // 6/2=3 is odd -> second step fails.
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

}  // namespace
}  // namespace ltam
