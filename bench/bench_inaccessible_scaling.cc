// Copyright 2026 The LTAM Authors.
//
// Section 6 complexity harness: the paper states Algorithm 1 runs in
// O(NL^2 * Nd * Na) where NL = number of locations, Nd = maximum degree,
// Na = maximum authorizations per location. This benchmark sweeps each
// factor independently on generated graphs so the growth in each
// dimension can be read off (and the asymptotic fit printed by
// --benchmark_* complexity reporting):
//
//   - NL sweep at fixed degree (grid graphs, Nd = 4, Na = 1);
//   - Nd sweep at fixed NL (random regular graphs, Na = 1);
//   - Na sweep at fixed graph (grid 16x16, Nd = 4).
//
// Note the NL exponent observed is well below 2: the N^2 bound is the
// paper's worst case (every sweep rescans all locations); the worklist
// engine and typical workloads converge in near-linear location updates.

#include <benchmark/benchmark.h>

#include "core/inaccessible.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct Instance {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  SubjectId subject = kInvalidSubject;
};

Instance GridInstance(uint32_t side, uint32_t auths_per_location) {
  Instance inst;
  inst.graph = MakeGridGraph(side, side).ValueOrDie();
  std::vector<SubjectId> subjects = GenerateSubjects(&inst.profiles, 1);
  inst.subject = subjects[0];
  Rng rng(side * 1315423911ULL + auths_per_location);
  AuthWorkloadOptions opt;
  opt.auths_per_location = auths_per_location;
  opt.horizon = 400;
  opt.min_len = 100;
  opt.max_len = 300;
  opt.max_slack = 100;
  GenerateAuthorizations(inst.graph, subjects, opt, &rng, &inst.auth_db);
  return inst;
}

Instance RandomInstance(uint32_t n, uint32_t degree) {
  Instance inst;
  Rng grng(n * 2654435761ULL + degree);
  inst.graph = MakeRandomRegularGraph(n, degree, &grng).ValueOrDie();
  std::vector<SubjectId> subjects = GenerateSubjects(&inst.profiles, 1);
  inst.subject = subjects[0];
  Rng rng(n + degree);
  AuthWorkloadOptions opt;
  opt.horizon = 400;
  opt.min_len = 100;
  opt.max_len = 300;
  opt.max_slack = 100;
  GenerateAuthorizations(inst.graph, subjects, opt, &rng, &inst.auth_db);
  return inst;
}

void RunOnce(benchmark::State& state, const Instance& inst,
             InaccessibleAlgorithm algorithm) {
  InaccessibleOptions options;
  options.algorithm = algorithm;
  size_t updates = 0;
  for (auto _ : state) {
    auto r = FindInaccessible(inst.graph, inst.graph.root(), inst.subject,
                              inst.auth_db, options);
    benchmark::DoNotOptimize(r);
    updates = r.ValueOrDie().updates;
  }
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["locations"] =
      static_cast<double>(inst.graph.Primitives().size());
}

/// NL sweep: grid side in {8, 16, 24, 32, 48, 64} -> NL in {64 .. 4096}.
void BM_ScaleLocations(benchmark::State& state) {
  Instance inst = GridInstance(static_cast<uint32_t>(state.range(0)), 1);
  RunOnce(state, inst, InaccessibleAlgorithm::kWorklist);
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_ScaleLocations)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Complexity();

/// Nd sweep at NL = 512.
void BM_ScaleDegree(benchmark::State& state) {
  Instance inst = RandomInstance(512, static_cast<uint32_t>(state.range(0)));
  RunOnce(state, inst, InaccessibleAlgorithm::kWorklist);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScaleDegree)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Complexity();

/// Na sweep on a 16x16 grid.
void BM_ScaleAuthsPerLocation(benchmark::State& state) {
  Instance inst = GridInstance(16, static_cast<uint32_t>(state.range(0)));
  RunOnce(state, inst, InaccessibleAlgorithm::kWorklist);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScaleAuthsPerLocation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Complexity();

/// The faithful sweep algorithm on the same NL ladder, for the worst-case
/// flavor of the bound.
void BM_ScaleLocationsSweep(benchmark::State& state) {
  Instance inst = GridInstance(static_cast<uint32_t>(state.range(0)), 1);
  RunOnce(state, inst, InaccessibleAlgorithm::kSweep);
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_ScaleLocationsSweep)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Complexity();

/// Hierarchical (Lemma 1) pruning on campus graphs.
void BM_HierarchicalPrune(benchmark::State& state) {
  Instance inst;
  inst.graph = MakeCampusGraph(static_cast<uint32_t>(state.range(0)),
                               static_cast<uint32_t>(state.range(1)))
                   .ValueOrDie();
  std::vector<SubjectId> subjects = GenerateSubjects(&inst.profiles, 1);
  inst.subject = subjects[0];
  Rng rng(7);
  AuthWorkloadOptions opt;
  opt.coverage = 0.6;
  GenerateAuthorizations(inst.graph, subjects, opt, &rng, &inst.auth_db);
  for (auto _ : state) {
    auto r = HierarchicalInaccessiblePrune(inst.graph, inst.subject,
                                           inst.auth_db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HierarchicalPrune)->Args({8, 16})->Args({16, 32});

}  // namespace

BENCHMARK_MAIN();
