// Copyright 2026 The LTAM Authors.
// A log-bucketed latency histogram, shared by the open-loop load
// harness (client-side percentiles) and the server's in-process
// telemetry registry (per-stage histograms).
//
// HdrHistogram-style layout: values below 2^kSubBucketBits land in
// exact unit buckets; above that, each power-of-two octave is split
// into 2^kSubBucketBits linear sub-buckets, so every recorded value is
// represented with a relative error of at most 2^-kSubBucketBits
// (~1.6% at the default 6 bits) while the whole 64-bit range fits in a
// few KiB of counters. That makes the histogram cheap to keep per
// connection and cheap to Merge() when the load generator aggregates
// its per-connection recorders — merging is element-wise addition, and
// quantiles of the merged histogram equal quantiles of the merged
// sample stream (within the bucket resolution).
//
// Quantile convention: Quantile(q) returns the upper bound of the
// bucket holding the ceil(q * count)-th smallest sample, so it never
// under-reports a latency percentile; the overshoot is bounded by the
// bucket width (see latency_histogram_test.cc's sorted-reference
// oracle). Values are plain uint64_t — the load harness records
// nanoseconds, but nothing here assumes a unit.

#ifndef LTAM_TELEMETRY_LATENCY_HISTOGRAM_H_
#define LTAM_TELEMETRY_LATENCY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace ltam {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per octave,
  /// i.e. <= 1/64 relative quantile error.
  static constexpr int kSubBucketBits = 6;

  LatencyHistogram();

  /// Records one sample. Saturates at the last bucket (values near
  /// UINT64_MAX), which still counts toward quantiles and max().
  void Record(uint64_t value);

  /// Element-wise addition of another histogram's counts (plus its
  /// exact min/max/sum). The other histogram is unchanged.
  void Merge(const LatencyHistogram& other);

  /// Total samples recorded.
  uint64_t count() const { return count_; }

  /// Exact sum of every recorded sample (mean() = sum() / count()).
  uint64_t sum() const { return sum_; }

  /// Exact extremes and mean over every recorded sample (not bucketed).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// The q-quantile (q in [0, 1]): the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped to max(). Returns 0
  /// on an empty histogram. Quantile(0) is min(); Quantile(1) is max().
  uint64_t Quantile(double q) const;

  /// Shorthands for the percentiles the bench trajectory tracks.
  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p90() const { return Quantile(0.90); }
  uint64_t p99() const { return Quantile(0.99); }
  uint64_t p999() const { return Quantile(0.999); }

  /// "p50=1.2ms p90=... p99=... p999=... max=... (n=...)" with the
  /// values scaled from nanoseconds to human units.
  std::string ToString() const;

  /// The value range [lo, hi] a bucket index covers — exposed so tests
  /// can assert the error bound instead of hard-coding it.
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);
  static size_t BucketIndexFor(uint64_t value);
  static size_t NumBuckets();

  /// Sparse (bucket index, count) pairs in ascending index order —
  /// the wire and JSON representation (most of the dense bucket array
  /// is zero for any real latency distribution).
  std::vector<std::pair<uint32_t, uint64_t>> NonZeroBuckets() const;

  /// Rebuilds a histogram from serialized parts (the inverse of
  /// count()/sum()/min()/max()/NonZeroBuckets()). Fails on an
  /// out-of-range or non-ascending bucket index, or when the bucket
  /// counts do not sum to `count` — the wire decoder's validation
  /// lives here so every consumer gets it.
  static Result<LatencyHistogram> FromParts(
      uint64_t count, uint64_t sum, uint64_t min, uint64_t max,
      const std::vector<std::pair<uint32_t, uint64_t>>& nonzero_buckets);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace ltam

#endif  // LTAM_TELEMETRY_LATENCY_HISTOGRAM_H_
