// Copyright 2026 The LTAM Authors.
// Tests for the query engine, including the authorized-route conditions
// of Section 6.

#include "query/query_engine.h"

#include <gtest/gtest.h>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeFig4Graph());
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
    ASSERT_OK_AND_ASSIGN(bob_, profiles_.AddSubject("Bob"));
    ASSERT_OK_AND_ASSIGN(a_, graph_.Find("A"));
    ASSERT_OK_AND_ASSIGN(b_, graph_.Find("B"));
    ASSERT_OK_AND_ASSIGN(c_, graph_.Find("C"));
    ASSERT_OK_AND_ASSIGN(d_, graph_.Find("D"));
    // Table 1 authorizations for Alice.
    Grant(alice_, a_, 2, 35, 20, 50);
    Grant(alice_, b_, 40, 60, 55, 80);
    Grant(alice_, c_, 38, 45, 70, 90);
    Grant(alice_, d_, 5, 25, 10, 30);
    engine_ = std::make_unique<QueryEngine>(&graph_, &auth_db_,
                                            &movement_db_, &profiles_);
  }

  void Grant(SubjectId s, LocationId l, Chronon es, Chronon ee, Chronon xs,
             Chronon xe) {
    auth_db_.Add(LocationTemporalAuthorization::Make(
                     TimeInterval(es, ee), TimeInterval(xs, xe),
                     LocationAuthorization{s, l}, 1)
                     .ValueOrDie());
  }

  MultilevelLocationGraph graph_;
  UserProfileDatabase profiles_;
  AuthorizationDatabase auth_db_;
  MovementDatabase movement_db_;
  std::unique_ptr<QueryEngine> engine_;
  SubjectId alice_ = kInvalidSubject;
  SubjectId bob_ = kInvalidSubject;
  LocationId a_ = kInvalidLocation;
  LocationId b_ = kInvalidLocation;
  LocationId c_ = kInvalidLocation;
  LocationId d_ = kInvalidLocation;
};

TEST_F(QueryEngineTest, CanAccess) {
  EXPECT_TRUE(engine_->CanAccess(alice_, a_, 10).granted);
  EXPECT_FALSE(engine_->CanAccess(alice_, a_, 36).granted);
  EXPECT_FALSE(engine_->CanAccess(bob_, a_, 10).granted);
}

TEST_F(QueryEngineTest, AuthorizationsOf) {
  EXPECT_EQ(engine_->AuthorizationsOf(alice_).size(), 4u);
  EXPECT_TRUE(engine_->AuthorizationsOf(bob_).empty());
}

TEST_F(QueryEngineTest, WhoCanAccess) {
  Grant(bob_, a_, 100, 200, 100, 300);
  std::vector<SubjectId> who = engine_->WhoCanAccess(a_, TimeInterval(0, 50));
  EXPECT_EQ(who, std::vector<SubjectId>{alice_});
  who = engine_->WhoCanAccess(a_, TimeInterval(0, 150));
  EXPECT_EQ(who, (std::vector<SubjectId>{alice_, bob_}));
  EXPECT_TRUE(engine_->WhoCanAccess(c_, TimeInterval(0, 10)).empty());
}

TEST_F(QueryEngineTest, InaccessibleAndAccessibleAreComplements) {
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> inaccessible,
                       engine_->InaccessibleLocations(alice_));
  EXPECT_EQ(inaccessible, std::vector<LocationId>{c_});
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> accessible,
                       engine_->AccessibleLocations(alice_));
  EXPECT_EQ(accessible, (std::vector<LocationId>{a_, b_, d_}));
}

TEST_F(QueryEngineTest, CheckRouteAuthorizedChain) {
  // Route <A, B> for Alice over [0, inf): grant_A = [2,35], departure_A =
  // [20,50]; within [20,50], B's grant = [40,50] — authorized.
  ASSERT_OK_AND_ASSIGN(
      AuthorizedRoute route,
      engine_->CheckRoute(alice_, {a_, b_}, TimeInterval(0, kChrononMax)));
  ASSERT_EQ(route.grants.size(), 2u);
  EXPECT_EQ(route.grants[0], TimeInterval(2, 35));
  EXPECT_EQ(route.departures[0], TimeInterval(20, 50));
  EXPECT_EQ(route.grants[1], TimeInterval(40, 50));
}

TEST_F(QueryEngineTest, CheckRouteUnauthorized) {
  // Route <A, B, C>: from B's departure [55,80], C's entry [38,45] has
  // passed — not authorized (that is why C is inaccessible).
  EXPECT_TRUE(engine_->CheckRoute(alice_, {a_, b_, c_},
                                  TimeInterval(0, kChrononMax))
                  .status()
                  .IsNotFound());
  // Route <A, D, C>: from D's departure [20,30], C's entry [38,45] has
  // not started — also not authorized.
  EXPECT_TRUE(engine_->CheckRoute(alice_, {a_, d_, c_},
                                  TimeInterval(0, kChrononMax))
                  .status()
                  .IsNotFound());
}

TEST_F(QueryEngineTest, CheckRouteRejectsNonRoutes) {
  EXPECT_TRUE(engine_->CheckRoute(alice_, {}, TimeInterval(0, 10))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_->CheckRoute(alice_, {a_, c_}, TimeInterval(0, 10))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryEngineTest, CheckRouteWindowMatters) {
  // Restricting the request window past A's entry duration kills the
  // chain at the first step.
  EXPECT_TRUE(engine_->CheckRoute(alice_, {a_, b_}, TimeInterval(36, 100))
                  .status()
                  .IsNotFound());
}

TEST_F(QueryEngineTest, FindAuthorizedRoute) {
  ASSERT_OK_AND_ASSIGN(
      AuthorizedRoute route,
      engine_->FindAuthorizedRoute(alice_, a_, b_,
                                   TimeInterval(0, kChrononMax)));
  EXPECT_EQ(route.route, (std::vector<LocationId>{a_, b_}));
  // C is unreachable under any route.
  EXPECT_TRUE(engine_->FindAuthorizedRoute(alice_, a_, c_,
                                           TimeInterval(0, kChrononMax))
                  .status()
                  .IsNotFound());
}

TEST_F(QueryEngineTest, MovementQueries) {
  ASSERT_OK(movement_db_.RecordMovement(10, alice_, a_));
  ASSERT_OK(movement_db_.RecordMovement(20, bob_, a_));
  ASSERT_OK(movement_db_.RecordMovement(25, alice_, b_));
  EXPECT_EQ(engine_->WhereWas(alice_, 15), a_);
  EXPECT_EQ(engine_->WhereWas(alice_, 30), b_);
  EXPECT_EQ(engine_->Occupants(a_, 22), (std::vector<SubjectId>{alice_, bob_}));
  std::vector<MovementDatabase::Contact> contacts =
      engine_->Contacts(alice_, TimeInterval(0, 100));
  ASSERT_EQ(contacts.size(), 1u);
  EXPECT_EQ(contacts[0].other, bob_);
}

TEST_F(QueryEngineTest, OverstayingAt) {
  ASSERT_OK(movement_db_.RecordMovement(10, alice_, a_));
  // Alice's only exit window for A is [20, 50].
  EXPECT_TRUE(engine_->OverstayingAt(30).empty());
  EXPECT_EQ(engine_->OverstayingAt(51), std::vector<SubjectId>{alice_});
  // Bob (outside) never shows up.
  EXPECT_EQ(engine_->OverstayingAt(51).size(), 1u);
}

}  // namespace
}  // namespace ltam
