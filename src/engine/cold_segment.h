// Copyright 2026 The LTAM Authors.
// The cold tier of the movement store: sealed, immutable stay segments.
//
// Movement history only grows; holding every row-form index (history
// vector, per-subject stays, per-location stays) forever eats RAM and
// makes every checkpoint rewrite the whole shard. A ColdSegment is the
// sealed alternative: every *completed* stay up to some seal point,
// stored struct-of-arrays (parallel subject/location/enter/exit columns,
// sorted by (subject, enter, exit, location)) so historical queries scan
// the columns directly without materializing Stay objects, and so the
// columnar codec (storage/cold_codec.h) can delta-encode them compactly.
//
// Invariants every segment upholds (validated by the codec on load):
//  - columns are parallel: subjects/locations/enters/exits all have
//    rows() entries;
//  - rows are sorted by (subject, enter, exit, location), so a subject's
//    stays are one contiguous, time-ordered range;
//  - every stay is completed: enter <= exit < kChrononMax;
//  - min_enter/max_exit bound the rows (segment-level time pruning).
//
// Segments of one shard form a sequence (oldest first). Because only a
// subject's LAST stay can be open, every stay sealed into segment i
// precedes (per subject, in time) every stay sealed into segment i+1 —
// so concatenating a subject's ranges in sequence order IS its stay
// history, and merging adjacent segments (compaction) preserves it.

#ifndef LTAM_ENGINE_COLD_SEGMENT_H_
#define LTAM_ENGINE_COLD_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/events.h"
#include "engine/movement_db.h"
#include "time/chronon.h"

namespace ltam {

/// One sealed, immutable run of completed stays in columnar layout.
struct ColdSegment {
  /// Parallel columns, sorted by (subject, enter, exit, location).
  std::vector<SubjectId> subjects;
  std::vector<LocationId> locations;
  std::vector<Chronon> enters;
  std::vector<Chronon> exits;

  /// Movement-history events this segment's seal removed from the hot
  /// tier (NOT the row count: an exit-to-outside event closes a stay
  /// without opening one, so events per stay is 1..2). Summed into
  /// MovementDatabase::total_events() so sealing never changes the
  /// logical history size. Compaction adds the inputs' counts.
  uint64_t sealed_events = 0;

  /// Time bounds over the rows (enter of the earliest stay, exit of the
  /// latest-ending one); 0/0 for an empty segment.
  Chronon min_enter = 0;
  Chronon max_exit = 0;

  size_t rows() const { return subjects.size(); }
  bool empty() const { return subjects.empty(); }

  /// In-memory footprint of the columns (the RSS the tier accounts for).
  size_t ApproxBytes() const {
    return subjects.capacity() * sizeof(SubjectId) +
           locations.capacity() * sizeof(LocationId) +
           enters.capacity() * sizeof(Chronon) +
           exits.capacity() * sizeof(Chronon);
  }

  /// The contiguous row range [first, last) holding subject `s`.
  void SubjectRange(SubjectId s, size_t* first, size_t* last) const;

  /// Row i as a Stay (for paths that genuinely need the row form).
  Stay RowStay(size_t i) const {
    return Stay{subjects[i], locations[i], enters[i], exits[i]};
  }

  /// Recomputes min_enter/max_exit from the rows (builders call this
  /// after filling the columns).
  void RecomputeBounds();
};

/// Merges a run of adjacent-in-sequence segments (oldest first) into one
/// — the compaction step. Per-subject time order is preserved because
/// sequence order IS per-subject time order (see the header comment);
/// the result is re-sorted by (subject, enter, exit, location) and its
/// sealed_events is the sum of the inputs'.
std::shared_ptr<const ColdSegment> MergeColdSegments(
    const std::vector<std::shared_ptr<const ColdSegment>>& segments);

}  // namespace ltam

#endif  // LTAM_ENGINE_COLD_SEGMENT_H_
