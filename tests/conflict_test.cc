// Copyright 2026 The LTAM Authors.
// Tests for conflict detection/resolution (the Section 4 future-work
// problem: overlapping/adjacent authorizations for one subject-location).

#include "core/conflict.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

LocationTemporalAuthorization MakeAuth(SubjectId s, LocationId l, Chronon es,
                                       Chronon ee, int64_t n = 1) {
  return LocationTemporalAuthorization::Make(
             TimeInterval(es, ee), TimeInterval(es, ee + 100),
             LocationAuthorization{s, l}, n)
      .ValueOrDie();
}

TEST(ConflictTest, NoConflictsOnDisjointAuths) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 1, 0, 10));
  db.Add(MakeAuth(0, 1, 20, 30));
  db.Add(MakeAuth(0, 2, 0, 10));   // Different location.
  db.Add(MakeAuth(1, 1, 0, 10));   // Different subject.
  EXPECT_TRUE(DetectConflicts(db).empty());
}

TEST(ConflictTest, DetectsPaperAdjacencyExample) {
  // "Alice can enter CAIS during [5, 10]... another authorization may
  // state that Alice is authorized to enter CAIS during [10, 11]."
  AuthorizationDatabase db;
  AuthId a = db.Add(MakeAuth(0, 1, 5, 10));
  AuthId b = db.Add(MakeAuth(0, 1, 10, 11));
  std::vector<Conflict> conflicts = DetectConflicts(db);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].first, a);
  EXPECT_EQ(conflicts[0].second, b);
  EXPECT_EQ(conflicts[0].kind, ConflictKind::kOverlapping);
}

TEST(ConflictTest, ClassifiesKinds) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 1, 5, 10));
  db.Add(MakeAuth(0, 1, 11, 20));  // Adjacent.
  db.Add(MakeAuth(0, 2, 5, 20));
  db.Add(MakeAuth(0, 2, 8, 12));  // Contained.
  std::vector<Conflict> adj = DetectConflicts(db, 0, 1);
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj[0].kind, ConflictKind::kAdjacent);
  std::vector<Conflict> cont = DetectConflicts(db, 0, 2);
  ASSERT_EQ(cont.size(), 1u);
  EXPECT_EQ(cont[0].kind, ConflictKind::kContainment);
  EXPECT_NE(cont[0].ToString().find("containment"), std::string::npos);
}

TEST(ConflictTest, RevokedRecordsDoNotConflict) {
  AuthorizationDatabase db;
  AuthId a = db.Add(MakeAuth(0, 1, 5, 10));
  db.Add(MakeAuth(0, 1, 8, 12));
  ASSERT_OK(db.Revoke(a));
  EXPECT_TRUE(DetectConflicts(db).empty());
}

TEST(ConflictTest, ResolveMergeCombines) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 1, 5, 10, 1));
  db.Add(MakeAuth(0, 1, 10, 11, 3));
  ASSERT_OK_AND_ASSIGN(
      ConflictResolutionReport report,
      ResolveConflicts(&db, ConflictResolution::kMerge));
  EXPECT_EQ(report.conflicts_found, 1u);
  EXPECT_EQ(report.revoked, 2u);
  EXPECT_EQ(report.merged_added, 1u);
  std::vector<AuthId> active = db.Active();
  ASSERT_EQ(active.size(), 1u);
  const LocationTemporalAuthorization& merged = db.record(active[0]).auth;
  EXPECT_EQ(merged.entry_duration(), TimeInterval(5, 11));
  EXPECT_EQ(merged.max_entries(), 3);
  // Database is now conflict-free.
  EXPECT_TRUE(DetectConflicts(db).empty());
}

TEST(ConflictTest, ResolveMergeChainsWholeComponent) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 1, 0, 10));
  db.Add(MakeAuth(0, 1, 10, 20));
  db.Add(MakeAuth(0, 1, 20, 30));
  ASSERT_OK_AND_ASSIGN(
      ConflictResolutionReport report,
      ResolveConflicts(&db, ConflictResolution::kMerge));
  EXPECT_EQ(report.merged_added, 1u);
  std::vector<AuthId> active = db.Active();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(db.record(active[0]).auth.entry_duration(), TimeInterval(0, 30));
}

TEST(ConflictTest, ResolveKeepEarlier) {
  AuthorizationDatabase db;
  AuthId a = db.Add(MakeAuth(0, 1, 5, 10));
  AuthId b = db.Add(MakeAuth(0, 1, 8, 12));
  ASSERT_OK_AND_ASSIGN(
      ConflictResolutionReport report,
      ResolveConflicts(&db, ConflictResolution::kKeepEarlier));
  EXPECT_EQ(report.revoked, 1u);
  EXPECT_FALSE(db.record(a).revoked);
  EXPECT_TRUE(db.record(b).revoked);
}

TEST(ConflictTest, ResolveKeepLater) {
  AuthorizationDatabase db;
  AuthId a = db.Add(MakeAuth(0, 1, 5, 10));
  AuthId b = db.Add(MakeAuth(0, 1, 8, 12));
  ASSERT_OK_AND_ASSIGN(
      ConflictResolutionReport report,
      ResolveConflicts(&db, ConflictResolution::kKeepLater));
  EXPECT_EQ(report.revoked, 1u);
  EXPECT_TRUE(db.record(a).revoked);
  EXPECT_FALSE(db.record(b).revoked);
}

TEST(ConflictTest, MergeSkipsWhenExitWindowsDoNotMerge) {
  // Entry durations overlap but exit durations are far apart: a merged
  // record would widen privileges, so kMerge must leave them alone.
  AuthorizationDatabase db;
  db.Add(LocationTemporalAuthorization::Make(
             TimeInterval(5, 10), TimeInterval(5, 15),
             LocationAuthorization{0, 1}, 1)
             .ValueOrDie());
  db.Add(LocationTemporalAuthorization::Make(
             TimeInterval(8, 12), TimeInterval(100, 200),
             LocationAuthorization{0, 1}, 1)
             .ValueOrDie());
  ASSERT_OK_AND_ASSIGN(
      ConflictResolutionReport report,
      ResolveConflicts(&db, ConflictResolution::kMerge));
  EXPECT_EQ(report.conflicts_found, 1u);
  EXPECT_EQ(report.merged_added, 0u);
  EXPECT_EQ(db.active_size(), 2u);
}

TEST(ConflictTest, NullDatabaseRejected) {
  EXPECT_TRUE(ResolveConflicts(nullptr, ConflictResolution::kMerge)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ltam
