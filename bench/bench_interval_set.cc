// Copyright 2026 The LTAM Authors.
//
// Microbenchmarks of the interval-set algebra underlying every T^g/T^d
// computation in Algorithm 1 and every duration aggregate in the
// authorization database.

#include <benchmark/benchmark.h>

#include <vector>

#include "time/interval_set.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

IntervalSet RandomSet(Rng* rng, int intervals, Chronon span) {
  IntervalSet s;
  for (int i = 0; i < intervals; ++i) {
    Chronon a = rng->UniformRange(0, span);
    Chronon b = a + rng->UniformRange(0, span / (intervals * 2) + 1);
    s.Add(TimeInterval(a, b));
  }
  return s;
}

void BM_Add(benchmark::State& state) {
  Rng rng(1);
  int n = static_cast<int>(state.range(0));
  std::vector<TimeInterval> inputs;
  for (int i = 0; i < 4096; ++i) {
    Chronon a = rng.UniformRange(0, 100000);
    inputs.emplace_back(a, a + rng.UniformRange(0, 50));
  }
  size_t i = 0;
  IntervalSet s;
  for (auto _ : state) {
    if (static_cast<int>(s.size()) > n) {
      state.PauseTiming();
      s = IntervalSet();
      state.ResumeTiming();
    }
    s.Add(inputs[i++ % inputs.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Add)->Arg(16)->Arg(256)->Arg(4096);

void BM_Union(benchmark::State& state) {
  Rng rng(2);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = RandomSet(&rng, n, 100000);
  IntervalSet b = RandomSet(&rng, n, 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b));
  }
}
BENCHMARK(BM_Union)->Arg(4)->Arg(64)->Arg(1024);

void BM_Intersect(benchmark::State& state) {
  Rng rng(3);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = RandomSet(&rng, n, 100000);
  IntervalSet b = RandomSet(&rng, n, 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
}
BENCHMARK(BM_Intersect)->Arg(4)->Arg(64)->Arg(1024);

void BM_Difference(benchmark::State& state) {
  Rng rng(4);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = RandomSet(&rng, n, 100000);
  IntervalSet b = RandomSet(&rng, n, 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Difference(b));
  }
}
BENCHMARK(BM_Difference)->Arg(4)->Arg(64);

void BM_ContainsPoint(benchmark::State& state) {
  Rng rng(5);
  IntervalSet a = RandomSet(&rng, static_cast<int>(state.range(0)), 100000);
  Chronon t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Contains(t));
    t = (t + 9973) % 100000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ContainsPoint)->Arg(4)->Arg(64)->Arg(1024);

void BM_ParseRoundTrip(benchmark::State& state) {
  Rng rng(6);
  IntervalSet a = RandomSet(&rng, 16, 100000);
  std::string text = a.ToString();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalSet::Parse(text));
  }
}
BENCHMARK(BM_ParseRoundTrip);

}  // namespace

BENCHMARK_MAIN();
