// Copyright 2026 The LTAM Authors.
// Route finding over the multilevel location graph (Section 3.1).
//
// A *simple route* stays inside one location graph; a *complex route*
// crosses graphs by stepping between entry locations of composites joined
// by an edge in a common ancestor graph. Both are paths in the flattened
// primitive-level adjacency built by BuildEffectiveAdjacency, so routing
// is plain BFS/DFS there.

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>

#include "graph/multilevel_graph.h"
#include "util/logging.h"

namespace ltam {

namespace {

/// BFS shortest path over a filtered adjacency. `allowed` may be null
/// (all primitives allowed).
Result<std::vector<LocationId>> BfsRoute(
    const MultilevelLocationGraph& g, LocationId src, LocationId dst,
    const std::unordered_set<LocationId>* allowed) {
  if (!g.Exists(src) || !g.Exists(dst)) {
    return Status::NotFound("route endpoint does not exist");
  }
  if (!g.location(src).IsPrimitive() || !g.location(dst).IsPrimitive()) {
    return Status::InvalidArgument(
        "routes connect primitive locations; resolve composites to entry "
        "primitives first");
  }
  if (allowed != nullptr &&
      (allowed->count(src) == 0 || allowed->count(dst) == 0)) {
    return Status::NotFound("route endpoint outside the requested scope");
  }
  if (src == dst) return std::vector<LocationId>{src};

  std::vector<LocationId> parent(g.size(), kInvalidLocation);
  std::vector<char> seen(g.size(), 0);
  std::deque<LocationId> queue;
  queue.push_back(src);
  seen[src] = 1;
  while (!queue.empty()) {
    LocationId cur = queue.front();
    queue.pop_front();
    for (LocationId nxt : g.EffectiveNeighbors(cur)) {
      if (seen[nxt]) continue;
      if (allowed != nullptr && allowed->count(nxt) == 0) continue;
      seen[nxt] = 1;
      parent[nxt] = cur;
      if (nxt == dst) {
        std::vector<LocationId> route;
        for (LocationId p = dst; p != kInvalidLocation; p = parent[p]) {
          route.push_back(p);
          if (p == src) break;
        }
        std::reverse(route.begin(), route.end());
        return route;
      }
      queue.push_back(nxt);
    }
  }
  return Status::NotFound("no route from '" + g.location(src).name +
                          "' to '" + g.location(dst).name + "'");
}

}  // namespace

Result<std::vector<LocationId>> MultilevelLocationGraph::FindRoute(
    LocationId src, LocationId dst) const {
  return BfsRoute(*this, src, dst, nullptr);
}

Result<std::vector<LocationId>> MultilevelLocationGraph::FindRouteWithin(
    LocationId composite, LocationId src, LocationId dst) const {
  if (!Exists(composite) || !location(composite).IsComposite()) {
    return Status::InvalidArgument("scope must be a composite location");
  }
  std::vector<LocationId> prims = PrimitivesWithin(composite);
  std::unordered_set<LocationId> allowed(prims.begin(), prims.end());
  return BfsRoute(*this, src, dst, &allowed);
}

namespace {

std::vector<std::vector<LocationId>> EnumerateImpl(
    const MultilevelLocationGraph& g, LocationId src, LocationId dst,
    size_t max_routes, size_t max_length,
    const std::unordered_set<LocationId>* allowed) {
  std::vector<std::vector<LocationId>> out;
  if (!g.Exists(src) || !g.Exists(dst) || max_routes == 0 ||
      max_length == 0) {
    return out;
  }
  if (!g.location(src).IsPrimitive() || !g.location(dst).IsPrimitive()) {
    return out;
  }
  if (allowed != nullptr &&
      (allowed->count(src) == 0 || allowed->count(dst) == 0)) {
    return out;
  }
  std::vector<LocationId> path{src};
  std::unordered_set<LocationId> on_path{src};
  std::function<void()> dfs = [&]() {
    if (out.size() >= max_routes) return;
    LocationId cur = path.back();
    if (cur == dst) {
      out.push_back(path);
      return;
    }
    if (path.size() >= max_length) return;
    for (LocationId nxt : g.EffectiveNeighbors(cur)) {
      if (on_path.count(nxt) > 0) continue;
      if (allowed != nullptr && allowed->count(nxt) == 0) continue;
      path.push_back(nxt);
      on_path.insert(nxt);
      dfs();
      on_path.erase(nxt);
      path.pop_back();
      if (out.size() >= max_routes) return;
    }
  };
  dfs();
  return out;
}

}  // namespace

std::vector<std::vector<LocationId>> MultilevelLocationGraph::EnumerateRoutes(
    LocationId src, LocationId dst, size_t max_routes,
    size_t max_length) const {
  return EnumerateImpl(*this, src, dst, max_routes, max_length, nullptr);
}

std::vector<std::vector<LocationId>>
MultilevelLocationGraph::EnumerateRoutesWithin(LocationId composite,
                                               LocationId src,
                                               LocationId dst,
                                               size_t max_routes,
                                               size_t max_length) const {
  if (!Exists(composite) || !location(composite).IsComposite()) return {};
  std::vector<LocationId> prims = PrimitivesWithin(composite);
  std::unordered_set<LocationId> allowed(prims.begin(), prims.end());
  return EnumerateImpl(*this, src, dst, max_routes, max_length, &allowed);
}

Result<LocationId> MultilevelLocationGraph::LowestCommonComposite(
    LocationId a, LocationId b) const {
  if (!Exists(a) || !Exists(b)) {
    return Status::NotFound("location does not exist");
  }
  std::unordered_set<LocationId> a_chain;
  if (location(a).IsComposite()) a_chain.insert(a);
  for (LocationId anc : Ancestors(a)) a_chain.insert(anc);
  if (location(b).IsComposite() && a_chain.count(b) > 0) return b;
  for (LocationId anc : Ancestors(b)) {
    if (a_chain.count(anc) > 0) return anc;
  }
  return root();
}

bool MultilevelLocationGraph::IsRoute(
    const std::vector<LocationId>& seq) const {
  if (seq.empty()) return false;
  for (LocationId l : seq) {
    if (!Exists(l) || !location(l).IsPrimitive()) return false;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const std::vector<LocationId>& adj = EffectiveNeighbors(seq[i]);
    if (std::find(adj.begin(), adj.end(), seq[i + 1]) == adj.end()) {
      return false;
    }
  }
  return true;
}

bool MultilevelLocationGraph::IsSimpleRoute(
    const std::vector<LocationId>& seq) const {
  if (seq.empty()) return false;
  for (LocationId l : seq) {
    if (!Exists(l) || !location(l).IsPrimitive()) return false;
  }
  // All locations of a simple route belong to the same location graph,
  // i.e. share one parent composite, and consecutive pairs use direct
  // sibling edges.
  LocationId parent = location(seq[0]).parent;
  for (LocationId l : seq) {
    if (location(l).parent != parent) return false;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const std::vector<LocationId>& adj = location(seq[i]).sibling_adj;
    if (std::find(adj.begin(), adj.end(), seq[i + 1]) == adj.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace ltam
