// Copyright 2026 The LTAM Authors.

#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ltam {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("one", ','), (std::vector<std::string>{"one"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitAndTrimTest, DropsEmptyAndTrims) {
  EXPECT_EQ(SplitAndTrim("  a , , b  ", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitAndTrim("  ,  ,  ", ',').empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(PrefixSuffixTest, Works) {
  EXPECT_TRUE(StartsWith("SCE.GO", "SCE"));
  EXPECT_FALSE(StartsWith("SCE", "SCE.GO"));
  EXPECT_TRUE(EndsWith("SCE.GO", ".GO"));
  EXPECT_FALSE(EndsWith("GO", "SCE.GO"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(CaseTest, LowerUpperAndCompare) {
  EXPECT_EQ(ToLower("WhEnEvEr"), "whenever");
  EXPECT_EQ(ToUpper("whenever"), "WHENEVER");
  EXPECT_TRUE(EqualsIgnoreCase("WHENEVER", "whenever"));
  EXPECT_FALSE(EqualsIgnoreCase("WHENEVER", "WHENEVERNOT"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(ParseInt64Test, ParsesAndRejects) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("  -7 "), -7);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("12x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsParseError());
}

TEST(ParseDoubleTest, ParsesAndRejects) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
  EXPECT_TRUE(ParseDouble("1.2.3").status().IsParseError());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("s%u at l%u", 3u, 7u), "s3 at l7");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace ltam
